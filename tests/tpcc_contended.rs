//! Contended TPC-C over a sync-replicated cluster with the group-commit
//! pipeline on (paper §3: commits are durable once in the local WAL and
//! acknowledged after the replica ack; group commit amortizes both).
//!
//! Eight terminals hammer one warehouse with the full five-transaction mix
//! and no think time, then the TPC-C consistency conditions are checked:
//!
//! - W_YTD equals the sum of its districts' D_YTD (payment atomicity);
//! - per district, the order count equals `d_next_o_id - 1`, the new_order
//!   count equals the undelivered window, and the order-line count equals
//!   the sum of the orders' `o_ol_cnt` (new-order / delivery atomicity);
//! - the group-commit pipeline actually grouped: strictly fewer master
//!   fsyncs than committed engine transactions over the run.
//!
//! One `#[test]` on purpose: the fsync/commit counters are process-global.

use std::sync::Arc;
use std::time::Duration;

use s2db_repro::cluster::{Cluster, ClusterConfig};
use s2db_repro::exec::Expr;
use s2db_repro::query::{ExecOptions, Plan};
use s2db_repro::workloads::tpcc::backend::{load_cluster, ClusterBackend, TpccBackend};
use s2db_repro::workloads::tpcc::driver::{run, DriverConfig};
use s2db_repro::workloads::tpcc::TpccScale;

const W: i64 = 1;

fn sum_col(cluster: &Arc<Cluster>, plan: &Plan, col: usize) -> f64 {
    let out = cluster.execute(plan, &ExecOptions::default()).expect("scan");
    (0..out.rows()).map(|r| out.value(col, r).as_double().unwrap()).sum()
}

/// `(count, sum of `sum_col`)` per district for rows matching `w_id == W`.
fn per_district(
    cluster: &Arc<Cluster>,
    table: &str,
    d_col_in_proj: usize,
    sum_col_in_proj: Option<usize>,
    proj: Vec<usize>,
) -> std::collections::BTreeMap<i64, (i64, i64)> {
    let plan = Plan::scan(table, proj, Some(Expr::eq(0, W)));
    let out = cluster.execute(&plan, &ExecOptions::default()).expect("scan");
    let mut m = std::collections::BTreeMap::new();
    for r in 0..out.rows() {
        let d = out.value(d_col_in_proj, r).as_int().unwrap();
        let s = match sum_col_in_proj {
            Some(c) => out.value(c, r).as_int().unwrap(),
            None => 0,
        };
        let e = m.entry(d).or_insert((0i64, 0i64));
        e.0 += 1;
        e.1 += s;
    }
    m
}

#[test]
fn contended_tpcc_consistency_and_grouped_fsyncs() {
    let scale =
        TpccScale { warehouses: W, districts: 10, customers: 30, items: 100, preload_orders: 10 };
    let cluster = Cluster::new(
        "tpcc_mt",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 1,
            sync_replication: true,
            blob: None,
            ..Default::default()
        },
    )
    .expect("cluster");
    load_cluster(&cluster, &scale, 7).expect("load");
    cluster.set_group_commit(true);
    cluster.set_group_flush_window_us(200);

    let commits0 = s2db_repro::obs::counter!("core.txn.commits").get();
    let fsyncs0 = s2db_repro::obs::counter!("wal.fsync.calls").get();

    let backend: Arc<dyn TpccBackend> = Arc::new(ClusterBackend::new(Arc::clone(&cluster), scale));
    let config = DriverConfig {
        scale,
        terminals_per_warehouse: 8,
        wait_scale: f64::INFINITY,
        duration: Duration::from_secs(2),
        seed: 42,
    };
    let result = run(backend, &config);
    assert!(result.new_orders > 0, "no new-orders committed under contention: {result:?}");
    assert!(result.payments > 0, "no payments committed under contention: {result:?}");

    let commits = s2db_repro::obs::counter!("core.txn.commits").get() - commits0;
    let fsyncs = s2db_repro::obs::counter!("wal.fsync.calls").get() - fsyncs0;

    // Payment atomicity: W_YTD == sum of D_YTD across the districts.
    let w_ytd = sum_col(&cluster, &Plan::scan("warehouse", vec![3], Some(Expr::eq(0, W))), 0);
    let d_ytd_sum = sum_col(&cluster, &Plan::scan("district", vec![4], Some(Expr::eq(0, W))), 0);
    assert!(
        (w_ytd - d_ytd_sum).abs() < 0.01,
        "W_YTD {w_ytd} != sum of D_YTD {d_ytd_sum} after {} payments",
        result.payments
    );

    // Per-district order-id bookkeeping: district columns 1=d_id,
    // 5=d_next_o_id, 6=d_next_del_o_id.
    let dplan = Plan::scan("district", vec![1, 5, 6], Some(Expr::eq(0, W)));
    let dout = cluster.execute(&dplan, &ExecOptions::default()).expect("district scan");
    assert_eq!(dout.rows(), scale.districts as usize);
    let orders = per_district(&cluster, "orders", 0, Some(1), vec![1, 6]);
    let new_orders = per_district(&cluster, "new_order", 0, None, vec![1, 2]);
    let order_lines = per_district(&cluster, "order_line", 0, None, vec![1, 2]);
    for r in 0..dout.rows() {
        let d = dout.value(0, r).as_int().unwrap();
        let next_o = dout.value(1, r).as_int().unwrap();
        let next_del = dout.value(2, r).as_int().unwrap();
        let (o_count, ol_cnt_sum) = *orders.get(&d).expect("district has orders");
        assert_eq!(o_count, next_o - 1, "district {d}: {o_count} orders but d_next_o_id {next_o}");
        let no_count = new_orders.get(&d).map(|(c, _)| *c).unwrap_or(0);
        assert_eq!(
            no_count,
            next_o - next_del,
            "district {d}: {no_count} new_order rows, expected window [{next_del}, {next_o})"
        );
        let ol_count = order_lines.get(&d).map(|(c, _)| *c).unwrap_or(0);
        assert_eq!(
            ol_count, ol_cnt_sum,
            "district {d}: {ol_count} order lines but orders claim {ol_cnt_sum}"
        );
    }

    // The pipeline grouped: one leader fsync covers many commits, so the
    // master fsync count must come in strictly under the commit count.
    assert!(commits > 0, "driver committed nothing");
    assert!(fsyncs < commits, "group commit did not batch: {fsyncs} fsyncs for {commits} commits");
}
