//! Point-in-time restore (paper §3.2): the blob store is a continuous
//! backup. Run a workload in phases, capture the log position and a model
//! of the table after each, then restore every captured position from blob
//! objects alone and diff against the model.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use s2db_repro::blob::{MemoryStore, ObjectStore};
use s2db_repro::cluster::{restore_from_blob, BlobBackedFileStore, StorageConfig, StorageService};
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::core::{DataFileStore, Partition};
use s2db_repro::wal::Log;

fn table_state(p: &Arc<Partition>, table: u32) -> BTreeMap<i64, i64> {
    let snap = p.read_snapshot();
    let ts = snap.table(table).unwrap();
    let mut out = BTreeMap::new();
    for (_, row) in ts.rowstore_rows() {
        out.insert(row.get(0).as_int().unwrap(), row.get(1).as_int().unwrap());
    }
    for seg in &ts.segments {
        for ri in 0..seg.core.meta.row_count {
            if seg.deleted.get(ri) {
                continue;
            }
            let row = seg.core.reader.row(ri).unwrap();
            out.insert(row.get(0).as_int().unwrap(), row.get(1).as_int().unwrap());
        }
    }
    out
}

#[test]
fn pitr_restores_three_historical_positions() {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let files = BlobBackedFileStore::new(Arc::clone(&blob), 1 << 20);
    let master = Partition::new(
        "pitr_p0",
        Arc::new(Log::in_memory()),
        Arc::clone(&files) as Arc<dyn DataFileStore>,
    );
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int64),
        ColumnDef::new("v", DataType::Int64),
    ])
    .unwrap();
    let t = master
        .create_table(
            "t",
            schema,
            TableOptions::new()
                .with_sort_key(vec![0])
                .with_unique("pk", vec![0])
                .with_flush_threshold(8)
                .with_segment_rows(16),
        )
        .unwrap();
    let cfg = StorageConfig {
        chunk_bytes: 256,
        snapshot_interval_bytes: 512,
        tick: Duration::from_millis(1),
        require_replicated: false,
    };
    let last_snap = Arc::new(AtomicU64::new(0));
    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    let mut targets: Vec<(u64, BTreeMap<i64, i64>)> = Vec::new();

    // Ship everything to blob and record (position, expected state).
    let capture = |model: &BTreeMap<i64, i64>, targets: &mut Vec<_>| {
        for _ in 0..5 {
            StorageService::pass(&master, &blob, &cfg, &last_snap).unwrap();
            files.drain_uploads();
            if master.log.uploaded_lp() == master.log.end_lp() {
                break;
            }
        }
        assert_eq!(master.log.uploaded_lp(), master.log.end_lp());
        targets.push((master.log.end_lp(), model.clone()));
    };

    // Phase 1: inserts (some flushed to columnstore segments).
    for i in 0..40 {
        let mut txn = master.begin();
        txn.insert(t, Row::new(vec![Value::Int(i), Value::Int(i)])).unwrap();
        txn.commit().unwrap();
        model.insert(i, i);
    }
    master.flush_table(t, true).unwrap();
    capture(&model, &mut targets);

    // Phase 2: updates and deletes (segment rows move, delete bits set).
    for i in 0..20 {
        let mut txn = master.begin();
        txn.update_unique(t, &[Value::Int(i)], Row::new(vec![Value::Int(i), Value::Int(i + 100)]))
            .unwrap();
        txn.commit().unwrap();
        model.insert(i, i + 100);
    }
    for i in 30..40 {
        let mut txn = master.begin();
        txn.delete_unique(t, &[Value::Int(i)]).unwrap();
        txn.commit().unwrap();
        model.remove(&i);
    }
    master.flush_table(t, true).unwrap();
    capture(&model, &mut targets);

    // Phase 3: merge + vacuum (dead segments dropped, files GC'd locally —
    // blob retains history) and a last round of writes.
    while master.merge_table(t).unwrap() {}
    master.vacuum().unwrap();
    for i in 100..120 {
        let mut txn = master.begin();
        txn.insert(t, Row::new(vec![Value::Int(i), Value::Int(-i)])).unwrap();
        txn.commit().unwrap();
        model.insert(i, -i);
    }
    capture(&model, &mut targets);

    assert_eq!(targets.len(), 3);
    // Each target position restores from blob objects alone (fresh file
    // store: every data file read comes from the blob) and matches the
    // model of record — including positions before the merge, whose input
    // files were locally vacuumed.
    for (lp, expected) in &targets {
        let restore_files = BlobBackedFileStore::new(Arc::clone(&blob), 1 << 20);
        let restored =
            restore_from_blob(&blob, "pitr_p0", restore_files as Arc<dyn DataFileStore>, Some(*lp))
                .unwrap();
        let t2 = restored.table_by_name("t").unwrap().id;
        assert_eq!(&table_state(&restored, t2), expected, "divergence restoring to lp {lp}");
    }

    // Restoring with no target yields the latest state.
    let restore_files = BlobBackedFileStore::new(Arc::clone(&blob), 1 << 20);
    let latest =
        restore_from_blob(&blob, "pitr_p0", restore_files as Arc<dyn DataFileStore>, None).unwrap();
    let t2 = latest.table_by_name("t").unwrap().id;
    assert_eq!(table_state(&latest, t2), model);
}
