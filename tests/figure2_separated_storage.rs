//! Figure 2's architecture end to end: the master workspace uploads data
//! files, log chunks and snapshots to blob storage asynchronously while
//! replication guarantees durability of the log tail; a read-only workspace
//! provisions itself from blob storage and replicates only the tail.

use std::sync::Arc;
use std::time::Duration;

use s2db_repro::blob::{MemoryStore, ObjectStore};
use s2db_repro::cluster::{Cluster, ClusterConfig, StorageConfig, Workspace};
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::exec::{AggFunc, Aggregate, Expr};
use s2db_repro::query::{ExecOptions, Plan};

#[test]
fn figure2_blob_shipping_and_readonly_workspace() {
    let mem = Arc::new(MemoryStore::new());
    let blob: Arc<dyn ObjectStore> = mem.clone();
    let cluster = Cluster::new(
        "f2",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 1,
            sync_replication: true,
            blob: Some(Arc::clone(&blob)),
            cache_bytes: 64 << 20,
            storage: StorageConfig {
                tick: Duration::from_millis(5),
                snapshot_interval_bytes: 16 * 1024,
                chunk_bytes: 32 * 1024,
                ..Default::default()
            },
            breaker: None,
        },
    )
    .unwrap();
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("v", DataType::Double),
    ])
    .unwrap();
    cluster
        .create_table(
            "m",
            schema,
            TableOptions::new().with_shard_key(vec![0]).with_unique("pk", vec![0]),
        )
        .unwrap();

    // Write enough that flushes create data files; everything commits on
    // replication, never on blob puts.
    for batch in 0..5i64 {
        let mut txn = cluster.begin();
        for i in 0..2_000 {
            let id = batch * 2_000 + i;
            txn.insert("m", Row::new(vec![Value::Int(id), Value::Double(id as f64)])).unwrap();
        }
        txn.commit().unwrap();
    }
    cluster.flush_table("m").unwrap();
    cluster.sync_to_blob().unwrap();

    // The blob store now holds all three object kinds of figure 2.
    let keys = blob.list("").unwrap();
    let logs = keys.iter().filter(|k| k.contains("/log/")).count();
    let snapshots = keys.iter().filter(|k| k.contains("/snapshots/")).count();
    let data_files = keys.iter().filter(|k| k.contains("/files/")).count();
    assert!(logs > 0, "log chunks uploaded: {keys:?}");
    assert!(snapshots > 0, "snapshots uploaded");
    assert!(data_files > 0, "data files uploaded");

    // Replication watermarks: the replicated position trails the end only by
    // in-flight bytes; uploaded position never exceeds the durable one.
    for pid in 0..cluster.partition_count() {
        let master = cluster.set(pid).master();
        assert!(master.log.replicated_lp() > 0);
        assert!(master.log.uploaded_lp() <= master.log.end_lp());
    }

    // Right side of figure 2: a read-only workspace provisioned from blob.
    let ws = Workspace::provision("ro", &cluster, &blob, 64 << 20).unwrap();
    assert!(ws.catch_up(Duration::from_secs(10)));
    let plan = Plan::scan("m", vec![0], None).aggregate(
        vec![],
        vec![Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) }],
    );
    let out = ws.execute(&plan, &ExecOptions::default()).unwrap();
    assert_eq!(out.value(0, 0), Value::Int(10_000));

    // Workspace data files come from the blob store on demand, through the
    // workspace's own cache — not from the primary.
    let (hits, misses) = ws.file_stores[0].cache_stats();
    assert!(hits + misses > 0, "workspace used its own file cache");
}
