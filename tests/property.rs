//! Property-based tests over the core data structures and the storage
//! engine's end-to-end invariants.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use s2db_repro::common::io::ByteWriter;
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::core::{MemFileStore, Partition};
use s2db_repro::encoding::{encode_column, lz, ColumnReader, Encoding};
use s2db_repro::index::{encode_postings, intersect, PostingsReader};
use s2db_repro::wal::Log;

fn opt_int() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![
        3 => any::<i64>().prop_map(Some),
        1 => prop::strategy::Just(None),
        2 => (-100i64..100).prop_map(Some), // clustered values exercise RLE/dict
    ]
}

fn opt_str() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        3 => "[a-z]{0,12}".prop_map(Some),
        1 => prop::strategy::Just(None),
        2 => prop::sample::select(vec!["alpha", "beta", "gamma"])
            .prop_map(|s| Some(s.to_string())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_encodings_roundtrip(values in prop::collection::vec(opt_int(), 0..300)) {
        let vals: Vec<Value> =
            values.iter().map(|v| v.map_or(Value::Null, Value::Int)).collect();
        for enc in [
            None,
            Some(Encoding::PlainInt),
            Some(Encoding::BitPackInt),
            Some(Encoding::RleInt),
            Some(Encoding::DictInt),
        ] {
            let col = encode_column(&vals, DataType::Int64, enc).unwrap();
            let r = ColumnReader::open(&col).unwrap();
            prop_assert_eq!(r.rows(), vals.len());
            for (i, v) in vals.iter().enumerate() {
                prop_assert_eq!(&r.value(i).unwrap(), v);
            }
        }
    }

    #[test]
    fn str_encodings_roundtrip(values in prop::collection::vec(opt_str(), 0..300)) {
        let vals: Vec<Value> =
            values.iter().map(|v| v.as_deref().map_or(Value::Null, Value::str)).collect();
        for enc in [None, Some(Encoding::PlainStr), Some(Encoding::DictStr), Some(Encoding::LzStr)] {
            let col = encode_column(&vals, DataType::Str, enc).unwrap();
            let r = ColumnReader::open(&col).unwrap();
            for (i, v) in vals.iter().enumerate() {
                prop_assert_eq!(&r.value(i).unwrap(), v);
            }
        }
    }

    #[test]
    fn lz_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&c).unwrap(), data);
    }

    #[test]
    fn encoded_filter_matches_regular(values in prop::collection::vec(-20i64..20, 1..400),
                                      probe in -20i64..20) {
        let vals: Vec<Value> = values.iter().copied().map(Value::Int).collect();
        let col = encode_column(&vals, DataType::Int64, Some(Encoding::DictInt)).unwrap();
        let r = ColumnReader::open(&col).unwrap();
        let got = r
            .encoded_filter(&mut |v| v == &Value::Int(probe), None)
            .unwrap()
            .unwrap();
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == probe)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn postings_intersect_matches_naive(
        a in prop::collection::btree_set(0u32..2_000, 0..300),
        b in prop::collection::btree_set(0u32..2_000, 0..300),
    ) {
        let av: Vec<u32> = a.iter().copied().collect();
        let bv: Vec<u32> = b.iter().copied().collect();
        let mut wa = ByteWriter::new();
        encode_postings(&mut wa, &av);
        let ba = wa.into_bytes();
        let mut wb = ByteWriter::new();
        encode_postings(&mut wb, &bv);
        let bb = wb.into_bytes();
        let got = intersect(vec![
            PostingsReader::open(&ba, 0).unwrap(),
            PostingsReader::open(&bb, 0).unwrap(),
        ])
        .unwrap();
        let expected: Vec<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(got, expected);
    }
}

/// Model-based test of the unified table: a random op sequence applied both
/// to the engine (with interleaved flush/merge/vacuum/recovery) and to a
/// `BTreeMap` model; visible state must always match the model.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    Flush,
    Merge,
    Vacuum,
    Recover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..50, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => (0i64..50, any::<i64>()).prop_map(|(k, v)| Op::Update(k, v)),
        2 => (0i64..50).prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::Merge),
        1 => Just(Op::Vacuum),
        1 => Just(Op::Recover),
    ]
}

fn engine_state(p: &Arc<Partition>, t: u32) -> BTreeMap<i64, i64> {
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    let mut out = BTreeMap::new();
    // Rowstore side.
    for (_, row) in ts.rowstore_rows() {
        out.insert(row.get(0).as_int().unwrap(), row.get(1).as_int().unwrap());
    }
    // Segment side.
    for seg in &ts.segments {
        for ri in 0..seg.core.meta.row_count {
            if seg.deleted.get(ri) {
                continue;
            }
            let row = seg.core.reader.row(ri).unwrap();
            out.insert(row.get(0).as_int().unwrap(), row.get(1).as_int().unwrap());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn unified_table_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let files = Arc::new(MemFileStore::new());
        let log = Arc::new(Log::in_memory());
        let mut p = Partition::new("prop", Arc::clone(&log), files.clone());
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int64),
            ColumnDef::new("v", DataType::Int64),
        ])
        .unwrap();
        let t = p
            .create_table(
                "t",
                schema,
                TableOptions::new()
                    .with_sort_key(vec![0])
                    .with_unique("pk", vec![0])
                    .with_flush_threshold(8)
                    .with_segment_rows(16),
            )
            .unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let mut txn = p.begin();
                    let r = txn.insert(t, Row::new(vec![Value::Int(k), Value::Int(v)]));
                    match r {
                        Ok(()) => {
                            prop_assert!(!model.contains_key(&k), "engine accepted dup {k}");
                            txn.commit().unwrap();
                            model.insert(k, v);
                        }
                        Err(e) => {
                            prop_assert!(model.contains_key(&k), "engine rejected new key: {e}");
                            txn.rollback();
                        }
                    }
                }
                Op::Update(k, v) => {
                    let mut txn = p.begin();
                    let updated = txn
                        .update_unique(t, &[Value::Int(k)], Row::new(vec![Value::Int(k), Value::Int(v)]))
                        .unwrap();
                    txn.commit().unwrap();
                    prop_assert_eq!(updated, model.contains_key(&k));
                    if updated {
                        model.insert(k, v);
                    }
                }
                Op::Delete(k) => {
                    let mut txn = p.begin();
                    let deleted = txn.delete_unique(t, &[Value::Int(k)]).unwrap();
                    txn.commit().unwrap();
                    prop_assert_eq!(deleted, model.remove(&k).is_some());
                }
                Op::Flush => {
                    p.flush_table(t, true).unwrap();
                }
                Op::Merge => {
                    while p.merge_table(t).unwrap() {}
                }
                Op::Vacuum => {
                    p.vacuum().unwrap();
                }
                Op::Recover => {
                    p = Partition::recover("prop", Arc::clone(&log), files.clone(), None, None)
                        .unwrap();
                }
            }
            prop_assert_eq!(&engine_state(&p, t), &model);
        }
    }
}

// --------------------------------------------------------------------------
// WAL torn-tail recovery: whatever a torn write leaves on disk, recovery
// keeps exactly the longest checksummed prefix — no more (no corrupt frames
// applied), no less (no valid commits dropped).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wal_recovers_longest_checksummed_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..60), 1..20),
        cut_frac in 0.0f64..1.0,
        flip in prop::option::of((any::<usize>(), 0u32..8)),
    ) {
        use s2db_repro::wal::{valid_prefix_len, RecordIter};

        let log = Log::in_memory();
        let mut boundaries = vec![0u64];
        for p in &payloads {
            let (_, end) = log.append(1, p);
            boundaries.push(end);
        }
        let bytes = log.read_range(0, log.end_lp()).unwrap();

        // Tear the tail at an arbitrary byte, optionally flipping one bit of
        // what survives (a torn sector is not guaranteed to be a clean cut).
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let mut torn = bytes[..cut].to_vec();
        if let Some((pos, bit)) = flip {
            if !torn.is_empty() {
                let i = pos % torn.len();
                torn[i] ^= 1u8 << bit;
            }
        }

        let vp = valid_prefix_len(&torn) as u64;
        // The recovered prefix is always a frame boundary within the cut.
        prop_assert!(vp <= cut as u64);
        prop_assert!(boundaries.contains(&vp), "prefix {} is not a frame boundary", vp);
        // A clean cut loses nothing it didn't have to: the prefix is the
        // *largest* boundary at or below the cut.
        if flip.is_none() {
            let expect = boundaries.iter().copied().filter(|b| *b <= cut as u64).max().unwrap();
            prop_assert_eq!(vp, expect);
        }

        // Log::open over the torn file truncates to exactly that prefix and
        // the surviving records decode identically to the originals.
        let dir = std::env::temp_dir().join(format!("s2db-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("torn-{}-{}.log", cut, torn.len()));
        std::fs::write(&path, &torn).unwrap();
        let reopened = Log::open(&path).unwrap();
        prop_assert_eq!(reopened.end_lp(), vp);
        let recovered = reopened.read_range(0, vp).unwrap();
        let mut it = RecordIter::new(&recovered, 0);
        let mut count = 0usize;
        for rec in it.by_ref() {
            let rec = rec.unwrap();
            prop_assert_eq!(rec.payload, &payloads[count][..]);
            count += 1;
        }
        let expect_count = boundaries.iter().filter(|b| **b > 0 && **b <= vp).count();
        prop_assert_eq!(count, expect_count);
        // Recovery is append-ready: new records land after the prefix.
        let (lp, _) = reopened.append(2, b"after-recovery");
        prop_assert_eq!(lp, vp);
        std::fs::remove_file(&path).ok();
    }
}
