//! The replication stream applier must reassemble records correctly no
//! matter how the byte stream is split into chunks (the paper's log pages
//! can arrive at arbitrary boundaries, including mid-frame).

use std::sync::Arc;

use proptest::prelude::*;
use s2db_repro::cluster::StreamApplier;
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::core::{MemFileStore, Partition};
use s2db_repro::wal::{Log, LogChunk};

fn build_master() -> (Arc<Partition>, Arc<MemFileStore>, u32) {
    let files = Arc::new(MemFileStore::new());
    let p = Partition::new("rs_p0", Arc::new(Log::in_memory()), files.clone());
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("v", DataType::Str),
    ])
    .unwrap();
    let t = p
        .create_table(
            "t",
            schema,
            TableOptions::new().with_unique("pk", vec![0]).with_segment_rows(40),
        )
        .unwrap();
    // A workload that produces every record kind: commits, flushes, a move
    // (via update of a segment row), a merge.
    for batch in 0..6i64 {
        let mut txn = p.begin();
        for i in 0..30 {
            txn.insert(t, Row::new(vec![Value::Int(batch * 30 + i), Value::str("x")])).unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    let mut txn = p.begin();
    txn.update_unique(t, &[Value::Int(5)], Row::new(vec![Value::Int(5), Value::str("upd")]))
        .unwrap();
    txn.delete_unique(t, &[Value::Int(6)]).unwrap();
    txn.commit().unwrap();
    while p.merge_table(t).unwrap() {}
    (p, files, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn applier_handles_arbitrary_chunk_boundaries(seed in any::<u64>()) {
        let (master, files, t) = build_master();
        let bytes = master.log.read_range(0, master.log.end_lp()).unwrap();

        // Split the stream at pseudo-random boundaries (including size-1 and
        // mid-frame cuts) and feed the chunks to a fresh replica.
        let replica = Partition::new("rs_p0", Arc::new(Log::in_memory()), files.clone());
        let mut applier = StreamApplier::new(0);
        let mut x = seed | 1;
        let mut pos = 0usize;
        while pos < bytes.len() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let take = 1 + (x as usize % 97).min(bytes.len() - pos - 1);
            let chunk = LogChunk {
                start_lp: pos as u64,
                bytes: Arc::new(bytes[pos..pos + take].to_vec()),
            };
            applier.feed(&replica, &chunk).unwrap();
            pos += take;
        }
        prop_assert_eq!(applier.applied_lp(), bytes.len() as u64);

        // The replica's state matches the master exactly.
        let master_rows = master.read_snapshot().table(t).unwrap().live_row_count();
        let t2 = replica.table_by_name("t").unwrap().id;
        let snap = replica.read_snapshot();
        prop_assert_eq!(snap.table(t2).unwrap().live_row_count(), master_rows);
        let txn = replica.begin();
        let updated = txn.get_unique(t2, &[Value::Int(5)]).unwrap().unwrap();
        prop_assert_eq!(updated.get(1), &Value::str("upd"));
        prop_assert!(txn.get_unique(t2, &[Value::Int(6)]).unwrap().is_none());
        txn.rollback();
    }
}
