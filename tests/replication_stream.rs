//! The replication stream applier must reassemble records correctly no
//! matter how the byte stream is split into chunks (the paper's log pages
//! can arrive at arbitrary boundaries, including mid-frame).

use std::sync::Arc;

use proptest::prelude::*;
use s2db_repro::cluster::StreamApplier;
use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::core::{MemFileStore, Partition};
use s2db_repro::wal::{Log, LogChunk};

fn build_master() -> (Arc<Partition>, Arc<MemFileStore>, u32) {
    let files = Arc::new(MemFileStore::new());
    let p = Partition::new("rs_p0", Arc::new(Log::in_memory()), files.clone());
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("v", DataType::Str),
    ])
    .unwrap();
    let t = p
        .create_table(
            "t",
            schema,
            TableOptions::new().with_unique("pk", vec![0]).with_segment_rows(40),
        )
        .unwrap();
    // A workload that produces every record kind: commits, flushes, a move
    // (via update of a segment row), a merge.
    for batch in 0..6i64 {
        let mut txn = p.begin();
        for i in 0..30 {
            txn.insert(t, Row::new(vec![Value::Int(batch * 30 + i), Value::str("x")])).unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    let mut txn = p.begin();
    txn.update_unique(t, &[Value::Int(5)], Row::new(vec![Value::Int(5), Value::str("upd")]))
        .unwrap();
    txn.delete_unique(t, &[Value::Int(6)]).unwrap();
    txn.commit().unwrap();
    while p.merge_table(t).unwrap() {}
    (p, files, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn applier_handles_arbitrary_chunk_boundaries(seed in any::<u64>()) {
        let (master, files, t) = build_master();
        let bytes = master.log.read_range(0, master.log.end_lp()).unwrap();

        // Split the stream at pseudo-random boundaries (including size-1 and
        // mid-frame cuts) and feed the chunks to a fresh replica.
        let replica = Partition::new("rs_p0", Arc::new(Log::in_memory()), files.clone());
        let mut applier = StreamApplier::new(0);
        let mut x = seed | 1;
        let mut pos = 0usize;
        while pos < bytes.len() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let take = 1 + (x as usize % 97).min(bytes.len() - pos - 1);
            let chunk = LogChunk {
                start_lp: pos as u64,
                bytes: Arc::new(bytes[pos..pos + take].to_vec()),
            };
            applier.feed(&replica, &chunk).unwrap();
            pos += take;
        }
        prop_assert_eq!(applier.applied_lp(), bytes.len() as u64);

        // The replica's state matches the master exactly.
        let master_rows = master.read_snapshot().table(t).unwrap().live_row_count();
        let t2 = replica.table_by_name("t").unwrap().id;
        let snap = replica.read_snapshot();
        prop_assert_eq!(snap.table(t2).unwrap().live_row_count(), master_rows);
        let txn = replica.begin();
        let updated = txn.get_unique(t2, &[Value::Int(5)]).unwrap().unwrap();
        prop_assert_eq!(updated.get(1), &Value::str("upd"));
        prop_assert!(txn.get_unique(t2, &[Value::Int(6)]).unwrap().is_none());
        txn.rollback();
    }
}

// --------------------------------------------------------------------------
// Replica failure and re-attach: the replicated watermark must never move
// backwards — not when the replica dies mid-ack, not while a fresh replica
// replays the stream from scratch (guards the ack-before-publish ordering
// in Replica's apply loop).

#[test]
fn replica_killed_mid_ack_watermark_stays_monotonic() {
    use s2db_repro::cluster::{empty_replica_partition, Replica};
    use std::time::{Duration, Instant};

    let files = Arc::new(MemFileStore::new());
    let master = Partition::new("rs_ha", Arc::new(Log::in_memory()), files.clone());
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("v", DataType::Int64),
    ])
    .unwrap();
    let t =
        master.create_table("t", schema, TableOptions::new().with_unique("pk", vec![0])).unwrap();
    let commit_range = |from: i64, to: i64| {
        for i in from..to {
            let mut txn = master.begin();
            txn.insert(t, Row::new(vec![Value::Int(i), Value::Int(i)])).unwrap();
            txn.commit().unwrap();
        }
    };

    // Phase 1: an acking replica follows along.
    let rp1 = empty_replica_partition("rs_ha", files.clone(), 0);
    let r1 = Replica::start(&master, rp1, 0, true).unwrap();
    commit_range(0, 30);
    assert!(r1.wait_applied(master.log.end_lp(), Duration::from_secs(5)));
    // Ack-before-publish: once applied covers a position, the master's
    // replicated watermark covers it too.
    assert!(master.log.replicated_lp() >= r1.applied_lp());

    // Phase 2: more commits land, then the replica is killed mid-stream
    // (no wait — it may die between applying and acking).
    commit_range(30, 50);
    let w_at_kill = master.log.replicated_lp();
    drop(r1);

    // Detached: commits proceed, the watermark freezes but never regresses.
    commit_range(50, 80);
    let w_detached = master.log.replicated_lp();
    assert!(w_detached >= w_at_kill, "watermark regressed after replica death");

    // Phase 3: a fresh replica re-attaches from position 0 and catches up;
    // the watermark climbs monotonically the whole way.
    let rp2 = empty_replica_partition("rs_ha", files.clone(), 0);
    let r2 = Replica::start(&master, rp2, 0, true).unwrap();
    let end = master.log.end_lp();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut last = w_detached;
    loop {
        let w = master.log.replicated_lp();
        assert!(w >= last, "watermark regressed during catch-up: {last} -> {w}");
        last = w;
        if w >= end {
            break;
        }
        assert!(Instant::now() < deadline, "replica catch-up timed out at {w}/{end}");
        std::thread::yield_now();
    }
    assert!(r2.wait_applied(end, Duration::from_secs(5)));

    // The re-attached replica converged to the full master state.
    let t2 = r2.partition.table_by_name("t").unwrap().id;
    assert_eq!(r2.partition.read_snapshot().table(t2).unwrap().live_row_count(), 80);
}
