//! Figure 1's write sequence, step by step: (a) insert transactions land in
//! the in-memory rowstore and the log; (b) the flusher converts rowstore
//! rows into a columnstore segment whose data file is named after the log
//! position that created it; (c) deleting a row from a segment only flips a
//! bit in the (logged) metadata — the data file itself is immutable.

use std::sync::Arc;

use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::core::{DataFileStore, MemFileStore, Partition};
use s2db_repro::wal::Log;

fn setup() -> (Arc<Partition>, Arc<MemFileStore>, u32) {
    let files = Arc::new(MemFileStore::new());
    let p = Partition::new("f1_p0", Arc::new(Log::in_memory()), files.clone());
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("v", DataType::Str),
    ])
    .unwrap();
    let t = p.create_table("t", schema, TableOptions::new().with_unique("pk", vec![0])).unwrap();
    (p, files, t)
}

#[test]
fn figure1_insert_flush_delete() {
    let (p, files, t) = setup();

    // (a) Two insert transactions: rows 1,2 then row 3. Both are in the
    // rowstore and durable in the log; no data files exist yet.
    let mut txn = p.begin();
    txn.insert(t, Row::new(vec![Value::Int(1), Value::str("a")])).unwrap();
    txn.insert(t, Row::new(vec![Value::Int(2), Value::str("b")])).unwrap();
    txn.commit().unwrap();
    let mut txn = p.begin();
    txn.insert(t, Row::new(vec![Value::Int(3), Value::str("c")])).unwrap();
    txn.commit().unwrap();

    let lp_before_flush = p.log.end_lp();
    assert!(lp_before_flush > 0, "both transactions logged");
    assert_eq!(files.file_count(), 0, "no data files before the flush");
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    assert_eq!(ts.rowstore_rows().len(), 3);
    assert_eq!(ts.segments.len(), 0);

    // (b) The flush converts rows 1,2,3 into segment 1 and removes them from
    // the rowstore, in one transaction. The file is named after the log
    // position at which it was created — logically part of the log stream.
    assert_eq!(p.flush_table(t, true).unwrap(), 1);
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    assert_eq!(ts.rowstore_rows().len(), 0, "rows left the rowstore");
    assert_eq!(ts.segments.len(), 1, "one segment created");
    let seg = &ts.segments[0];
    assert_eq!(seg.core.meta.row_count, 3);
    assert_eq!(
        seg.core.meta.file_id, lp_before_flush,
        "data file named after the log position of its creating flush"
    );
    assert_eq!(files.file_count(), 1);
    let file_bytes_after_flush = files
        .read_file(&s2db_repro::core::file_name("f1_p0", seg.core.meta.file_id, seg.core.meta.id))
        .unwrap();

    // (c) Delete row 2: only segment *metadata* changes (one deleted bit);
    // the data file bytes are untouched; the change is logged.
    let lp_before_delete = p.log.end_lp();
    let mut txn = p.begin();
    assert!(txn.delete_unique(t, &[Value::Int(2)]).unwrap());
    txn.commit().unwrap();
    assert!(p.log.end_lp() > lp_before_delete, "metadata change was logged");

    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    assert_eq!(ts.segments.len(), 1);
    let seg = &ts.segments[0];
    assert_eq!(seg.deleted.count_ones(), 1, "exactly one deleted bit set");
    assert_eq!(seg.live_rows(), 2);
    let file_bytes_after_delete = files
        .read_file(&s2db_repro::core::file_name("f1_p0", seg.core.meta.file_id, seg.core.meta.id))
        .unwrap();
    assert_eq!(
        file_bytes_after_flush, file_bytes_after_delete,
        "the data file is immutable; the delete lives in metadata"
    );

    // Readers see exactly rows 1 and 3.
    let txn = p.begin();
    assert!(txn.get_unique(t, &[Value::Int(1)]).unwrap().is_some());
    assert!(txn.get_unique(t, &[Value::Int(2)]).unwrap().is_none());
    assert!(txn.get_unique(t, &[Value::Int(3)]).unwrap().is_some());
    txn.rollback();

    // And the whole sequence replays identically from the log alone.
    let p2 = Partition::recover("f1_p0", Arc::clone(&p.log), files, None, None).unwrap();
    let t2 = p2.table_by_name("t").unwrap().id;
    let snap = p2.read_snapshot();
    assert_eq!(snap.table(t2).unwrap().live_row_count(), 2);
}
