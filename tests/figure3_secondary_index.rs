//! Figure 3's two-level secondary index structure, observed directly:
//! per-segment inverted indexes map values to postings lists of row offsets,
//! and the global hash-table LSM maps value hashes to (segment, postings
//! offset) pairs — lookups probe O(levels), not O(segments).

use std::sync::Arc;

use s2db_repro::common::schema::ColumnDef;
use s2db_repro::common::{DataType, Row, Schema, TableOptions, Value};
use s2db_repro::core::{MemFileStore, Partition};
use s2db_repro::wal::Log;

#[test]
fn figure3_two_level_lookup() {
    let p = Partition::new("f3", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("user", DataType::Str),
    ])
    .unwrap();
    let t = p
        .create_table(
            "events",
            schema,
            TableOptions::new().with_unique("pk", vec![0]).with_index("by_user", vec![1]),
        )
        .unwrap();

    // Several flushes -> several segments, each with its own inverted index.
    let users = ["ada", "grace", "edsger"];
    for batch in 0..4i64 {
        let mut txn = p.begin();
        for i in 0..90 {
            let id = batch * 90 + i;
            txn.insert(t, Row::new(vec![Value::Int(id), Value::str(users[(id % 3) as usize])]))
                .unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }

    let table = p.table(t).unwrap();
    let segments = table.live_segments();
    assert_eq!(segments.len(), 4);

    // Level 1: every segment has an inverted index on the user column whose
    // postings are exact row offsets.
    for seg in &segments {
        let ix = seg.inverted.get(&1).expect("inverted index on user column");
        assert_eq!(ix.entry_count(), 3, "three distinct users per segment");
        let mut postings = ix.lookup(&Value::str("grace")).unwrap().unwrap();
        let rows = postings.collect_remaining().unwrap();
        assert_eq!(rows.len(), 30);
        for &r in &rows {
            assert_eq!(seg.reader.value(1, r as usize).unwrap(), Value::str("grace"));
        }
    }

    // Level 2: the global probe finds every segment containing the value and
    // lands directly on each segment's postings list.
    let hits = table.index_probe_latest(&[1], &[Value::str("ada")]).unwrap();
    assert_eq!(hits.len(), 4, "all four segments contain 'ada'");
    let total: usize = hits.iter().map(|(_, rows)| rows.len()).sum();
    assert_eq!(total, 120);

    // A value that exists nowhere probes to nothing (hash collisions are
    // verified against the stored values in the inverted index).
    assert!(table.index_probe_latest(&[1], &[Value::str("nobody")]).unwrap().is_empty());

    // After deleting one user's rows, probes skip them via the deleted bits.
    let mut txn = p.begin();
    for id in (0..360).filter(|i| i % 3 == 1) {
        txn.delete_unique(t, &[Value::Int(id)]).unwrap();
    }
    txn.commit().unwrap();
    let hits = table.index_probe_latest(&[1], &[Value::str("grace")]).unwrap();
    let total: usize = hits.iter().map(|(_, rows)| rows.len()).sum();
    assert_eq!(total, 0, "deleted rows filtered out of probe results");
}
