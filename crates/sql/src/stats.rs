//! Planner-side table statistics and the static `(1 - P(X)) / cost(X)`
//! clause-ranking model from paper §5. The adaptive scan executor measures
//! true selectivities and per-clause costs at run time; the planner uses the
//! same formula with *estimates* derived from segment metadata (row counts
//! plus per-column min/max) to pick an initial clause order and join order.

use std::sync::Arc;

use s2_common::{DataType, Value};
use s2_core::TableSnapshot;
use s2_exec::{CmpOp, Expr};

/// Per-column statistics merged across every segment of every partition.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Smallest and largest non-null value seen in segment metadata, if any
    /// segment recorded one.
    pub min_max: Option<(Value, Value)>,
}

/// Table-level statistics driving cost estimates.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Total live rows across all partitions (rowstore + segments).
    pub rows: f64,
    /// Column types in ordinal order.
    pub types: Vec<DataType>,
    /// Per-ordinal stats.
    pub cols: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect stats from the snapshots backing one logical table.
    pub fn collect(snaps: &[Arc<TableSnapshot>]) -> TableStats {
        let width = snaps.first().map(|s| s.schema().len()).unwrap_or(0);
        let types = snaps
            .first()
            .map(|s| s.schema().columns().iter().map(|c| c.data_type).collect())
            .unwrap_or_default();
        let mut cols = vec![ColumnStats::default(); width];
        let mut rows = 0usize;
        for snap in snaps {
            rows += snap.live_row_count();
            for seg in &snap.segments {
                for (ord, mm) in seg.core.meta.min_max.iter().enumerate().take(width) {
                    let Some((lo, hi)) = mm else { continue };
                    let entry = &mut cols[ord].min_max;
                    match entry {
                        None => *entry = Some((lo.clone(), hi.clone())),
                        Some((cur_lo, cur_hi)) => {
                            if lo.total_cmp(cur_lo).is_lt() {
                                *cur_lo = lo.clone();
                            }
                            if hi.total_cmp(cur_hi).is_gt() {
                                *cur_hi = hi.clone();
                            }
                        }
                    }
                }
            }
        }
        TableStats { rows: rows as f64, types, cols }
    }

    /// Empty stats for a derived relation of an estimated size.
    pub fn unknown(rows: f64) -> TableStats {
        TableStats { rows, types: Vec::new(), cols: Vec::new() }
    }

    /// Estimated fraction of rows passing `filter` (column refs are table
    /// ordinals).
    pub fn selectivity(&self, filter: &Expr) -> f64 {
        clamp01(self.sel(filter))
    }

    /// Estimated rows surviving an optional scan filter.
    pub fn filtered_rows(&self, filter: Option<&Expr>) -> f64 {
        match filter {
            Some(f) => self.rows * self.selectivity(f),
            None => self.rows,
        }
    }

    fn col_range(&self, ord: usize) -> Option<(f64, f64)> {
        let (lo, hi) = self.cols.get(ord)?.min_max.as_ref()?;
        Some((lo.as_double().ok()?, hi.as_double().ok()?))
    }

    /// Selectivity of one equality against a column, using the value range
    /// as a proxy for distinct count on ints and a flat guess elsewhere.
    fn eq_sel(&self, ord: usize) -> f64 {
        match self.col_range(ord) {
            Some((lo, hi)) if hi > lo => clamp01(1.0 / (hi - lo + 1.0)).max(1e-4),
            _ => 0.1,
        }
    }

    fn sel(&self, e: &Expr) -> f64 {
        match e {
            Expr::And(parts) => parts.iter().map(|p| self.sel(p)).product(),
            Expr::Or(parts) => {
                1.0 - parts.iter().map(|p| 1.0 - clamp01(self.sel(p))).product::<f64>()
            }
            Expr::Not(inner) => 1.0 - clamp01(self.sel(inner)),
            Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Column(ord), Expr::Literal(v)) => self.cmp_sel(*op, *ord, v),
                (Expr::Literal(v), Expr::Column(ord)) => self.cmp_sel(flip(*op), *ord, v),
                _ => 0.3,
            },
            Expr::InList(inner, list) => match inner.as_ref() {
                Expr::Column(ord) => clamp01(list.len() as f64 * self.eq_sel(*ord)),
                _ => 0.3,
            },
            Expr::Like(_, pattern) => {
                if pattern.starts_with('%') {
                    0.5
                } else {
                    0.25
                }
            }
            Expr::IsNull(_) => 0.02,
            Expr::Literal(v) => {
                // A constant predicate either keeps or drops everything.
                match v {
                    Value::Int(0) | Value::Null => 0.0,
                    Value::Double(d) if *d == 0.0 => 0.0,
                    _ => 1.0,
                }
            }
            _ => 0.33,
        }
    }

    fn cmp_sel(&self, op: CmpOp, ord: usize, v: &Value) -> f64 {
        match op {
            CmpOp::Eq => self.eq_sel(ord),
            CmpOp::Ne => 1.0 - self.eq_sel(ord),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let Some((lo, hi)) = self.col_range(ord) else { return 0.3 };
                let Ok(x) = v.as_double() else { return 0.3 };
                if hi <= lo {
                    return 0.5;
                }
                let frac = clamp01((x - lo) / (hi - lo));
                match op {
                    CmpOp::Lt | CmpOp::Le => frac,
                    _ => 1.0 - frac,
                }
            }
        }
    }

    /// Paper §5 ranking signal: clauses with the highest `(1 - P) / cost`
    /// run first. Higher is better.
    pub fn priority(&self, clause: &Expr) -> f64 {
        (1.0 - self.selectivity(clause)) / eval_cost(clause, &self.types).max(1.0)
    }
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// Estimated per-row evaluation cost of an expression, in comparison units.
/// String work costs more than numeric work; LIKE dominates.
pub fn eval_cost(expr: &Expr, types: &[DataType]) -> f64 {
    match expr {
        Expr::Column(_) | Expr::Literal(_) => 0.0,
        Expr::Cmp(_, a, b) => {
            let string_side = [a, b].iter().any(|e| is_str(e, types));
            let base = if string_side { 3.0 } else { 1.0 };
            base + eval_cost(a, types) + eval_cost(b, types)
        }
        Expr::And(parts) | Expr::Or(parts) => parts.iter().map(|p| 0.2 + eval_cost(p, types)).sum(),
        Expr::Not(e) | Expr::IsNull(e) => 0.2 + eval_cost(e, types),
        Expr::InList(e, list) => 1.0 + 0.2 * list.len() as f64 + eval_cost(e, types),
        Expr::Like(e, _) => 8.0 + eval_cost(e, types),
        Expr::Arith(_, a, b) => 1.0 + eval_cost(a, types) + eval_cost(b, types),
        Expr::Case { when, else_ } => {
            let arms: f64 =
                when.iter().map(|(c, r)| eval_cost(c, types) + eval_cost(r, types)).sum();
            1.0 + arms + eval_cost(else_, types)
        }
        Expr::Year(e) => 2.0 + eval_cost(e, types),
        Expr::Substr(e, _, _) => 4.0 + eval_cost(e, types),
    }
}

fn is_str(e: &Expr, types: &[DataType]) -> bool {
    match e {
        Expr::Column(ord) => types.get(*ord) == Some(&DataType::Str),
        Expr::Literal(v) => v.data_type() == Some(DataType::Str),
        Expr::Substr(..) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_stats(rows: f64, lo: i64, hi: i64) -> TableStats {
        TableStats {
            rows,
            types: vec![DataType::Int64],
            cols: vec![ColumnStats { min_max: Some((Value::Int(lo), Value::Int(hi))) }],
        }
    }

    #[test]
    fn range_selectivity_uses_min_max() {
        let s = int_stats(1000.0, 0, 99);
        let half = s.selectivity(&Expr::cmp(0, CmpOp::Lt, 50i64));
        assert!((half - 0.505).abs() < 0.01, "{half}");
        let none = s.selectivity(&Expr::cmp(0, CmpOp::Lt, 0i64));
        assert!(none < 0.01);
        let all = s.selectivity(&Expr::cmp(0, CmpOp::Ge, 0i64));
        assert!(all > 0.99);
    }

    #[test]
    fn cheap_selective_clause_wins_priority() {
        let s = TableStats {
            rows: 1000.0,
            types: vec![DataType::Int64, DataType::Str],
            cols: vec![
                ColumnStats { min_max: Some((Value::Int(0), Value::Int(9))) },
                ColumnStats::default(),
            ],
        };
        // A selective int equality outranks an expensive LIKE.
        let eq = Expr::eq(0, 3i64);
        let like = Expr::Like(Box::new(Expr::Column(1)), "%x%".into());
        assert!(s.priority(&eq) > s.priority(&like));
    }
}
