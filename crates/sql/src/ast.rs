//! SQL abstract syntax tree and its pretty-printer. The printer emits fully
//! parenthesized text whose reparse yields an identical AST (property-tested
//! in `tests/roundtrip.rs`).

use std::fmt;
use std::fmt::Write as _;

use s2_exec::{AggFunc, ArithOp, CmpOp};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(Select),
    /// `EXPLAIN <select>`: plan tree plus cost estimates, no execution.
    Explain(Select),
}

/// One SELECT query (possibly nested as a derived table).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Output expressions.
    pub items: Vec<SelectItem>,
    /// Comma-separated FROM items, each with its trailing explicit joins.
    pub from: Vec<FromItem>,
    /// WHERE predicate.
    pub where_: Option<SqlExpr>,
    /// GROUP BY expressions (bare integers are 1-based output positions).
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate.
    pub having: Option<SqlExpr>,
    /// ORDER BY items (bare integers are 1-based output positions).
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// One SELECT-list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`: every visible column in join order.
    Wildcard,
    /// An expression with an optional output alias.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// One comma-separated FROM entry: a base relation plus explicit joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// Leading relation.
    pub rel: TableRef,
    /// Explicit joins applied left to right.
    pub joins: Vec<Join>,
}

/// A relation in FROM: a named table or a parenthesized subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table, optionally aliased.
    Table {
        /// Table name (lowercased).
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Derived table: `(SELECT ...) AS alias`.
    Derived {
        /// The subquery.
        select: Box<Select>,
        /// Required alias.
        alias: String,
    },
}

impl TableRef {
    /// The name this relation binds in scope.
    pub fn binding(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

/// One explicit join step.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join flavor.
    pub kind: JoinKind,
    /// Right-hand relation.
    pub rel: TableRef,
    /// ON predicate (absent for CROSS JOIN).
    pub on: Option<SqlExpr>,
}

/// Join flavors surfaced in the grammar. SEMI/ANTI are first-class because
/// the execution engine supports them natively (EXISTS/NOT EXISTS sugar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// `SEMI JOIN`.
    Semi,
    /// `ANTI JOIN`.
    Anti,
    /// `CROSS JOIN`.
    Cross,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Key expression (bare integer = 1-based output position).
    pub expr: SqlExpr,
    /// Descending order.
    pub desc: bool,
}

/// Scalar functions surfaced in the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncName {
    /// `YEAR(date)` over days-since-epoch ints.
    Year,
    /// `SUBSTR(str, start, len)`, 1-based start.
    Substr,
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference, optionally qualified: `[rel.]name`.
    Column {
        /// Relation alias or table name.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal (also carries parsed DATE literals as epoch days).
    Int(i64),
    /// Float literal.
    Double(f64),
    /// String literal.
    Str(String),
    /// NULL literal.
    Null,
    /// Comparison.
    Cmp(CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Conjunction (binary in the AST; flattened during lowering).
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// Disjunction.
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// Negation.
    Not(Box<SqlExpr>),
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Literal list members.
        list: Vec<SqlExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `[NOT] LIKE 'pattern'`.
    Like {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `[NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Lower bound (inclusive).
        lo: Box<SqlExpr>,
        /// Upper bound (inclusive).
        hi: Box<SqlExpr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// Searched CASE.
    Case {
        /// (condition, result) arms.
        when: Vec<(SqlExpr, SqlExpr)>,
        /// ELSE result.
        else_: Option<Box<SqlExpr>>,
    },
    /// Scalar function call.
    Func(FuncName, Vec<SqlExpr>),
    /// Aggregate call; `arg: None` is `COUNT(*)`.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Argument (absent for `COUNT(*)`).
        arg: Option<Box<SqlExpr>>,
    },
}

impl SqlExpr {
    /// True if any `Agg` node occurs in this expression.
    pub fn has_agg(&self) -> bool {
        match self {
            SqlExpr::Agg { .. } => true,
            SqlExpr::Column { .. }
            | SqlExpr::Int(_)
            | SqlExpr::Double(_)
            | SqlExpr::Str(_)
            | SqlExpr::Null => false,
            SqlExpr::Cmp(_, a, b) | SqlExpr::Arith(_, a, b) => a.has_agg() || b.has_agg(),
            SqlExpr::And(a, b) | SqlExpr::Or(a, b) => a.has_agg() || b.has_agg(),
            SqlExpr::Not(e) | SqlExpr::IsNull { expr: e, .. } | SqlExpr::Like { expr: e, .. } => {
                e.has_agg()
            }
            SqlExpr::InList { expr, list, .. } => {
                expr.has_agg() || list.iter().any(SqlExpr::has_agg)
            }
            SqlExpr::Between { expr, lo, hi, .. } => expr.has_agg() || lo.has_agg() || hi.has_agg(),
            SqlExpr::Case { when, else_ } => {
                when.iter().any(|(c, r)| c.has_agg() || r.has_agg())
                    || else_.as_ref().is_some_and(|e| e.has_agg())
            }
            SqlExpr::Func(_, args) => args.iter().any(SqlExpr::has_agg),
        }
    }
}

fn escape_str(s: &str) -> String {
    s.replace('\'', "''")
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column { qualifier: Some(q), name } => write!(f, "{q}.{name}"),
            SqlExpr::Column { qualifier: None, name } => write!(f, "{name}"),
            SqlExpr::Int(v) => write!(f, "{v}"),
            SqlExpr::Double(v) => write!(f, "{v:?}"),
            SqlExpr::Str(s) => write!(f, "'{}'", escape_str(s)),
            SqlExpr::Null => write!(f, "NULL"),
            SqlExpr::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {sym} {b})")
            }
            SqlExpr::Arith(op, a, b) => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({a} {sym} {b})")
            }
            SqlExpr::And(a, b) => write!(f, "({a} AND {b})"),
            SqlExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            SqlExpr::Not(e) => write!(f, "(NOT {e})"),
            SqlExpr::IsNull { expr, negated: false } => write!(f, "({expr} IS NULL)"),
            SqlExpr::IsNull { expr, negated: true } => write!(f, "({expr} IS NOT NULL)"),
            SqlExpr::InList { expr, list, negated } => {
                let not = if *negated { "NOT " } else { "" };
                write!(f, "({expr} {not}IN (")?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            SqlExpr::Like { expr, pattern, negated: false } => {
                write!(f, "({expr} LIKE '{}')", escape_str(pattern))
            }
            SqlExpr::Like { expr, pattern, negated: true } => {
                write!(f, "({expr} NOT LIKE '{}')", escape_str(pattern))
            }
            SqlExpr::Between { expr, lo, hi, negated } => {
                let not = if *negated { "NOT " } else { "" };
                write!(f, "({expr} {not}BETWEEN {lo} AND {hi})")
            }
            SqlExpr::Case { when, else_ } => {
                write!(f, "(CASE")?;
                for (c, r) in when {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END)")
            }
            SqlExpr::Func(FuncName::Year, args) => {
                write!(f, "YEAR({})", args.first().map(|a| a.to_string()).unwrap_or_default())
            }
            SqlExpr::Func(FuncName::Substr, args) => {
                write!(f, "SUBSTR(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            SqlExpr::Agg { func, arg } => {
                let name = match func {
                    AggFunc::Count => "COUNT",
                    AggFunc::Sum => "SUM",
                    AggFunc::Avg => "AVG",
                    AggFunc::Min => "MIN",
                    AggFunc::Max => "MAX",
                };
                match arg {
                    Some(a) => write!(f, "{name}({a})"),
                    None => write!(f, "{name}(*)"),
                }
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias: None } => write!(f, "{name}"),
            TableRef::Table { name, alias: Some(a) } => write!(f, "{name} AS {a}"),
            TableRef::Derived { select, alias } => write!(f, "({select}) AS {alias}"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::from("SELECT ");
        if self.distinct {
            s.push_str("DISTINCT ");
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match item {
                SelectItem::Wildcard => s.push('*'),
                SelectItem::Expr { expr, alias: None } => {
                    let _ = write!(s, "{expr}");
                }
                SelectItem::Expr { expr, alias: Some(a) } => {
                    let _ = write!(s, "{expr} AS {a}");
                }
            }
        }
        if !self.from.is_empty() {
            s.push_str(" FROM ");
            for (i, item) in self.from.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{}", item.rel);
                for j in &item.joins {
                    let kw = match j.kind {
                        JoinKind::Inner => "INNER JOIN",
                        JoinKind::Left => "LEFT JOIN",
                        JoinKind::Semi => "SEMI JOIN",
                        JoinKind::Anti => "ANTI JOIN",
                        JoinKind::Cross => "CROSS JOIN",
                    };
                    let _ = write!(s, " {kw} {}", j.rel);
                    if let Some(on) = &j.on {
                        let _ = write!(s, " ON {on}");
                    }
                }
            }
        }
        if let Some(w) = &self.where_ {
            let _ = write!(s, " WHERE {w}");
        }
        if !self.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{g}");
            }
        }
        if let Some(h) = &self.having {
            let _ = write!(s, " HAVING {h}");
        }
        if !self.order_by.is_empty() {
            s.push_str(" ORDER BY ");
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{}", o.expr);
                if o.desc {
                    s.push_str(" DESC");
                }
            }
        }
        if let Some(n) = self.limit {
            let _ = write!(s, " LIMIT {n}");
        }
        f.write_str(&s)
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
        }
    }
}
