//! Plan-level rewrites applied after lowering: constant folding and
//! cost-ranked ordering of scan-filter conjuncts.

use s2_exec::Expr;
use s2_query::Plan;

use crate::planner::Catalog;
use crate::stats::TableStats;

/// Fold constant subexpressions bottom-up. Only pure scalar operators over
/// literal operands fold; anything that errors at fold time (e.g. division
/// by zero) is left in place so the failure stays a runtime error.
pub fn fold_expr(e: Expr) -> Expr {
    let folded = match e {
        Expr::Column(_) | Expr::Literal(_) => return e,
        Expr::Cmp(op, a, b) => Expr::Cmp(op, Box::new(fold_expr(*a)), Box::new(fold_expr(*b))),
        Expr::And(parts) => Expr::And(parts.into_iter().map(fold_expr).collect()),
        Expr::Or(parts) => Expr::Or(parts.into_iter().map(fold_expr).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(fold_expr(*inner))),
        Expr::IsNull(inner) => Expr::IsNull(Box::new(fold_expr(*inner))),
        Expr::InList(inner, vals) => Expr::InList(Box::new(fold_expr(*inner)), vals),
        Expr::Like(inner, pat) => Expr::Like(Box::new(fold_expr(*inner)), pat),
        Expr::Arith(op, a, b) => Expr::Arith(op, Box::new(fold_expr(*a)), Box::new(fold_expr(*b))),
        Expr::Case { when, else_ } => Expr::Case {
            when: when.into_iter().map(|(c, r)| (fold_expr(c), fold_expr(r))).collect(),
            else_: Box::new(fold_expr(*else_)),
        },
        Expr::Year(inner) => Expr::Year(Box::new(fold_expr(*inner))),
        Expr::Substr(inner, s, l) => Expr::Substr(Box::new(fold_expr(*inner)), s, l),
    };
    if foldable(&folded) && folded.referenced_columns().is_empty() {
        if let Ok(v) = folded.eval(&|_| s2_common::Value::Null) {
            return Expr::Literal(v);
        }
    }
    folded
}

/// Operators worth collapsing to a literal when all inputs are literals.
/// Boolean connectives are excluded: hand-built plans keep e.g. literal IN
/// lists intact, and folding them buys nothing for scans.
fn foldable(e: &Expr) -> bool {
    matches!(e, Expr::Cmp(..) | Expr::Arith(..) | Expr::Year(_) | Expr::Substr(..))
}

/// Reorder the conjuncts of a scan filter by descending `(1 - P) / cost`
/// (paper §5): cheap, selective clauses run first. The sort is stable so
/// equal-priority clauses keep their written order.
fn order_scan_clauses(filter: Expr, stats: &TableStats) -> Expr {
    match filter {
        Expr::And(parts) => {
            let mut ranked: Vec<(f64, Expr)> =
                parts.into_iter().map(|p| (stats.priority(&p), p)).collect();
            ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
            Expr::And(ranked.into_iter().map(|(_, p)| p).collect())
        }
        other => other,
    }
}

/// Apply all plan rewrites recursively, including inside derived subplans.
pub fn optimize(plan: Plan, cat: &Catalog<'_>) -> Plan {
    match plan {
        Plan::Scan { table, projection, filter } => {
            let filter = filter.map(fold_expr).map(|f| match cat.get(&table) {
                Ok(info) => order_scan_clauses(f, &info.stats),
                Err(_) => f,
            });
            Plan::Scan { table, projection, filter }
        }
        Plan::Filter { input, predicate } => {
            Plan::Filter { input: Box::new(optimize(*input, cat)), predicate: fold_expr(predicate) }
        }
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(optimize(*input, cat)),
            exprs: exprs.into_iter().map(|(e, t)| (fold_expr(e), t)).collect(),
        },
        Plan::Join { left, right, left_keys, right_keys, join_type, residual } => Plan::Join {
            left: Box::new(optimize(*left, cat)),
            right: Box::new(optimize(*right, cat)),
            left_keys,
            right_keys,
            join_type,
            residual: residual.map(fold_expr),
        },
        Plan::Aggregate { input, group_by, aggregates } => Plan::Aggregate {
            input: Box::new(optimize(*input, cat)),
            group_by: group_by.into_iter().map(fold_expr).collect(),
            aggregates: aggregates
                .into_iter()
                .map(|a| s2_exec::Aggregate { func: a.func, input: fold_expr(a.input) })
                .collect(),
        },
        Plan::Sort { input, keys, limit } => {
            Plan::Sort { input: Box::new(optimize(*input, cat)), keys, limit }
        }
        Plan::Limit { input, n } => Plan::Limit { input: Box::new(optimize(*input, cat)), n },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::Value;
    use s2_exec::{ArithOp, CmpOp};

    #[test]
    fn folds_constant_arithmetic() {
        // 0.05 - 1e-9 folds to the exact f64 a hand-written literal has.
        let e = Expr::Arith(
            ArithOp::Sub,
            Box::new(Expr::Literal(Value::Double(0.05))),
            Box::new(Expr::Literal(Value::Double(1e-9))),
        );
        assert_eq!(fold_expr(e), Expr::Literal(Value::Double(0.05 - 1e-9)));
    }

    #[test]
    fn division_by_zero_stays_runtime() {
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Literal(Value::Int(1))),
            Box::new(Expr::Literal(Value::Int(0))),
        );
        assert!(matches!(fold_expr(e), Expr::Arith(..)));
    }

    #[test]
    fn column_expressions_do_not_fold() {
        let e =
            Expr::Cmp(CmpOp::Eq, Box::new(Expr::Column(0)), Box::new(Expr::Literal(Value::Int(1))));
        assert_eq!(fold_expr(e.clone()), e);
    }
}
