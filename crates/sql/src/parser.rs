//! Recursive-descent SQL parser. Total over arbitrary input: every failure
//! is a [`ParseError`] with a byte offset (property-tested), never a panic.
//!
//! Precedence, loosest to tightest: `OR` < `AND` < `NOT` < comparison /
//! `BETWEEN` / `IN` / `LIKE` / `IS` < `+ -` < `* /` < unary minus < primary.

use s2_common::date::days_from_ymd;
use s2_exec::{AggFunc, ArithOp, CmpOp};

use crate::ast::{
    FromItem, FuncName, Join, JoinKind, OrderItem, Select, SelectItem, SqlExpr, Statement, TableRef,
};
use crate::lexer::{lex, ParseError, Tok, Token};

/// Parse one SQL statement (`SELECT ...` or `EXPLAIN SELECT ...`, optional
/// trailing `;`).
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0, end: sql.len(), depth: 0 };
    let explain = p.eat_kw("EXPLAIN");
    let select = p.select()?;
    p.eat_sym(";");
    if let Some(t) = p.peek() {
        return Err(ParseError::new(t.start, "unexpected trailing input"));
    }
    Ok(if explain { Statement::Explain(select) } else { Statement::Select(select) })
}

/// Nesting limit for parenthesized expressions and subqueries, so deeply
/// nested adversarial input errors out instead of overflowing the stack.
const MAX_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn offset(&self) -> usize {
        self.peek().map(|t| t.start).unwrap_or(self.end)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(self.offset(), msg))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if matches!(&t.tok, Tok::Keyword(k) if *k == kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(t) if matches!(&t.tok, Tok::Sym(s) if *s == sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}"))
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            self.err(format!("expected {sym:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token { tok: Tok::Ident(name), .. }) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err("expression nesting too deep");
        }
        Ok(())
    }

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.eat_sym(",") {
            items.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            from.push(self.from_item()?);
            while self.eat_sym(",") {
                from.push(self.from_item()?);
            }
        }
        let where_ = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_sym(",") {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.peek() {
                Some(Token { tok: Tok::Int(n), .. }) if *n >= 0 => {
                    let n = *n as u64;
                    self.pos += 1;
                    Some(n)
                }
                _ => return self.err("expected row count after LIMIT"),
            }
        } else {
            None
        };
        Ok(Select { distinct, items, from, where_, group_by, having, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item, not a conversion
    fn from_item(&mut self) -> Result<FromItem, ParseError> {
        let rel = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("SEMI") {
                self.expect_kw("JOIN")?;
                JoinKind::Semi
            } else if self.eat_kw("ANTI") {
                self.expect_kw("JOIN")?;
                JoinKind::Anti
            } else if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let rel = self.table_ref()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw("ON")?;
                Some(self.expr()?)
            };
            joins.push(Join { kind, rel, on });
        }
        Ok(FromItem { rel, joins })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        if self.eat_sym("(") {
            self.enter()?;
            let select = self.select()?;
            self.depth -= 1;
            self.expect_sym(")")?;
            self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Derived { select: Box::new(select), alias });
        }
        let name = self.ident()?;
        // An alias is a bare identifier (`lineitem l`) or `AS ident`;
        // keywords (WHERE, JOIN, ...) end the reference.
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token { tok: Tok::Ident(a), .. }) = self.peek() {
            let a = a.clone();
            self.pos += 1;
            Some(a)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    fn expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.enter()?;
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            e = SqlExpr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut e = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            e = SqlExpr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, ParseError> {
        if self.eat_kw("NOT") {
            self.enter()?;
            let inner = self.not_expr()?;
            self.depth -= 1;
            return Ok(SqlExpr::Not(Box::new(inner)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<SqlExpr, ParseError> {
        let lhs = self.add_expr()?;
        // Comparison.
        let cmp = match self.peek().map(|t| &t.tok) {
            Some(Tok::Sym("=")) => Some(CmpOp::Eq),
            Some(Tok::Sym("<>")) => Some(CmpOp::Ne),
            Some(Tok::Sym("<")) => Some(CmpOp::Lt),
            Some(Tok::Sym("<=")) => Some(CmpOp::Le),
            Some(Tok::Sym(">")) => Some(CmpOp::Gt),
            Some(Tok::Sym(">=")) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(SqlExpr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        // IS [NOT] NULL.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull { expr: Box::new(lhs), negated });
        }
        // [NOT] BETWEEN / IN / LIKE.
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = vec![self.add_expr()?];
            while self.eat_sym(",") {
                list.push(self.add_expr()?);
            }
            self.expect_sym(")")?;
            return Ok(SqlExpr::InList { expr: Box::new(lhs), list, negated });
        }
        if self.eat_kw("LIKE") {
            match self.peek() {
                Some(Token { tok: Tok::Str(pat), .. }) => {
                    let pattern = pat.clone();
                    self.pos += 1;
                    return Ok(SqlExpr::Like { expr: Box::new(lhs), pattern, negated });
                }
                _ => return self.err("expected string pattern after LIKE"),
            }
        }
        if negated {
            return self.err("expected BETWEEN, IN or LIKE after NOT");
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                ArithOp::Add
            } else if self.eat_sym("-") {
                ArithOp::Sub
            } else {
                break;
            };
            let rhs = self.mul_expr()?;
            e = SqlExpr::Arith(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = if self.eat_sym("*") {
                ArithOp::Mul
            } else if self.eat_sym("/") {
                ArithOp::Div
            } else {
                break;
            };
            let rhs = self.unary_expr()?;
            e = SqlExpr::Arith(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<SqlExpr, ParseError> {
        if self.eat_sym("-") {
            self.enter()?;
            let inner = self.unary_expr()?;
            self.depth -= 1;
            return Ok(match inner {
                SqlExpr::Int(v) => SqlExpr::Int(v.wrapping_neg()),
                SqlExpr::Double(v) => SqlExpr::Double(-v),
                other => SqlExpr::Arith(ArithOp::Sub, Box::new(SqlExpr::Int(0)), Box::new(other)),
            });
        }
        if self.eat_sym("+") {
            return self.unary_expr();
        }
        self.primary()
    }

    fn agg(&mut self, func: AggFunc) -> Result<SqlExpr, ParseError> {
        self.expect_sym("(")?;
        if func == AggFunc::Count && self.eat_sym("*") {
            self.expect_sym(")")?;
            return Ok(SqlExpr::Agg { func, arg: None });
        }
        let arg = self.expr()?;
        self.expect_sym(")")?;
        Ok(SqlExpr::Agg { func, arg: Some(Box::new(arg)) })
    }

    fn primary(&mut self) -> Result<SqlExpr, ParseError> {
        let Some(token) = self.peek() else {
            return self.err("unexpected end of input");
        };
        let start = token.start;
        match token.tok.clone() {
            Tok::Int(v) => {
                self.pos += 1;
                Ok(SqlExpr::Int(v))
            }
            Tok::Double(v) => {
                self.pos += 1;
                Ok(SqlExpr::Double(v))
            }
            Tok::Str(s) => {
                self.pos += 1;
                Ok(SqlExpr::Str(s))
            }
            Tok::Keyword("NULL") => {
                self.pos += 1;
                Ok(SqlExpr::Null)
            }
            Tok::Keyword("TRUE") => {
                self.pos += 1;
                Ok(SqlExpr::Int(1))
            }
            Tok::Keyword("FALSE") => {
                self.pos += 1;
                Ok(SqlExpr::Int(0))
            }
            Tok::Keyword("DATE") => {
                self.pos += 1;
                match self.peek() {
                    Some(Token { tok: Tok::Str(s), start, .. }) => {
                        let (s, start) = (s.clone(), *start);
                        self.pos += 1;
                        parse_date(&s)
                            .map(SqlExpr::Int)
                            .ok_or_else(|| ParseError::new(start, "malformed date literal"))
                    }
                    _ => self.err("expected 'yyyy-mm-dd' after DATE"),
                }
            }
            Tok::Keyword("CASE") => {
                self.pos += 1;
                self.enter()?;
                let mut when = Vec::new();
                while self.eat_kw("WHEN") {
                    let c = self.expr()?;
                    self.expect_kw("THEN")?;
                    let r = self.expr()?;
                    when.push((c, r));
                }
                if when.is_empty() {
                    return self.err("CASE requires at least one WHEN arm");
                }
                let else_ = if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
                self.expect_kw("END")?;
                self.depth -= 1;
                Ok(SqlExpr::Case { when, else_ })
            }
            Tok::Keyword("COUNT") => {
                self.pos += 1;
                self.agg(AggFunc::Count)
            }
            Tok::Keyword("SUM") => {
                self.pos += 1;
                self.agg(AggFunc::Sum)
            }
            Tok::Keyword("AVG") => {
                self.pos += 1;
                self.agg(AggFunc::Avg)
            }
            Tok::Keyword("MIN") => {
                self.pos += 1;
                self.agg(AggFunc::Min)
            }
            Tok::Keyword("MAX") => {
                self.pos += 1;
                self.agg(AggFunc::Max)
            }
            Tok::Keyword("YEAR") => {
                self.pos += 1;
                self.expect_sym("(")?;
                let arg = self.expr()?;
                self.expect_sym(")")?;
                Ok(SqlExpr::Func(FuncName::Year, vec![arg]))
            }
            Tok::Keyword("SUBSTR") => {
                self.pos += 1;
                self.expect_sym("(")?;
                let arg = self.expr()?;
                self.expect_sym(",")?;
                let lo = self.expr()?;
                self.expect_sym(",")?;
                let len = self.expr()?;
                self.expect_sym(")")?;
                Ok(SqlExpr::Func(FuncName::Substr, vec![arg, lo, len]))
            }
            Tok::Ident(name) => {
                self.pos += 1;
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    Ok(SqlExpr::Column { qualifier: Some(name), name: col })
                } else {
                    Ok(SqlExpr::Column { qualifier: None, name })
                }
            }
            Tok::Sym("(") => {
                self.pos += 1;
                self.enter()?;
                let e = self.expr()?;
                self.depth -= 1;
                self.expect_sym(")")?;
                Ok(e)
            }
            _ => Err(ParseError::new(start, "expected expression")),
        }
    }
}

/// Parse `yyyy-mm-dd` into days since epoch, validating ranges.
fn parse_date(s: &str) -> Option<i64> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    if !(1000..=9999).contains(&y) {
        return None;
    }
    Some(days_from_ymd(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            Statement::Explain(_) => panic!("expected SELECT"),
        }
    }

    #[test]
    fn parses_basic_select() {
        let s = sel("SELECT a, b + 1 AS c FROM t WHERE a < 5 ORDER BY 1 DESC LIMIT 3");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.where_.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn parses_joins_and_subquery() {
        let s = sel("SELECT x.a FROM (SELECT a FROM t) AS x \
             INNER JOIN u ON x.a = u.a LEFT JOIN v ON u.b = v.b \
             SEMI JOIN w ON u.c = w.c CROSS JOIN z");
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].joins.len(), 4);
        assert_eq!(s.from[0].joins[3].kind, JoinKind::Cross);
        assert!(s.from[0].joins[3].on.is_none());
    }

    #[test]
    fn date_literal_desugars_to_days() {
        let s = sel("SELECT 1 FROM t WHERE d <= DATE '1998-09-02'");
        let w = s.where_.unwrap();
        match w {
            SqlExpr::Cmp(CmpOp::Le, _, rhs) => {
                assert_eq!(*rhs, SqlExpr::Int(days_from_ymd(1998, 9, 2)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_matches_sql() {
        // a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3).
        let s = sel("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
        assert!(matches!(s.where_.unwrap(), SqlExpr::Or(_, _)));
        // NOT binds looser than comparison: NOT a = 1  is  NOT (a = 1).
        let s = sel("SELECT 1 FROM t WHERE NOT a = 1");
        match s.where_.unwrap() {
            SqlExpr::Not(inner) => assert!(matches!(*inner, SqlExpr::Cmp(..))),
            other => panic!("unexpected {other:?}"),
        }
        // Arithmetic precedence: 1 + 2 * 3 is 1 + (2 * 3).
        let s = sel("SELECT 1 + 2 * 3 FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr: SqlExpr::Arith(ArithOp::Add, _, rhs), .. } => {
                assert!(matches!(**rhs, SqlExpr::Arith(ArithOp::Mul, _, _)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("SELECT a FROM").unwrap_err();
        assert_eq!(err.offset, 13);
        let err = parse("SELECT a FROM t WHERE").unwrap_err();
        assert_eq!(err.offset, 21);
        let err = parse("SELECT FROM t").unwrap_err();
        assert_eq!(err.offset, 7);
        let err = parse("SELECT a FROM t extra garbage, here").unwrap_err();
        assert!(err.offset >= 16);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let mut sql = String::from("SELECT ");
        sql.push_str(&"(".repeat(5000));
        sql.push('1');
        sql.push_str(&")".repeat(5000));
        sql.push_str(" FROM t");
        let err = parse(&sql).unwrap_err();
        assert!(err.message.contains("nesting"));
    }
}
