//! SQL lexer: byte-span tokens over a `&str`. Total over arbitrary input —
//! every byte sequence yields either a token stream or a [`ParseError`]
//! pointing at the offending offset; it never panics.

use std::fmt;

/// A lexical or syntactic error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the original SQL text.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Build an error at `offset`.
    pub fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError { offset, message: message.into() }
    }

    /// Render a single-line caret diagnostic: the source line containing the
    /// error with a `^` marker under the offending column.
    pub fn render(&self, sql: &str) -> String {
        let offset = self.offset.min(sql.len());
        let line_start = sql[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = sql[offset..].find('\n').map(|i| offset + i).unwrap_or(sql.len());
        let line = &sql[line_start..line_end];
        let col = sql[line_start..offset].chars().count();
        let line_no = sql[..line_start].matches('\n').count() + 1;
        format!(
            "parse error at line {line_no}, offset {}: {}\n  {line}\n  {}^",
            self.offset,
            self.message,
            " ".repeat(col)
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

/// Token kinds. Keywords are matched case-insensitively and carried as
/// `Keyword`; identifiers are lowercased.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword (uppercased canonical spelling).
    Keyword(&'static str),
    /// Identifier, lowercased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation or operator: `( ) , . ; * + - / = <> < <= > >=`.
    Sym(&'static str),
}

/// A token plus its byte span in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

/// Reserved words recognized as keywords (canonical uppercase spelling).
const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "AS", "AND",
    "OR", "NOT", "IN", "LIKE", "IS", "NULL", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END",
    "JOIN", "INNER", "LEFT", "OUTER", "SEMI", "ANTI", "CROSS", "ON", "ASC", "DESC", "DATE",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "YEAR", "SUBSTR", "EXPLAIN", "TRUE", "FALSE",
];

fn keyword_of(word: &str) -> Option<&'static str> {
    KEYWORDS.iter().find(|k| k.eq_ignore_ascii_case(word)).copied()
}

/// Tokenize `sql`. Returns every token with its byte span, or the first
/// lexical error encountered.
pub fn lex(sql: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments: `-- ...`.
        if b == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // String literal with '' escape.
        if b == b'\'' {
            let mut s = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    None => return Err(ParseError::new(start, "unterminated string literal")),
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Consume one full UTF-8 character so multi-byte
                        // input cannot split a char boundary.
                        let ch = sql[i..].chars().next().unwrap_or('\u{fffd}');
                        s.push(ch);
                        i += ch.len_utf8().max(1);
                    }
                }
            }
            out.push(Token { tok: Tok::Str(s), start, end: i });
            continue;
        }
        // Number: digits [. digits] [e[+-]digits].
        if b.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let mut is_float = false;
            if j < bytes.len()
                && bytes[j] == b'.'
                && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
            {
                is_float = true;
                j += 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
            }
            if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                let mut k = j + 1;
                if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                    k += 1;
                }
                if k < bytes.len() && bytes[k].is_ascii_digit() {
                    is_float = true;
                    j = k;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
            }
            let text = &sql[i..j];
            let tok = if is_float {
                match text.parse::<f64>() {
                    Ok(v) => Tok::Double(v),
                    Err(_) => return Err(ParseError::new(start, "malformed number")),
                }
            } else {
                match text.parse::<i64>() {
                    Ok(v) => Tok::Int(v),
                    Err(_) => return Err(ParseError::new(start, "integer literal out of range")),
                }
            };
            out.push(Token { tok, start, end: j });
            i = j;
            continue;
        }
        // Identifier or keyword.
        if b.is_ascii_alphabetic() || b == b'_' {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let word = &sql[i..j];
            let tok = match keyword_of(word) {
                Some(k) => Tok::Keyword(k),
                None => Tok::Ident(word.to_ascii_lowercase()),
            };
            out.push(Token { tok, start, end: j });
            i = j;
            continue;
        }
        // Operators and punctuation.
        let two: Option<&'static str> = match (b, bytes.get(i + 1)) {
            (b'<', Some(b'=')) => Some("<="),
            (b'>', Some(b'=')) => Some(">="),
            (b'<', Some(b'>')) => Some("<>"),
            (b'!', Some(b'=')) => Some("<>"),
            _ => None,
        };
        if let Some(sym) = two {
            out.push(Token { tok: Tok::Sym(sym), start, end: i + 2 });
            i += 2;
            continue;
        }
        let one: Option<&'static str> = match b {
            b'(' => Some("("),
            b')' => Some(")"),
            b',' => Some(","),
            b'.' => Some("."),
            b';' => Some(";"),
            b'*' => Some("*"),
            b'+' => Some("+"),
            b'-' => Some("-"),
            b'/' => Some("/"),
            b'=' => Some("="),
            b'<' => Some("<"),
            b'>' => Some(">"),
            _ => None,
        };
        match one {
            Some(sym) => {
                out.push(Token { tok: Tok::Sym(sym), start, end: i + 1 });
                i += 1;
            }
            None => {
                let ch = sql[i..].chars().next().unwrap_or('\u{fffd}');
                return Err(ParseError::new(i, format!("unexpected character {ch:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_spans_and_kinds() {
        let toks = lex("SELECT a.b, 'it''s' FROM t WHERE x <= 1.5e-2").unwrap();
        assert_eq!(toks[0].tok, Tok::Keyword("SELECT"));
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[1].tok, Tok::Ident("a".into()));
        assert_eq!(toks[4].tok, Tok::Sym(","));
        assert_eq!(toks[5].tok, Tok::Str("it's".into()));
        assert!(toks.iter().any(|t| t.tok == Tok::Sym("<=")));
        assert!(toks.iter().any(|t| t.tok == Tok::Double(1.5e-2)));
    }

    #[test]
    fn reports_bad_input_with_offset() {
        let err = lex("select `x`").unwrap_err();
        assert_eq!(err.offset, 7);
        let err = lex("select 'oops").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.render("select 'oops").contains('^'));
    }

    #[test]
    fn caret_points_at_column() {
        let err = ParseError::new(10, "boom");
        let rendered = err.render("select a b from t");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "  select a b from t");
        assert_eq!(lines[2], format!("  {}^", " ".repeat(10)));
    }
}
