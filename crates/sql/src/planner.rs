//! Name resolution, typing and lowering: turns a parsed [`Select`] into an
//! executable [`s2_query::Plan`].
//!
//! The lowering performs the classical logical optimizations inline:
//! single-relation WHERE/ON conjuncts are pushed into `Scan.filter` (table
//! ordinals), base-table projections are pruned to the demanded column set,
//! equality conjuncts become hash-join keys, and comma-separated FROM lists
//! are join-ordered by cost (largest filtered relation drives, smallest
//! connected relation builds next — the §5 `(1-P)/cost` estimates feed the
//! per-relation cardinalities). Explicit `JOIN ... ON` chains keep their
//! syntactic order so a query author (and the plan-equivalence tests) can
//! pin a join tree exactly.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use s2_common::{DataType, Error, Result, Value};
use s2_exec::{AggFunc, Aggregate, CmpOp, Expr, JoinType, SortDir};
use s2_query::{Plan, QueryContext};

use crate::ast::{FuncName, JoinKind, OrderItem, Select, SelectItem, SqlExpr, TableRef};
use crate::stats::TableStats;

/// Virtual column ids encode (relation index, field ordinal) so expressions
/// can be bound before batch positions are known.
const REL_SHIFT: usize = 16;
const ORD_MASK: usize = (1 << REL_SHIFT) - 1;

fn vcol(rel: usize, ord: usize) -> usize {
    (rel << REL_SHIFT) | ord
}

/// One table known to the planner: schema fields plus stats.
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// (column name, type) in ordinal order.
    pub fields: Vec<(String, DataType)>,
    /// Merged statistics.
    pub stats: TableStats,
}

/// Caching resolver from table names to schema + statistics, backed by the
/// query context's snapshots.
pub struct Catalog<'a> {
    ctx: &'a dyn QueryContext,
    cache: RefCell<HashMap<String, Arc<TableInfo>>>,
}

impl<'a> Catalog<'a> {
    /// Build a catalog over `ctx`.
    pub fn new(ctx: &'a dyn QueryContext) -> Catalog<'a> {
        Catalog { ctx, cache: RefCell::new(HashMap::new()) }
    }

    /// Resolve one table, caching the result for the planning session.
    pub fn get(&self, name: &str) -> Result<Arc<TableInfo>> {
        if let Some(info) = self.cache.borrow().get(name) {
            return Ok(Arc::clone(info));
        }
        let snaps = self.ctx.snapshots(name)?;
        let first = snaps
            .first()
            .ok_or_else(|| Error::NotFound(format!("table {name:?} has no partitions")))?;
        let fields =
            first.schema().columns().iter().map(|c| (c.name.clone(), c.data_type)).collect();
        let info = Arc::new(TableInfo {
            name: name.to_string(),
            fields,
            stats: TableStats::collect(&snaps),
        });
        self.cache.borrow_mut().insert(name.to_string(), Arc::clone(&info));
        Ok(info)
    }
}

/// A lowered SELECT: the plan plus its output shape.
pub(crate) struct LoweredSelect {
    /// Executable plan.
    pub plan: Plan,
    /// Output (name, type) per column.
    pub fields: Vec<(String, DataType)>,
    /// Rough output cardinality estimate.
    pub est_rows: f64,
}

enum Source {
    Base(Arc<TableInfo>),
    Derived(Box<LoweredSelect>),
}

struct Rel {
    source: Source,
    binding: String,
    kind: JoinKind,
    on: Option<SqlExpr>,
    /// Scan-filter conjuncts: table ordinals for base tables, output
    /// positions for derived tables (applied as a pre-join Filter).
    pushed: Vec<Expr>,
    fields: Vec<(String, DataType)>,
}

impl Rel {
    fn visible_after_join(&self) -> bool {
        !matches!(self.kind, JoinKind::Semi | JoinKind::Anti)
    }
}

/// One extracted equi-join edge from a comma-style WHERE clause.
struct Edge {
    a: usize,
    b: usize,
}

struct AggEnv {
    /// Group-by expressions in virtual-column space.
    groups: Vec<Expr>,
    /// Collected (function, virtual input) aggregates, in first-use order.
    aggs: Vec<(AggFunc, Expr)>,
}

struct Planner<'a, 'c> {
    cat: &'a Catalog<'c>,
    rels: Vec<Rel>,
}

/// Lower one SELECT into a plan (recursively lowering derived tables).
pub(crate) fn lower_select(sel: &Select, cat: &Catalog<'_>) -> Result<LoweredSelect> {
    let mut p = Planner { cat, rels: Vec::new() };
    p.run(sel)
}

fn err(msg: impl Into<String>) -> Error {
    Error::InvalidArgument(msg.into())
}

impl<'a, 'c> Planner<'a, 'c> {
    fn run(&mut self, sel: &Select) -> Result<LoweredSelect> {
        self.collect_rels(sel)?;
        let outer_mask: Vec<bool> = self.rels.iter().map(Rel::visible_after_join).collect();

        // ON clauses: keys, residuals and self-only pushdowns per relation.
        let mut keys: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.rels.len()];
        let mut residuals: Vec<Vec<Expr>> = vec![Vec::new(); self.rels.len()];
        for i in 0..self.rels.len() {
            let Some(on) = self.rels[i].on.clone() else { continue };
            let mut mask: Vec<bool> = outer_mask[..i].to_vec();
            mask.push(true);
            mask.resize(self.rels.len(), false);
            for c in split_sql_conjuncts(&on) {
                let lowered = self.lower(c, &mask, None)?;
                let rset = rels_of(&lowered);
                if rset.len() == 1 && rset.contains(&i) {
                    self.push_down(i, lowered);
                } else if let Some(pair) = self.key_pair(&lowered, i) {
                    keys[i].push(pair);
                } else {
                    residuals[i].push(lowered);
                }
            }
        }

        // WHERE: single-relation conjuncts push down; comma-style equality
        // conjuncts become join edges; the rest filter after the joins.
        let mut post: Vec<Expr> = Vec::new();
        let mut edges: Vec<Edge> = Vec::new();
        if let Some(w) = &sel.where_ {
            for c in split_sql_conjuncts(w) {
                let lowered = self.lower(c, &outer_mask, None)?;
                let rset = rels_of(&lowered);
                if rset.len() == 1 {
                    let r = *rset.iter().next().expect("nonempty");
                    if self.rels[r].kind == JoinKind::Left {
                        post.push(lowered);
                    } else {
                        self.push_down(r, lowered);
                    }
                } else if let Some(edge) = self.equi_edge(&lowered, &rset) {
                    edges.push(edge);
                } else {
                    post.push(lowered);
                }
            }
        }

        // Join order: explicit joins keep syntactic order; pure comma lists
        // are ordered by cost.
        let pure_comma = self.rels.iter().skip(1).all(|r| r.kind == JoinKind::Cross)
            && self.rels.iter().all(|r| r.on.is_none());
        let chain: Vec<usize> = if pure_comma && self.rels.len() > 1 && !edges.is_empty() {
            self.order_by_cost(&edges)
        } else {
            (0..self.rels.len()).collect()
        };
        // Attach comma edges as keys on the join step where their second
        // endpoint enters the chain.
        for e in &edges {
            let pa = chain.iter().position(|&r| r == e.a >> REL_SHIFT).expect("rel in chain");
            let pb = chain.iter().position(|&r| r == e.b >> REL_SHIFT).expect("rel in chain");
            let (later_rel, prefix_v, self_v) = if pa > pb {
                (e.a >> REL_SHIFT, e.b_col(), e.a_col())
            } else {
                (e.b >> REL_SHIFT, e.a_col(), e.b_col())
            };
            keys[later_rel].push((prefix_v, self_v));
        }

        // Output expressions, grouping and aggregation.
        let items = self.expand_items(&sel.items, &outer_mask)?;
        let aliases: Vec<Option<String>> = items.iter().map(|(_, a)| a.clone()).collect();
        let agg_mode = !sel.group_by.is_empty()
            || items.iter().any(|(e, _)| e.has_agg())
            || sel.having.as_ref().is_some_and(SqlExpr::has_agg);
        if sel.distinct && agg_mode {
            return Err(err("SELECT DISTINCT cannot be combined with aggregates"));
        }

        let mut env = AggEnv { groups: Vec::new(), aggs: Vec::new() };
        let mut outs: Vec<Expr> = Vec::new();
        let mut having_rewritten: Option<Expr> = None;
        if agg_mode {
            for g in &sel.group_by {
                let g = self.positional(g, &items)?;
                if g.has_agg() {
                    return Err(err("aggregates are not allowed in GROUP BY"));
                }
                let lowered = self.lower(g, &outer_mask, None)?;
                env.groups.push(lowered);
            }
            for (e, _) in &items {
                let r = self.lower(e, &outer_mask, Some(&mut env))?;
                outs.push(r);
            }
            if let Some(h) = &sel.having {
                having_rewritten = Some(self.lower(h, &outer_mask, Some(&mut env))?);
            }
        } else {
            for (e, _) in &items {
                outs.push(self.lower(e, &outer_mask, None)?);
            }
            if sel.having.is_some() {
                return Err(err("HAVING requires GROUP BY or aggregates"));
            }
        }

        // ORDER BY resolves against the output list (alias, 1-based
        // position, or a structurally matching expression).
        let mut sort_keys: Vec<(usize, SortDir)> = Vec::new();
        for o in &sel.order_by {
            let idx = self.resolve_order(o, &outs, &aliases, &outer_mask, &mut env, agg_mode)?;
            sort_keys.push((idx, if o.desc { SortDir::Desc } else { SortDir::Asc }));
        }

        // Demand analysis: every virtual column the plan evaluates above the
        // scans decides the pruned base-table projections.
        let mut demand: BTreeSet<usize> = BTreeSet::new();
        for ks in &keys {
            for (l, r) in ks {
                demand.insert(*l);
                demand.insert(*r);
            }
        }
        for rs in &residuals {
            for e in rs {
                demand.extend(rels_of_cols(e));
            }
        }
        for e in &post {
            demand.extend(rels_of_cols(e));
        }
        if agg_mode || sel.distinct {
            let group_src: &[Expr] = if sel.distinct { &outs } else { &env.groups };
            for e in group_src {
                demand.extend(rels_of_cols(e));
            }
            for (_, input) in &env.aggs {
                demand.extend(rels_of_cols(input));
            }
        } else {
            for e in &outs {
                demand.extend(rels_of_cols(e));
            }
        }

        // Build the join chain.
        let mut projections: Vec<Vec<usize>> = Vec::new();
        for (i, rel) in self.rels.iter().enumerate() {
            let mut proj: Vec<usize> =
                demand.iter().filter(|&&v| v >> REL_SHIFT == i).map(|&v| v & ORD_MASK).collect();
            if matches!(rel.source, Source::Derived(_)) {
                proj = (0..rel.fields.len()).collect();
            } else if proj.is_empty() {
                proj.push(0);
            }
            projections.push(proj);
        }

        let mut positions: HashMap<usize, usize> = HashMap::new();
        let mut chain_types: Vec<DataType> = Vec::new();
        let mut width = 0usize;
        let mut plan: Option<Plan> = None;
        let mut est = 0.0f64;
        for (step, &ri) in chain.iter().enumerate() {
            let rel = &self.rels[ri];
            let proj = &projections[ri];
            let rel_est = self.rel_est(rel, ri);
            let rplan = self.build_rel(rel, proj);
            let rel_width = proj.len();
            let self_pos = |v: usize| -> Result<usize> {
                let ord = v & ORD_MASK;
                proj.iter()
                    .position(|&o| o == ord)
                    .ok_or_else(|| Error::Internal("column missing from projection".into()))
            };
            if step == 0 {
                for (idx, &ord) in proj.iter().enumerate() {
                    positions.insert(vcol(ri, ord), idx);
                    chain_types.push(self.field_type(ri, ord));
                }
                width = rel_width;
                plan = Some(rplan);
                est = rel_est;
                continue;
            }
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            for &(l, r) in &keys[ri] {
                left_keys.push(self.position_of(&positions, l)?);
                right_keys.push(self_pos(r)?);
            }
            let residual = if residuals[ri].is_empty() {
                None
            } else {
                let mapped: Result<Vec<Expr>> = residuals[ri]
                    .iter()
                    .map(|e| {
                        map_columns(e, &|v| {
                            if v >> REL_SHIFT == ri {
                                Ok(width + self_pos(v)?)
                            } else {
                                self.position_of(&positions, v)
                            }
                        })
                    })
                    .collect();
                and_all(mapped?)
            };
            let jt = match rel.kind {
                JoinKind::Inner | JoinKind::Cross => JoinType::Inner,
                JoinKind::Left => JoinType::Left,
                JoinKind::Semi => JoinType::Semi,
                JoinKind::Anti => JoinType::Anti,
            };
            plan = Some(
                plan.take()
                    .expect("chain started")
                    .join_full(rplan, left_keys, right_keys, jt, residual),
            );
            est = match jt {
                JoinType::Inner => est.max(rel_est),
                JoinType::Left => est.max(rel_est),
                JoinType::Semi | JoinType::Anti => est,
            };
            if rel.visible_after_join() {
                for (idx, &ord) in proj.iter().enumerate() {
                    positions.insert(vcol(ri, ord), width + idx);
                    chain_types.push(self.field_type(ri, ord));
                }
                width += rel_width;
            }
        }
        let mut plan = plan.ok_or_else(|| err("SELECT without FROM is not supported"))?;

        if !post.is_empty() {
            let mapped: Result<Vec<Expr>> =
                post.iter().map(|e| map_columns(e, &|v| self.position_of(&positions, v))).collect();
            let pred = and_all(mapped?).expect("nonempty post filter");
            plan = plan.filter(pred);
            est *= 0.33;
        }

        // Aggregation (or DISTINCT, which is an aggregate with no outputs).
        let mut out_types: Vec<DataType>;
        let mut final_outs: Vec<Expr>;
        if agg_mode || sel.distinct {
            let group_src: Vec<Expr> = if sel.distinct { outs.clone() } else { env.groups.clone() };
            let groups_mapped: Result<Vec<Expr>> = group_src
                .iter()
                .map(|e| map_columns(e, &|v| self.position_of(&positions, v)))
                .collect();
            let groups_mapped = groups_mapped?;
            let aggs_mapped: Result<Vec<Aggregate>> = env
                .aggs
                .iter()
                .map(|(func, input)| {
                    Ok(Aggregate {
                        func: *func,
                        input: map_columns(input, &|v| self.position_of(&positions, v))?,
                    })
                })
                .collect();
            let aggs_mapped = aggs_mapped?;
            out_types = Vec::new();
            for g in &groups_mapped {
                out_types.push(infer_type(g, &chain_types)?);
            }
            for a in &aggs_mapped {
                out_types.push(match a.func {
                    AggFunc::Count => DataType::Int64,
                    AggFunc::Sum | AggFunc::Avg => DataType::Double,
                    AggFunc::Min | AggFunc::Max => infer_type(&a.input, &chain_types)?,
                });
            }
            est = if groups_mapped.is_empty() { 1.0 } else { (est / 4.0).max(1.0) };
            plan = plan.aggregate(groups_mapped, aggs_mapped);
            if let Some(h) = having_rewritten {
                plan = plan.filter(h);
            }
            final_outs =
                if sel.distinct { (0..group_src.len()).map(Expr::Column).collect() } else { outs };
        } else {
            final_outs = Vec::new();
            for e in &outs {
                final_outs.push(map_columns(e, &|v| self.position_of(&positions, v))?);
            }
            out_types = chain_types.clone();
        }

        // Final projection, skipped when it is the identity.
        let cur_width = out_types.len();
        let identity = final_outs.len() == cur_width
            && final_outs.iter().enumerate().all(|(i, e)| *e == Expr::Column(i));
        let fields: Vec<(String, DataType)>;
        if identity {
            fields = items
                .iter()
                .enumerate()
                .map(|(i, (e, a))| (output_name(e, a, i), out_types[i]))
                .collect();
        } else {
            let mut exprs = Vec::new();
            let mut out_fields = Vec::new();
            for (i, e) in final_outs.iter().enumerate() {
                let t = infer_type(e, &out_types)?;
                exprs.push((e.clone(), t));
                let (src, alias) = &items[i];
                out_fields.push((output_name(src, alias, i), t));
            }
            plan = plan.project(exprs);
            fields = out_fields;
        }

        if !sort_keys.is_empty() {
            plan = plan.sort(sort_keys, sel.limit.map(|n| n as usize));
        } else if let Some(n) = sel.limit {
            plan = plan.limit(n as usize);
        }
        if let Some(n) = sel.limit {
            est = est.min(n as f64);
        }

        Ok(LoweredSelect { plan, fields, est_rows: est })
    }

    fn collect_rels(&mut self, sel: &Select) -> Result<()> {
        for (i, item) in sel.from.iter().enumerate() {
            let kind = if i == 0 { JoinKind::Inner } else { JoinKind::Cross };
            self.add_rel(&item.rel, kind, None)?;
            for j in &item.joins {
                self.add_rel(&j.rel, j.kind, j.on.clone())?;
            }
        }
        if self.rels.is_empty() {
            return Err(err("SELECT without FROM is not supported"));
        }
        Ok(())
    }

    fn add_rel(&mut self, r: &TableRef, kind: JoinKind, on: Option<SqlExpr>) -> Result<()> {
        let (source, binding, fields) = match r {
            TableRef::Table { name, alias } => {
                let info = self.cat.get(name)?;
                let fields = info.fields.clone();
                (Source::Base(info), alias.clone().unwrap_or_else(|| name.clone()), fields)
            }
            TableRef::Derived { select, alias } => {
                let lowered = lower_select(select, self.cat)?;
                let fields = lowered.fields.clone();
                (Source::Derived(Box::new(lowered)), alias.clone(), fields)
            }
        };
        if self.rels.iter().any(|r| r.binding == binding) {
            return Err(err(format!("duplicate table alias {binding:?}")));
        }
        if fields.len() > ORD_MASK {
            return Err(err(format!("relation {binding:?} has too many columns")));
        }
        self.rels.push(Rel { source, binding, kind, on, pushed: Vec::new(), fields });
        Ok(())
    }

    fn field_type(&self, rel: usize, ord: usize) -> DataType {
        self.rels[rel].fields.get(ord).map(|(_, t)| *t).unwrap_or(DataType::Int64)
    }

    fn push_down(&mut self, rel: usize, lowered: Expr) {
        // Base tables take the conjunct in table-ordinal space; derived
        // tables keep output positions (ordinal == position there).
        let remapped = map_columns(&lowered, &|v| Ok(v & ORD_MASK)).expect("infallible remap");
        self.rels[rel].pushed.push(remapped);
    }

    /// `left_prefix.col = self.col` in an ON clause becomes a hash-key pair
    /// unless either side is Double (float equality stays a residual so
    /// epsilon-style predicates keep their semantics).
    fn key_pair(&self, e: &Expr, this: usize) -> Option<(usize, usize)> {
        let Expr::Cmp(CmpOp::Eq, a, b) = e else { return None };
        let (Expr::Column(x), Expr::Column(y)) = (a.as_ref(), b.as_ref()) else { return None };
        let (rx, ry) = (x >> REL_SHIFT, y >> REL_SHIFT);
        if rx == ry {
            return None;
        }
        let (prefix_v, self_v) = if ry == this && rx < this {
            (*x, *y)
        } else if rx == this && ry < this {
            (*y, *x)
        } else {
            return None;
        };
        let t1 = self.field_type(prefix_v >> REL_SHIFT, prefix_v & ORD_MASK);
        let t2 = self.field_type(self_v >> REL_SHIFT, self_v & ORD_MASK);
        if t1 == DataType::Double || t2 == DataType::Double || t1 != t2 {
            return None;
        }
        Some((prefix_v, self_v))
    }

    /// A comma-style WHERE equality joining two cross-joined relations.
    fn equi_edge(&self, e: &Expr, rset: &BTreeSet<usize>) -> Option<Edge> {
        if rset.len() != 2 {
            return None;
        }
        let Expr::Cmp(CmpOp::Eq, a, b) = e else { return None };
        let (Expr::Column(x), Expr::Column(y)) = (a.as_ref(), b.as_ref()) else { return None };
        for &r in rset {
            let kind = self.rels[r].kind;
            if !(kind == JoinKind::Cross || (r == 0 && kind == JoinKind::Inner)) {
                return None;
            }
        }
        let t1 = self.field_type(x >> REL_SHIFT, x & ORD_MASK);
        let t2 = self.field_type(y >> REL_SHIFT, y & ORD_MASK);
        if t1 == DataType::Double || t1 != t2 {
            return None;
        }
        Some(Edge { a: *x, b: *y })
    }

    fn rel_est(&self, rel: &Rel, _ri: usize) -> f64 {
        match &rel.source {
            Source::Base(info) => {
                let filter = and_all(rel.pushed.clone());
                info.stats.filtered_rows(filter.as_ref())
            }
            Source::Derived(l) => l.est_rows,
        }
    }

    /// Greedy cost-based order for comma-joined relations: the largest
    /// filtered relation drives (probe side stays big, hash builds stay
    /// small), then repeatedly join the smallest relation connected to the
    /// prefix by an equality edge.
    fn order_by_cost(&self, edges: &[Edge]) -> Vec<usize> {
        let n = self.rels.len();
        let est: Vec<f64> = self.rels.iter().enumerate().map(|(i, r)| self.rel_est(r, i)).collect();
        let mut chain = Vec::with_capacity(n);
        let mut in_chain = vec![false; n];
        let start = (0..n).max_by(|&a, &b| est[a].total_cmp(&est[b]).then(b.cmp(&a))).unwrap_or(0);
        chain.push(start);
        in_chain[start] = true;
        while chain.len() < n {
            let connected = |r: usize| {
                edges.iter().any(|e| {
                    (e.a >> REL_SHIFT == r && in_chain[e.b >> REL_SHIFT])
                        || (e.b >> REL_SHIFT == r && in_chain[e.a >> REL_SHIFT])
                })
            };
            let candidates: Vec<usize> = (0..n).filter(|&r| !in_chain[r] && connected(r)).collect();
            let pool: Vec<usize> = if candidates.is_empty() {
                (0..n).filter(|&r| !in_chain[r]).collect()
            } else {
                candidates
            };
            let next = pool
                .iter()
                .copied()
                .min_by(|&a, &b| est[a].total_cmp(&est[b]).then(a.cmp(&b)))
                .expect("pool nonempty");
            chain.push(next);
            in_chain[next] = true;
        }
        chain
    }

    fn build_rel(&self, rel: &Rel, proj: &[usize]) -> Plan {
        match &rel.source {
            Source::Base(info) => {
                Plan::scan(info.name.clone(), proj.to_vec(), and_all(rel.pushed.clone()))
            }
            Source::Derived(l) => {
                let inner = l.plan.clone();
                match and_all(rel.pushed.clone()) {
                    Some(pred) => inner.filter(pred),
                    None => inner,
                }
            }
        }
    }

    fn position_of(&self, positions: &HashMap<usize, usize>, v: usize) -> Result<usize> {
        positions.get(&v).copied().ok_or_else(|| {
            let rel = v >> REL_SHIFT;
            let ord = v & ORD_MASK;
            let name = self.rels[rel]
                .fields
                .get(ord)
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| format!("#{ord}"));
            err(format!(
                "column {}.{name} is only visible inside its SEMI/ANTI JOIN condition",
                self.rels[rel].binding
            ))
        })
    }

    fn expand_items(
        &self,
        items: &[SelectItem],
        mask: &[bool],
    ) -> Result<Vec<(SqlExpr, Option<String>)>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    for (i, rel) in self.rels.iter().enumerate() {
                        if !mask[i] {
                            continue;
                        }
                        for (name, _) in &rel.fields {
                            out.push((
                                SqlExpr::Column {
                                    qualifier: Some(rel.binding.clone()),
                                    name: name.clone(),
                                },
                                None,
                            ));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => out.push((expr.clone(), alias.clone())),
            }
        }
        if out.is_empty() {
            return Err(err("SELECT list is empty"));
        }
        Ok(out)
    }

    /// Resolve a GROUP BY entry: a bare integer is a 1-based reference to a
    /// select item.
    fn positional<'s>(
        &self,
        g: &'s SqlExpr,
        items: &'s [(SqlExpr, Option<String>)],
    ) -> Result<&'s SqlExpr> {
        if let SqlExpr::Int(k) = g {
            let idx = usize::try_from(*k - 1)
                .ok()
                .filter(|i| *i < items.len())
                .ok_or_else(|| err(format!("GROUP BY position {k} is out of range")))?;
            return Ok(&items[idx].0);
        }
        // An unqualified name matching a select alias refers to that item.
        if let SqlExpr::Column { qualifier: None, name } = g {
            if self.resolve(None, name, &vec![true; self.rels.len()]).is_err() {
                if let Some((e, _)) =
                    items.iter().find(|(_, a)| a.as_deref() == Some(name.as_str()))
                {
                    return Ok(e);
                }
            }
        }
        Ok(g)
    }

    fn resolve_order(
        &self,
        o: &OrderItem,
        outs: &[Expr],
        aliases: &[Option<String>],
        mask: &[bool],
        env: &mut AggEnv,
        agg_mode: bool,
    ) -> Result<usize> {
        if let SqlExpr::Int(k) = &o.expr {
            return usize::try_from(*k - 1)
                .ok()
                .filter(|i| *i < outs.len())
                .ok_or_else(|| err(format!("ORDER BY position {k} is out of range")));
        }
        if let SqlExpr::Column { qualifier: None, name } = &o.expr {
            if let Some(i) = aliases.iter().position(|a| a.as_deref() == Some(name.as_str())) {
                return Ok(i);
            }
        }
        let lowered = if agg_mode {
            self.lower(&o.expr, mask, Some(env))?
        } else {
            self.lower(&o.expr, mask, None)?
        };
        outs.iter()
            .position(|e| *e == lowered)
            .ok_or_else(|| err("ORDER BY expression must appear in the SELECT list"))
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str, mask: &[bool]) -> Result<usize> {
        match qualifier {
            Some(q) => {
                let (i, rel) = self
                    .rels
                    .iter()
                    .enumerate()
                    .find(|(i, r)| r.binding == q && mask[*i])
                    .ok_or_else(|| Error::NotFound(format!("unknown table alias {q:?}")))?;
                let ord = rel
                    .fields
                    .iter()
                    .position(|(n, _)| n == name)
                    .ok_or_else(|| Error::NotFound(format!("unknown column {q}.{name}")))?;
                Ok(vcol(i, ord))
            }
            None => {
                let mut hit: Option<usize> = None;
                for (i, rel) in self.rels.iter().enumerate() {
                    if !mask[i] {
                        continue;
                    }
                    if let Some(ord) = rel.fields.iter().position(|(n, _)| n == name) {
                        if hit.is_some() {
                            return Err(err(format!("ambiguous column {name:?}")));
                        }
                        hit = Some(vcol(i, ord));
                    }
                }
                hit.ok_or_else(|| Error::NotFound(format!("unknown column {name:?}")))
            }
        }
    }

    /// Lower a scalar expression to virtual-column space. With `agg` set the
    /// result is in post-aggregate space: subexpressions matching a GROUP BY
    /// key become key positions, aggregates become aggregate positions, and
    /// any other column reference is an error.
    fn lower(&self, e: &SqlExpr, mask: &[bool], mut agg: Option<&mut AggEnv>) -> Result<Expr> {
        if let Some(env) = agg.as_deref_mut() {
            if !e.has_agg() {
                let scalar = self.lower(e, mask, None)?;
                if let Some(i) = env.groups.iter().position(|g| *g == scalar) {
                    return Ok(Expr::Column(i));
                }
                if scalar.referenced_columns().is_empty() {
                    return Ok(scalar);
                }
                // Fall through: operators recurse so `f(group_expr)` works;
                // bare columns outside any group expression error below.
            }
        }
        let low = |x: &SqlExpr, agg: &mut Option<&mut AggEnv>| -> Result<Expr> {
            self.lower(x, mask, agg.as_deref_mut())
        };
        match e {
            SqlExpr::Column { qualifier, name } => match agg {
                None => Ok(Expr::Column(self.resolve(qualifier.as_deref(), name, mask)?)),
                Some(_) => Err(err(format!(
                    "column {name:?} must appear in GROUP BY or inside an aggregate"
                ))),
            },
            SqlExpr::Int(v) => Ok(Expr::Literal(Value::Int(*v))),
            SqlExpr::Double(v) => Ok(Expr::Literal(Value::Double(*v))),
            SqlExpr::Str(s) => Ok(Expr::Literal(Value::str(s.clone()))),
            SqlExpr::Null => Ok(Expr::Literal(Value::Null)),
            SqlExpr::Cmp(op, a, b) => {
                Ok(Expr::Cmp(*op, Box::new(low(a, &mut agg)?), Box::new(low(b, &mut agg)?)))
            }
            SqlExpr::Arith(op, a, b) => {
                Ok(Expr::Arith(*op, Box::new(low(a, &mut agg)?), Box::new(low(b, &mut agg)?)))
            }
            SqlExpr::And(a, b) => Ok(low(a, &mut agg)?.and(low(b, &mut agg)?)),
            SqlExpr::Or(a, b) => Ok(or_flat(low(a, &mut agg)?, low(b, &mut agg)?)),
            SqlExpr::Not(inner) => Ok(Expr::Not(Box::new(low(inner, &mut agg)?))),
            SqlExpr::IsNull { expr, negated } => {
                let inner = Expr::IsNull(Box::new(low(expr, &mut agg)?));
                Ok(if *negated { Expr::Not(Box::new(inner)) } else { inner })
            }
            SqlExpr::InList { expr, list, negated } => {
                let mut values = Vec::with_capacity(list.len());
                for item in list {
                    let folded = crate::optimize::fold_expr(self.lower(item, mask, None)?);
                    match folded {
                        Expr::Literal(v) => values.push(v),
                        _ => return Err(err("IN list items must be constants")),
                    }
                }
                let inner = Expr::InList(Box::new(low(expr, &mut agg)?), values);
                Ok(if *negated { Expr::Not(Box::new(inner)) } else { inner })
            }
            SqlExpr::Like { expr, pattern, negated } => {
                let inner = Expr::Like(Box::new(low(expr, &mut agg)?), pattern.clone());
                Ok(if *negated { Expr::Not(Box::new(inner)) } else { inner })
            }
            SqlExpr::Between { expr, lo, hi, negated } => {
                let x = low(expr, &mut agg)?;
                let ge = Expr::Cmp(CmpOp::Ge, Box::new(x.clone()), Box::new(low(lo, &mut agg)?));
                let le = Expr::Cmp(CmpOp::Le, Box::new(x), Box::new(low(hi, &mut agg)?));
                let both = ge.and(le);
                Ok(if *negated { Expr::Not(Box::new(both)) } else { both })
            }
            SqlExpr::Case { when, else_ } => {
                let mut arms = Vec::with_capacity(when.len());
                for (c, r) in when {
                    arms.push((low(c, &mut agg)?, low(r, &mut agg)?));
                }
                let else_expr = match else_ {
                    Some(x) => low(x, &mut agg)?,
                    None => Expr::Literal(Value::Null),
                };
                Ok(Expr::Case { when: arms, else_: Box::new(else_expr) })
            }
            SqlExpr::Func(FuncName::Year, args) => {
                Ok(Expr::Year(Box::new(low(&args[0], &mut agg)?)))
            }
            SqlExpr::Func(FuncName::Substr, args) => {
                let start = const_usize(self.lower(&args[1], mask, None)?)?;
                let len = const_usize(self.lower(&args[2], mask, None)?)?;
                if start == 0 {
                    return Err(err("SUBSTR start position is 1-based"));
                }
                Ok(Expr::Substr(Box::new(low(&args[0], &mut agg)?), start, len))
            }
            SqlExpr::Agg { func, arg } => match agg {
                Some(env) => {
                    let input = match arg {
                        Some(a) => self.lower(a, mask, None)?,
                        None => Expr::Literal(Value::Int(1)),
                    };
                    let idx = match env.aggs.iter().position(|(f, i)| f == func && *i == input) {
                        Some(i) => i,
                        None => {
                            env.aggs.push((*func, input));
                            env.aggs.len() - 1
                        }
                    };
                    Ok(Expr::Column(env.groups.len() + idx))
                }
                None => Err(err("aggregates are not allowed in this clause")),
            },
        }
    }
}

impl Edge {
    fn a_col(&self) -> usize {
        self.a
    }
    fn b_col(&self) -> usize {
        self.b
    }
}

fn const_usize(e: Expr) -> Result<usize> {
    match crate::optimize::fold_expr(e) {
        Expr::Literal(Value::Int(v)) if v >= 0 => Ok(v as usize),
        _ => Err(err("expected a non-negative integer constant")),
    }
}

fn output_name(e: &SqlExpr, alias: &Option<String>, i: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    if let SqlExpr::Column { name, .. } = e {
        return name.clone();
    }
    format!("col{i}")
}

fn split_sql_conjuncts(e: &SqlExpr) -> Vec<&SqlExpr> {
    match e {
        SqlExpr::And(a, b) => {
            let mut out = split_sql_conjuncts(a);
            out.extend(split_sql_conjuncts(b));
            out
        }
        other => vec![other],
    }
}

fn rels_of(e: &Expr) -> BTreeSet<usize> {
    e.referenced_columns().into_iter().map(|v| v >> REL_SHIFT).collect()
}

fn rels_of_cols(e: &Expr) -> Vec<usize> {
    e.referenced_columns()
}

fn or_flat(a: Expr, b: Expr) -> Expr {
    match (a, b) {
        (Expr::Or(mut xs), Expr::Or(ys)) => {
            xs.extend(ys);
            Expr::Or(xs)
        }
        (Expr::Or(mut xs), y) => {
            xs.push(y);
            Expr::Or(xs)
        }
        (x, Expr::Or(mut ys)) => {
            ys.insert(0, x);
            Expr::Or(ys)
        }
        (x, y) => Expr::Or(vec![x, y]),
    }
}

/// Fold a conjunct list into one expression (flattening nested ANDs the same
/// way the hand-built plans do via [`Expr::and`]).
pub(crate) fn and_all(mut parts: Vec<Expr>) -> Option<Expr> {
    match parts.len() {
        0 => None,
        1 => parts.pop(),
        _ => {
            let mut it = parts.into_iter();
            let first = it.next().expect("len checked");
            Some(it.fold(first, Expr::and))
        }
    }
}

/// Rewrite every column reference through `f`.
pub(crate) fn map_columns(e: &Expr, f: &dyn Fn(usize) -> Result<usize>) -> Result<Expr> {
    Ok(match e {
        Expr::Column(c) => Expr::Column(f(*c)?),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Cmp(op, a, b) => {
            Expr::Cmp(*op, Box::new(map_columns(a, f)?), Box::new(map_columns(b, f)?))
        }
        Expr::And(parts) => {
            Expr::And(parts.iter().map(|p| map_columns(p, f)).collect::<Result<_>>()?)
        }
        Expr::Or(parts) => {
            Expr::Or(parts.iter().map(|p| map_columns(p, f)).collect::<Result<_>>()?)
        }
        Expr::Not(inner) => Expr::Not(Box::new(map_columns(inner, f)?)),
        Expr::IsNull(inner) => Expr::IsNull(Box::new(map_columns(inner, f)?)),
        Expr::InList(inner, vals) => Expr::InList(Box::new(map_columns(inner, f)?), vals.clone()),
        Expr::Like(inner, pat) => Expr::Like(Box::new(map_columns(inner, f)?), pat.clone()),
        Expr::Arith(op, a, b) => {
            Expr::Arith(*op, Box::new(map_columns(a, f)?), Box::new(map_columns(b, f)?))
        }
        Expr::Case { when, else_ } => Expr::Case {
            when: when
                .iter()
                .map(|(c, r)| Ok((map_columns(c, f)?, map_columns(r, f)?)))
                .collect::<Result<_>>()?,
            else_: Box::new(map_columns(else_, f)?),
        },
        Expr::Year(inner) => Expr::Year(Box::new(map_columns(inner, f)?)),
        Expr::Substr(inner, s, l) => Expr::Substr(Box::new(map_columns(inner, f)?), *s, *l),
    })
}

/// Infer the output type of an expression over inputs of the given types.
/// Must agree with runtime evaluation: the vector builder rejects doubles in
/// an Int64 column, so anything that can produce a double types as Double.
pub(crate) fn infer_type(e: &Expr, inputs: &[DataType]) -> Result<DataType> {
    Ok(infer_opt(e, inputs)?.unwrap_or(DataType::Int64))
}

fn infer_opt(e: &Expr, inputs: &[DataType]) -> Result<Option<DataType>> {
    Ok(match e {
        Expr::Column(c) => Some(
            *inputs.get(*c).ok_or_else(|| Error::Internal(format!("column #{c} out of range")))?,
        ),
        Expr::Literal(v) => v.data_type(),
        Expr::Cmp(..)
        | Expr::And(_)
        | Expr::Or(_)
        | Expr::Not(_)
        | Expr::IsNull(_)
        | Expr::InList(..)
        | Expr::Like(..)
        | Expr::Year(_) => Some(DataType::Int64),
        Expr::Substr(..) => Some(DataType::Str),
        Expr::Arith(_, a, b) => {
            let ta = infer_opt(a, inputs)?;
            let tb = infer_opt(b, inputs)?;
            if ta == Some(DataType::Str) || tb == Some(DataType::Str) {
                return Err(err("arithmetic over strings"));
            }
            match (ta, tb) {
                (Some(DataType::Int64) | None, Some(DataType::Int64) | None) => {
                    Some(DataType::Int64)
                }
                _ => Some(DataType::Double),
            }
        }
        Expr::Case { when, else_ } => {
            let mut unified: Option<DataType> = None;
            let mut arms: Vec<&Expr> = when.iter().map(|(_, r)| r).collect();
            arms.push(else_);
            for arm in arms {
                let Some(t) = infer_opt(arm, inputs)? else { continue };
                unified = Some(match unified {
                    None => t,
                    Some(u) if u == t => u,
                    Some(DataType::Str) | Some(_) if t == DataType::Str => {
                        return Err(err("CASE arms mix strings and numbers"))
                    }
                    Some(DataType::Str) => return Err(err("CASE arms mix strings and numbers")),
                    Some(_) => DataType::Double,
                });
            }
            unified
        }
    })
}
