//! `EXPLAIN` rendering: an indented plan tree annotated with the planner's
//! cardinality estimates and the §5 clause-ranking numbers.

use std::fmt::Write as _;

use s2_exec::{AggFunc, Expr, JoinType, SortDir};
use s2_query::Plan;

use crate::planner::Catalog;
use crate::stats::eval_cost;

/// Render `plan` as an indented tree. Scan nodes show the projected column
/// names, the table's live row count and the estimated surviving rows, plus
/// one line per filter conjunct with its estimated selectivity, cost and
/// `(1-P)/cost` rank (the order the conjuncts run in).
pub fn explain_plan(plan: &Plan, cat: &Catalog<'_>) -> String {
    let mut out = String::new();
    render(plan, cat, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(plan: &Plan, cat: &Catalog<'_>, depth: usize, out: &mut String) -> f64 {
    match plan {
        Plan::Scan { table, projection, filter } => {
            let info = cat.get(table).ok();
            let (rows, stats) = match &info {
                Some(i) => (i.stats.rows, Some(&i.stats)),
                None => (0.0, None),
            };
            let cols: Vec<String> = projection
                .iter()
                .map(|&ord| match &info {
                    Some(i) => i
                        .fields
                        .get(ord)
                        .map(|(n, _)| n.clone())
                        .unwrap_or_else(|| format!("#{ord}")),
                    None => format!("#{ord}"),
                })
                .collect();
            let est = match (stats, filter) {
                (Some(s), f) => s.filtered_rows(f.as_ref()),
                (None, _) => rows,
            };
            indent(out, depth);
            let _ = writeln!(out, "Scan {table} [{}] rows={rows:.0} est={est:.0}", cols.join(", "));
            if let Some(f) = filter {
                let conjuncts: Vec<&Expr> = match f {
                    Expr::And(parts) => parts.iter().collect(),
                    other => vec![other],
                };
                for c in conjuncts {
                    indent(out, depth + 1);
                    match stats {
                        Some(s) => {
                            let sel = s.selectivity(c);
                            let cost = eval_cost(c, &s.types);
                            let _ = writeln!(
                                out,
                                "filter {} [sel={sel:.4} cost={cost:.1} rank={:.4}]",
                                fmt_expr(c),
                                s.priority(c)
                            );
                        }
                        None => {
                            let _ = writeln!(out, "filter {}", fmt_expr(c));
                        }
                    }
                }
            }
            est
        }
        Plan::Filter { input, predicate } => {
            // Render children first into a scratch buffer so the node line
            // can carry the estimate.
            let mut child = String::new();
            let in_est = render(input, cat, depth + 1, &mut child);
            let est = in_est * 0.33;
            indent(out, depth);
            let _ = writeln!(out, "Filter {} est={est:.0}", fmt_expr(predicate));
            out.push_str(&child);
            est
        }
        Plan::Project { input, exprs } => {
            let mut child = String::new();
            let est = render(input, cat, depth + 1, &mut child);
            indent(out, depth);
            let rendered: Vec<String> = exprs.iter().map(|(e, _)| fmt_expr(e)).collect();
            let _ = writeln!(out, "Project [{}] est={est:.0}", rendered.join(", "));
            out.push_str(&child);
            est
        }
        Plan::Join { left, right, left_keys, right_keys, join_type, residual } => {
            let mut lbuf = String::new();
            let mut rbuf = String::new();
            let lest = render(left, cat, depth + 1, &mut lbuf);
            let rest = render(right, cat, depth + 1, &mut rbuf);
            let est = match join_type {
                JoinType::Inner | JoinType::Left => lest.max(rest),
                JoinType::Semi | JoinType::Anti => lest * 0.5,
            };
            indent(out, depth);
            let kind = match join_type {
                JoinType::Inner => "Inner",
                JoinType::Left => "Left",
                JoinType::Semi => "Semi",
                JoinType::Anti => "Anti",
            };
            let keys: Vec<String> =
                left_keys.iter().zip(right_keys).map(|(l, r)| format!("#{l}=#{r}")).collect();
            let res = match residual {
                Some(r) => format!(" residual {}", fmt_expr(r)),
                None => String::new(),
            };
            let _ = writeln!(out, "HashJoin {kind} keys=[{}]{res} est={est:.0}", keys.join(", "));
            out.push_str(&lbuf);
            out.push_str(&rbuf);
            est
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let mut child = String::new();
            let in_est = render(input, cat, depth + 1, &mut child);
            let est = if group_by.is_empty() { 1.0 } else { (in_est / 4.0).max(1.0) };
            indent(out, depth);
            let groups: Vec<String> = group_by.iter().map(fmt_expr).collect();
            let aggs: Vec<String> = aggregates
                .iter()
                .map(|a| format!("{}({})", agg_name(a.func), fmt_expr(&a.input)))
                .collect();
            let _ = writeln!(
                out,
                "Aggregate groups=[{}] aggs=[{}] est={est:.0}",
                groups.join(", "),
                aggs.join(", ")
            );
            out.push_str(&child);
            est
        }
        Plan::Sort { input, keys, limit } => {
            let mut child = String::new();
            let in_est = render(input, cat, depth + 1, &mut child);
            let est = match limit {
                Some(n) => in_est.min(*n as f64),
                None => in_est,
            };
            indent(out, depth);
            let rendered: Vec<String> = keys
                .iter()
                .map(|(k, d)| {
                    format!("#{k}{}", if matches!(d, SortDir::Desc) { " DESC" } else { "" })
                })
                .collect();
            let lim = match limit {
                Some(n) => format!(" limit={n}"),
                None => String::new(),
            };
            let _ = writeln!(out, "Sort [{}]{lim} est={est:.0}", rendered.join(", "));
            out.push_str(&child);
            est
        }
        Plan::Limit { input, n } => {
            let mut child = String::new();
            let in_est = render(input, cat, depth + 1, &mut child);
            let est = in_est.min(*n as f64);
            indent(out, depth);
            let _ = writeln!(out, "Limit {n} est={est:.0}");
            out.push_str(&child);
            est
        }
    }
}

fn agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "COUNT",
        AggFunc::Sum => "SUM",
        AggFunc::Avg => "AVG",
        AggFunc::Min => "MIN",
        AggFunc::Max => "MAX",
    }
}

/// Compact positional rendering of an exec expression (`#n` columns).
pub fn fmt_expr(e: &Expr) -> String {
    use s2_exec::{ArithOp, CmpOp};
    match e {
        Expr::Column(c) => format!("#{c}"),
        Expr::Literal(v) => format!("{v:?}"),
        Expr::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {sym} {})", fmt_expr(a), fmt_expr(b))
        }
        Expr::And(parts) => {
            let inner: Vec<String> = parts.iter().map(fmt_expr).collect();
            format!("({})", inner.join(" AND "))
        }
        Expr::Or(parts) => {
            let inner: Vec<String> = parts.iter().map(fmt_expr).collect();
            format!("({})", inner.join(" OR "))
        }
        Expr::Not(inner) => format!("(NOT {})", fmt_expr(inner)),
        Expr::IsNull(inner) => format!("({} IS NULL)", fmt_expr(inner)),
        Expr::InList(inner, vals) => {
            let list: Vec<String> = vals.iter().map(|v| format!("{v:?}")).collect();
            format!("({} IN ({}))", fmt_expr(inner), list.join(", "))
        }
        Expr::Like(inner, pat) => format!("({} LIKE '{pat}')", fmt_expr(inner)),
        Expr::Arith(op, a, b) => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            format!("({} {sym} {})", fmt_expr(a), fmt_expr(b))
        }
        Expr::Case { when, else_ } => {
            let mut s = String::from("(CASE");
            for (c, r) in when {
                let _ = write!(s, " WHEN {} THEN {}", fmt_expr(c), fmt_expr(r));
            }
            let _ = write!(s, " ELSE {} END)", fmt_expr(else_));
            s
        }
        Expr::Year(inner) => format!("YEAR({})", fmt_expr(inner)),
        Expr::Substr(inner, s, l) => format!("SUBSTR({}, {s}, {l})", fmt_expr(inner)),
    }
}
