//! `s2-sql`: a zero-dependency SQL front end over the s2 engines.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → name resolution and typing →
//! lowering to [`s2_query::Plan`] ([`planner`]) → plan rewrites
//! ([`optimize`]): constant folding, predicate pushdown into `Scan.filter`,
//! projection pruning, and cost-based join ordering plus §5-style
//! `(1 - P) / cost` clause ranking fed by segment min/max metadata and row
//! counts ([`stats`]).
//!
//! Entry points: [`plan`] compiles SQL text into an executable plan,
//! [`query`] plans and runs it against any [`QueryContext`], and
//! [`explain`] renders the annotated plan tree. [`SqlContext`] adds
//! `ctx.query(sql)` / `ctx.explain(sql)` to every query context.

pub mod ast;
pub mod explain;
pub mod lexer;
mod optimize;
pub mod parser;
pub mod planner;
pub mod stats;

use std::time::Instant;

use s2_common::{DataType, Error, Result};
use s2_exec::Batch;
use s2_obs::{counter, histogram};
use s2_query::{ExecOptions, Plan, QueryContext};

pub use lexer::ParseError;
pub use parser::parse;
pub use planner::Catalog;

use ast::Statement;

/// A compiled SQL statement: the optimized plan plus output metadata.
pub struct CompiledQuery {
    /// Executable plan.
    pub plan: Plan,
    /// Output column names and types, in order.
    pub fields: Vec<(String, DataType)>,
    /// Whether the statement was an `EXPLAIN`.
    pub explain: bool,
}

fn parse_checked(sql: &str) -> Result<Statement> {
    counter!("sql.parse_total").inc();
    parse(sql).map_err(|e| {
        counter!("sql.parse_errors").inc();
        Error::InvalidArgument(e.render(sql))
    })
}

fn compile(sql: &str, cat: &Catalog<'_>) -> Result<CompiledQuery> {
    let stmt = parse_checked(sql)?;
    let start = Instant::now();
    let (sel, explain) = match &stmt {
        Statement::Select(s) => (s, false),
        Statement::Explain(s) => (s, true),
    };
    let lowered = planner::lower_select(sel, cat)?;
    let plan = optimize::optimize(lowered.plan, cat);
    counter!("sql.plan_total").inc();
    histogram!("sql.plan_ms").record(start.elapsed().as_millis() as u64);
    Ok(CompiledQuery { plan, fields: lowered.fields, explain })
}

/// Compile `sql` into an optimized plan against the tables visible in `ctx`.
/// `EXPLAIN` statements compile the inner SELECT and set
/// [`CompiledQuery::explain`].
pub fn plan(ctx: &dyn QueryContext, sql: &str) -> Result<CompiledQuery> {
    let cat = Catalog::new(ctx);
    compile(sql, &cat)
}

/// Render the annotated `EXPLAIN` output for `sql` (works on plain SELECTs
/// too).
pub fn explain(ctx: &dyn QueryContext, sql: &str) -> Result<String> {
    let cat = Catalog::new(ctx);
    let compiled = compile(sql, &cat)?;
    Ok(explain::explain_plan(&compiled.plan, &cat))
}

/// Plan and execute `sql` against `ctx`. An `EXPLAIN` statement returns a
/// single `plan` string column holding the annotated tree.
pub fn query(ctx: &dyn QueryContext, sql: &str) -> Result<Batch> {
    query_with(ctx, sql, &ExecOptions::default())
}

/// [`query`] with explicit execution options.
pub fn query_with(ctx: &dyn QueryContext, sql: &str, opts: &ExecOptions) -> Result<Batch> {
    let cat = Catalog::new(ctx);
    let compiled = compile(sql, &cat)?;
    if compiled.explain {
        let text = explain::explain_plan(&compiled.plan, &cat);
        let rows: Vec<s2_common::Row> =
            text.lines().map(|l| s2_common::Row::new(vec![s2_common::Value::str(l)])).collect();
        return Batch::from_rows(&rows, &[0], &[DataType::Str]);
    }
    s2_query::execute(&compiled.plan, ctx, opts)
}

/// SQL entry points on any query context: `ctx.query("SELECT ...")`.
pub trait SqlContext {
    /// Plan and execute a SQL string.
    fn query(&self, sql: &str) -> Result<Batch>;
    /// Render the annotated plan tree for a SQL string.
    fn explain(&self, sql: &str) -> Result<String>;
}

impl<T: QueryContext> SqlContext for T {
    fn query(&self, sql: &str) -> Result<Batch> {
        query(self, sql)
    }
    fn explain(&self, sql: &str) -> Result<String> {
        explain(self, sql)
    }
}
