//! Property tests for the SQL front end.
//!
//! 1. Pretty-print round-trip: a generated AST, printed via `Display` and
//!    re-parsed, yields the identical AST.
//! 2. Totality: the parser never panics on arbitrary input — it returns
//!    either a statement or a [`s2_sql::ParseError`].

use proptest::prelude::*;
use s2_exec::{AggFunc, ArithOp, CmpOp};
use s2_sql::ast::{
    FromItem, FuncName, Join, JoinKind, OrderItem, Select, SelectItem, SqlExpr, Statement, TableRef,
};
use s2_sql::parse;

/// Deterministic helper RNG so the generator can make many draws from one
/// proptest-provided seed.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed | 1 }
    }
    fn next(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn flag(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

const IDENTS: &[&str] = &["a", "b", "c", "x1", "y2", "col_a", "val"];
const TABLES: &[&str] = &["t", "u", "v", "orders_t"];
const STRINGS: &[&str] = &["", "x", "it's", "100%", "a_b", "Ms. O''Hara"];

fn ident(g: &mut Gen) -> String {
    IDENTS[g.below(IDENTS.len() as u64) as usize].to_string()
}

fn expr(g: &mut Gen, depth: usize) -> SqlExpr {
    let leaf = depth == 0;
    let pick = if leaf { g.below(5) } else { g.below(16) };
    match pick {
        0 => SqlExpr::Column { qualifier: None, name: ident(g) },
        1 => {
            SqlExpr::Column { qualifier: Some(TABLES[g.below(4) as usize].into()), name: ident(g) }
        }
        2 => SqlExpr::Int(g.below(20_000) as i64 - 10_000),
        3 => {
            let v = (g.below(4_000) as f64 - 2_000.0) / 8.0;
            SqlExpr::Double(v)
        }
        4 => SqlExpr::Str(STRINGS[g.below(STRINGS.len() as u64) as usize].into()),
        5 => SqlExpr::Null,
        6 => {
            let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
            SqlExpr::Cmp(
                ops[g.below(6) as usize],
                Box::new(expr(g, depth - 1)),
                Box::new(expr(g, depth - 1)),
            )
        }
        7 => {
            let ops = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div];
            SqlExpr::Arith(
                ops[g.below(4) as usize],
                Box::new(expr(g, depth - 1)),
                Box::new(expr(g, depth - 1)),
            )
        }
        8 => SqlExpr::And(Box::new(expr(g, depth - 1)), Box::new(expr(g, depth - 1))),
        9 => SqlExpr::Or(Box::new(expr(g, depth - 1)), Box::new(expr(g, depth - 1))),
        10 => SqlExpr::Not(Box::new(expr(g, depth - 1))),
        11 => SqlExpr::IsNull { expr: Box::new(expr(g, depth - 1)), negated: g.flag() },
        12 => {
            let n = 1 + g.below(3);
            let list = (0..n).map(|_| expr(g, depth - 1)).collect();
            SqlExpr::InList { expr: Box::new(expr(g, depth - 1)), list, negated: g.flag() }
        }
        13 => SqlExpr::Like {
            expr: Box::new(expr(g, depth - 1)),
            pattern: STRINGS[g.below(STRINGS.len() as u64) as usize].into(),
            negated: g.flag(),
        },
        14 => SqlExpr::Between {
            expr: Box::new(expr(g, depth - 1)),
            lo: Box::new(expr(g, depth - 1)),
            hi: Box::new(expr(g, depth - 1)),
            negated: g.flag(),
        },
        _ => match g.below(4) {
            0 => {
                let n = 1 + g.below(2);
                let when = (0..n).map(|_| (expr(g, depth - 1), expr(g, depth - 1))).collect();
                let else_ = if g.flag() { Some(Box::new(expr(g, depth - 1))) } else { None };
                SqlExpr::Case { when, else_ }
            }
            1 => SqlExpr::Func(FuncName::Year, vec![expr(g, depth - 1)]),
            2 => SqlExpr::Func(
                FuncName::Substr,
                vec![
                    expr(g, depth - 1),
                    SqlExpr::Int(1 + g.below(5) as i64),
                    SqlExpr::Int(g.below(9) as i64),
                ],
            ),
            _ => {
                let funcs =
                    [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
                let func = funcs[g.below(5) as usize];
                let arg = if func == AggFunc::Count && g.flag() {
                    None
                } else {
                    Some(Box::new(expr(g, depth - 1)))
                };
                SqlExpr::Agg { func, arg }
            }
        },
    }
}

fn table_ref(g: &mut Gen, depth: usize) -> TableRef {
    if depth > 0 && g.below(4) == 0 {
        TableRef::Derived {
            select: Box::new(select(g, depth - 1)),
            alias: format!("d{}", g.below(4)),
        }
    } else {
        TableRef::Table {
            name: TABLES[g.below(TABLES.len() as u64) as usize].into(),
            alias: if g.flag() { Some(format!("al{}", g.below(4))) } else { None },
        }
    }
}

fn select(g: &mut Gen, depth: usize) -> Select {
    let items = if g.below(8) == 0 {
        vec![SelectItem::Wildcard]
    } else {
        let n = 1 + g.below(3);
        (0..n)
            .map(|i| SelectItem::Expr {
                expr: expr(g, 2),
                alias: if g.flag() { Some(format!("o{i}")) } else { None },
            })
            .collect()
    };
    let n_from = 1 + g.below(2);
    let from = (0..n_from)
        .map(|_| {
            let n_joins = g.below(3);
            let joins = (0..n_joins)
                .map(|_| {
                    let kind = match g.below(5) {
                        0 => JoinKind::Inner,
                        1 => JoinKind::Left,
                        2 => JoinKind::Semi,
                        3 => JoinKind::Anti,
                        _ => JoinKind::Cross,
                    };
                    let on = if kind == JoinKind::Cross { None } else { Some(expr(g, 2)) };
                    Join { kind, rel: table_ref(g, depth), on }
                })
                .collect();
            FromItem { rel: table_ref(g, depth), joins }
        })
        .collect();
    let group_by = if g.below(3) == 0 {
        (0..1 + g.below(2)).map(|_| expr(g, 1)).collect()
    } else {
        Vec::new()
    };
    Select {
        distinct: g.below(8) == 0,
        items,
        from,
        where_: if g.flag() { Some(expr(g, 2)) } else { None },
        group_by: group_by.clone(),
        having: if !group_by.is_empty() && g.flag() { Some(expr(g, 1)) } else { None },
        order_by: if g.flag() {
            (0..1 + g.below(2)).map(|_| OrderItem { expr: expr(g, 1), desc: g.flag() }).collect()
        } else {
            Vec::new()
        },
        limit: if g.flag() { Some(g.below(1000)) } else { None },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_print_roundtrips(seed in proptest::arbitrary::any::<u64>()) {
        let mut g = Gen::new(seed);
        let sel = select(&mut g, 2);
        let stmt =
            if g.flag() { Statement::Explain(sel) } else { Statement::Select(sel) };
        let text = stmt.to_string();
        let reparsed = parse(&text);
        prop_assert!(
            reparsed.as_ref() == Ok(&stmt),
            "sql: {text}\nwant: {stmt:?}\ngot: {reparsed:?}"
        );
    }

    #[test]
    fn parser_is_total_over_bytes(bytes in proptest::collection::vec(
        proptest::arbitrary::any::<u8>(), 0..160)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = parse(&s);
    }

    #[test]
    fn parser_is_total_over_sqlish_text(s in "[a-zA-Z0-9_'(),.*<>= ]{0,120}") {
        let _ = parse(&s);
    }
}
