//! Planner integration tests: pushdown, pruning, folding, cost-based
//! ordering and end-to-end SQL execution against a real partition.

use std::sync::Arc;

use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_exec::{AggFunc, Aggregate, CmpOp, Expr, SortDir};
use s2_query::{execute, format_batch, ExecOptions, Plan};
use s2_sql::SqlContext;
use s2_wal::Log;

/// orders(o_id, o_cust, o_amount, o_status) + customers(c_id, c_name,
/// c_region) + tiny regions(r_name, r_prio).
fn setup() -> Arc<Partition> {
    let p = Partition::new("p0", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let orders_schema = Schema::new(vec![
        ColumnDef::new("o_id", DataType::Int64),
        ColumnDef::new("o_cust", DataType::Int64),
        ColumnDef::new("o_amount", DataType::Double),
        ColumnDef::new("o_status", DataType::Str),
    ])
    .unwrap();
    let orders_opts = TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_segment_rows(200);
    let orders = p.create_table("orders", orders_schema, orders_opts).unwrap();

    let cust_schema = Schema::new(vec![
        ColumnDef::new("c_id", DataType::Int64),
        ColumnDef::new("c_name", DataType::Str),
        ColumnDef::new("c_region", DataType::Str),
    ])
    .unwrap();
    let customers = p
        .create_table("customers", cust_schema, TableOptions::new().with_unique("pk", vec![0]))
        .unwrap();

    let region_schema = Schema::new(vec![
        ColumnDef::new("r_name", DataType::Str),
        ColumnDef::new("r_prio", DataType::Int64),
    ])
    .unwrap();
    let regions = p
        .create_table("regions", region_schema, TableOptions::new().with_unique("pk", vec![0]))
        .unwrap();

    let mut txn = p.begin();
    for c in 0..20i64 {
        txn.insert(
            customers,
            Row::new(vec![
                Value::Int(c),
                Value::str(format!("cust{c}")),
                Value::str(["NA", "EU", "APAC"][(c % 3) as usize]),
            ]),
        )
        .unwrap();
    }
    for o in 0..500i64 {
        txn.insert(
            orders,
            Row::new(vec![
                Value::Int(o),
                Value::Int(o % 20),
                Value::Double((o % 50) as f64),
                Value::str(if o % 7 == 0 { "open" } else { "done" }),
            ]),
        )
        .unwrap();
    }
    for (i, r) in ["NA", "EU", "APAC"].iter().enumerate() {
        txn.insert(regions, Row::new(vec![Value::str(*r), Value::Int(i as i64)])).unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(orders, true).unwrap();
    p.flush_table(customers, true).unwrap();
    p.flush_table(regions, true).unwrap();
    p
}

fn run(p: &Arc<Partition>, sql: &str) -> s2_exec::Batch {
    p.read_snapshot().query(sql).unwrap()
}

fn plan_of(p: &Arc<Partition>, sql: &str) -> Plan {
    let snap = p.read_snapshot();
    s2_sql::plan(&snap, sql).unwrap().plan
}

#[test]
fn where_pushes_into_scan_filter() {
    let p = setup();
    let plan = plan_of(&p, "SELECT o_id FROM orders WHERE o_amount > 40.0 AND o_cust = 3");
    // Both conjuncts land in the scan filter (table-ordinal space); the
    // cheap, selective equality is ranked ahead of the range clause.
    let Plan::Scan { table, projection, filter } = plan else {
        panic!("expected bare scan, got {plan:?}")
    };
    assert_eq!(table, "orders");
    // Scan filters evaluate in table-ordinal space, so only the output
    // column survives projection pruning.
    assert_eq!(projection, vec![0]);
    let Some(Expr::And(parts)) = filter else { panic!("expected AND filter: {filter:?}") };
    assert_eq!(parts.len(), 2);
    assert_eq!(parts[0], Expr::eq(1, 3i64));
    assert_eq!(parts[1], Expr::cmp(2, CmpOp::Gt, 40.0));
}

#[test]
fn projection_prunes_to_demanded_columns() {
    let p = setup();
    let plan = plan_of(&p, "SELECT o_amount FROM orders");
    let Plan::Scan { projection, .. } = plan else { panic!("expected bare scan: {plan:?}") };
    assert_eq!(projection, vec![2]);
}

#[test]
fn constant_expressions_fold() {
    let p = setup();
    let plan = plan_of(&p, "SELECT o_id FROM orders WHERE o_amount < 10.0 * (1 + 2)");
    let Plan::Scan { filter, .. } = plan else { panic!("expected scan") };
    assert_eq!(filter, Some(Expr::cmp(2, CmpOp::Lt, 30.0)));
}

#[test]
fn comma_joins_are_cost_ordered() {
    let p = setup();
    // Written smallest-first; the planner must drive from `orders` (500
    // rows) and build hash tables on customers (20) then regions (3).
    let plan = plan_of(
        &p,
        "SELECT o_id FROM regions, customers, orders \
         WHERE o_cust = c_id AND c_region = r_name",
    );
    let Plan::Project { input, .. } = plan else { panic!("expected project") };
    let Plan::Join { left, right, .. } = *input else { panic!("expected join") };
    let Plan::Scan { table: build2, .. } = *right else { panic!("expected scan build") };
    let Plan::Join { left: inner_left, right: inner_right, .. } = *left else {
        panic!("expected inner join")
    };
    let Plan::Scan { table: driver, .. } = *inner_left else { panic!("expected driver scan") };
    let Plan::Scan { table: build1, .. } = *inner_right else { panic!("expected scan") };
    assert_eq!(driver, "orders");
    assert_eq!(build1, "customers");
    assert_eq!(build2, "regions");
}

#[test]
fn explain_shows_ranked_filters_and_costs() {
    let p = setup();
    let snap = p.read_snapshot();
    let text = snap
        .explain(
            "SELECT c_region, COUNT(*) FROM orders, customers \
             WHERE o_cust = c_id AND o_status LIKE 'do%' AND o_id < 100 \
             GROUP BY c_region",
        )
        .unwrap();
    assert!(text.contains("Scan orders"), "{text}");
    assert!(text.contains("rank="), "{text}");
    assert!(text.contains("HashJoin Inner"), "{text}");
    assert!(text.contains("Aggregate"), "{text}");
    // The cheap range clause must be ranked ahead of the LIKE.
    let lt = text.find("(#0 < Int(100))").expect("range clause in explain");
    let like = text.find("LIKE").expect("like clause in explain");
    assert!(lt < like, "{text}");
}

#[test]
fn explain_statement_returns_plan_column() {
    let p = setup();
    let out = run(&p, "EXPLAIN SELECT o_id FROM orders WHERE o_cust = 1");
    assert_eq!(out.width(), 1);
    assert!(out.rows() >= 2);
    let first = out.value(0, 0);
    assert!(format!("{first:?}").contains("Scan orders"));
}

#[test]
fn sql_matches_hand_built_plan_bytes() {
    let p = setup();
    let snap = p.read_snapshot();
    // Hand-built: scan orders, join customers, aggregate per region,
    // sort by revenue desc.
    let hand = Plan::scan("orders", vec![1, 2], Some(Expr::cmp(2, CmpOp::Ge, 10.0)))
        .join(Plan::scan("customers", vec![0, 2], None), vec![0], vec![0])
        .aggregate(
            vec![Expr::Column(3)],
            vec![Aggregate { func: AggFunc::Sum, input: Expr::Column(1) }],
        )
        .sort(vec![(1, SortDir::Desc), (0, SortDir::Asc)], None);
    let expect = execute(&hand, &snap, &ExecOptions::default()).unwrap();

    let got = snap
        .query(
            "SELECT c_region, SUM(o_amount) AS rev \
             FROM orders JOIN customers ON o_cust = c_id \
             WHERE o_amount >= 10.0 \
             GROUP BY c_region ORDER BY rev DESC, c_region",
        )
        .unwrap();
    let headers = ["c_region", "rev"];
    assert_eq!(format_batch(&got, &headers), format_batch(&expect, &headers));
}

#[test]
fn distinct_derived_semi_and_limit_execute() {
    let p = setup();
    let out = run(&p, "SELECT DISTINCT c_region FROM customers ORDER BY c_region");
    assert_eq!(out.rows(), 3);
    assert_eq!(out.value(0, 0), Value::str("APAC"));

    let out = run(
        &p,
        "SELECT c_name FROM customers SEMI JOIN \
           (SELECT o_cust FROM orders WHERE o_amount > 48.0) AS big \
           ON c_id = big.o_cust \
         ORDER BY c_name LIMIT 5",
    );
    assert_eq!(out.rows(), 2, "only o_amount 49.0 passes; customers 9 and 19 have such orders");
    assert_eq!(out.value(0, 0), Value::str("cust19"));
    assert_eq!(out.value(0, 1), Value::str("cust9"));
}

#[test]
fn having_and_case_execute() {
    let p = setup();
    let out = run(
        &p,
        "SELECT o_cust, SUM(CASE WHEN o_status = 'open' THEN 1 ELSE 0 END) AS opens \
         FROM orders GROUP BY o_cust HAVING COUNT(*) > 10 ORDER BY o_cust",
    );
    assert_eq!(out.rows(), 20);
    // Every customer has 25 orders; opens is a double sum of 0/1 flags.
    assert!(matches!(out.value(1, 0), Value::Double(_)));
}

#[test]
fn errors_are_descriptive_not_panics() {
    let p = setup();
    let snap = p.read_snapshot();
    let e = snap.query("SELECT nope FROM orders").unwrap_err();
    assert!(format!("{e}").contains("nope"), "{e}");
    let e = snap.query("SELECT FROM WHERE").unwrap_err();
    assert!(format!("{e}").contains('^'), "caret diagnostic: {e}");
    let e = snap.query("SELECT c_id FROM customers, orders WHERE o_id = c_id AND o_id = o_id GROUP BY c_id, nope").unwrap_err();
    assert!(format!("{e}").contains("nope"), "{e}");
}
