//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of `parking_lot` it actually uses: [`Mutex`] and
//! [`RwLock`] with panic-free, non-poisoning `lock()`/`read()`/`write()`.
//! Both wrap the `std::sync` primitives and recover from poisoning by taking
//! the inner guard (matching parking_lot's "no poisoning" semantics closely
//! enough for this codebase, which never relies on poisoning).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
