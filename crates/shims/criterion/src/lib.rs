//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the bench-harness subset its `[[bench]]` targets use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is deliberately simple: per-sample
//! wall-clock timing with an iteration count calibrated so one sample runs
//! at least ~200 µs, reporting min / median / mean per iteration. No
//! statistical regression analysis, plots or baselines.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Default number of samples for groups created from this driver.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.default_sample_size = n.max(5);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _c: self, name, sample_size }
    }
}

/// A named collection of benchmark functions sharing settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        let mut per_iter: Vec<f64> = b.samples.clone();
        if per_iter.is_empty() {
            println!("  {}/{id}: no samples (iter never called)", self.name);
            return self;
        }
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "  {}/{id}: time/iter [min {} median {} mean {}] ({} samples)",
            self.name,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            per_iter.len()
        );
        self
    }

    /// End the group (symmetry with criterion; nothing to flush here).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, storing per-iteration costs across calibrated samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes >= 200 µs, so that
        // per-sample timing noise stays small relative to the measurement.
        let target = Duration::from_micros(200);
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t0.elapsed();
            if el >= target || batch >= 1 << 20 {
                break;
            }
            batch = if el.is_zero() {
                batch * 16
            } else {
                (batch * 2).max((target.as_nanos() as u64 / el.as_nanos().max(1) as u64) + 1)
            };
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// Define a function running a list of benchmark functions. Supports both
/// the short form `criterion_group!(benches, a, b)` and the long form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` for a bench target from its groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
