//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the subset of proptest its tests use: the [`strategy::Strategy`] trait
//! with `prop_map`, `Just`, weighted unions via [`prop_oneof!`], integer /
//! float range strategies, `any::<T>()` for primitives, a char-class regex
//! strategy for `&str` patterns like `"[a-z]{0,12}"`, `collection::{vec,
//! btree_set}`, `option::of`, `sample::select`, and the [`proptest!`] /
//! [`prop_assert!`] family of macros.
//!
//! Differences from real proptest, chosen for zero dependencies:
//! - **No shrinking.** A failing case reports the generated inputs via the
//!   panic message (each case is deterministic, so reruns reproduce it).
//! - **Deterministic seeding.** Case `i` of test `t` derives its RNG seed
//!   from FNV-1a of the test path mixed with `i`, so failures are stable
//!   across runs and machines rather than randomized per run.

/// Runner configuration and the deterministic RNG behind every strategy.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 RNG seeded from the test path + case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `path`.
        pub fn for_case(path: &str, case: u32) -> TestRng {
            // FNV-1a over the path, then mix in the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ ((case as u64) << 32 | case as u64) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus `Sized`-gated combinators, so
    /// strategies can be boxed for heterogeneous unions.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` pairs; weights must sum to > 0.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    /// Strategy for `&'static str` char-class regex patterns of the shape
    /// `[a-z]{m,n}` (single character-class, `{m}`, `{m,n}`, `+` or `*`
    /// repetition). Anything richer panics: vendor more as tests need it.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (classes, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    let (a, b) = classes[rng.below(classes.len() as u64) as usize];
                    char::from_u32(a as u32 + rng.below((b as u32 - a as u32 + 1) as u64) as u32)
                        .unwrap()
                })
                .collect()
        }
    }

    /// Parse `[a-zA-Z]{m,n}` (or `{m}`, `+`, `*`) into (char ranges, min, max).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<(char, char)>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let mut classes = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                if chars[i] > chars[i + 2] {
                    return None;
                }
                classes.push((chars[i], chars[i + 2]));
                i += 3;
            } else {
                classes.push((chars[i], chars[i]));
                i += 1;
            }
        }
        if classes.is_empty() {
            return None;
        }
        let rep = &rest[close + 1..];
        let (lo, hi) = match rep {
            "+" => (1, 16),
            "*" => (0, 16),
            "" => (1, 1),
            _ => {
                let body = rep.strip_prefix('{')?.strip_suffix('}')?;
                match body.split_once(',') {
                    Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                    None => {
                        let n = body.trim().parse().ok()?;
                        (n, n)
                    }
                }
            }
        };
        (lo <= hi).then_some((classes, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

/// `any::<T>()` for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is in `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` with up to `size` elements from `element`. As with real
    /// proptest, a narrow element domain may yield fewer elements than the
    /// drawn target (duplicates are retried a bounded number of times).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 4 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise (real
    /// proptest's default weights Some 3:1 too).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly pick one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access mirroring proptest's `prop::` module tree.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn into a
/// `#[test]` running `cfg.cases` deterministic cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Weighted choice between strategies: `prop_oneof![w1 => s1, w2 => s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assert inside a property test (no shrinking: forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property test (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property test (forwards to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Kind {
        A(i64),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(v in -100i64..100, w in 3u32..=9) {
            prop_assert!((-100..100).contains(&v));
            prop_assert!((3..=9).contains(&w));
        }

        #[test]
        fn regex_strategy_respects_class(s in "[a-z]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn collections_and_unions(
            items in prop::collection::vec(
                prop_oneof![
                    3 => any::<i64>().prop_map(Kind::A),
                    1 => prop::strategy::Just(Kind::B),
                ],
                0..40,
            ),
            picked in prop::sample::select(vec!["alpha", "beta"]),
            set in prop::collection::btree_set(0u32..50, 0..30),
        ) {
            prop_assert!(items.len() < 40);
            prop_assert!(picked == "alpha" || picked == "beta");
            prop_assert!(set.len() < 30);
            prop_assert!(set.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0i64..50, crate::arbitrary::any::<i64>());
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
