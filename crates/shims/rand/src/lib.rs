//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the slice of `rand` it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `random_range`
//! (over integer and float ranges) and `random_bool`. The generator is
//! SplitMix64 — fast, full-period for a u64 state, and statistically fine
//! for workload generation (this is not a cryptographic RNG).

use std::ops::{Range, RangeInclusive};

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value generation. The supertrait-free subset used here.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// Generic over the output type (like real rand) so untyped literal
    /// ranges infer their element type from the call site.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample_with(&mut next)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one value using `next` as the bit source.
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// Types with a uniform distribution over a bounded range. The single
/// blanket `SampleRange` impl below goes through this trait (as in real
/// rand) so type inference unifies a literal range's element type with the
/// call site's expected output type.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample(lo: Self, hi: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample(self.start, self.end, false, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample(lo, hi, true, next)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(lo: $t, hi: $t, inclusive: bool, next: &mut dyn FnMut() -> u64) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return next() as $t; // full-width range
                    }
                    lo.wrapping_add((next() % (span + 1)) as $t)
                } else {
                    assert!(lo < hi, "empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    lo.wrapping_add((next() % span) as $t)
                }
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(lo: $t, hi: $t, _inclusive: bool, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(lo < hi, "empty range");
                lo + (hi - lo) * unit_f64(next()) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = rng.random_range(-999.99f64..9999.99);
            assert!((-999.99..9999.99).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn values_look_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[rng.random_range(0usize..16)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "{buckets:?}");
        }
    }
}
