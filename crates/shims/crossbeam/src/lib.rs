//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the slice of crossbeam it uses: `crossbeam::channel`'s unbounded MPMC
//! channel with cloneable senders *and* receivers, `recv`, `recv_timeout`
//! and `try_recv`. Implemented over a mutex-protected queue plus a condvar —
//! not as fast as crossbeam's lock-free design, but semantically equivalent
//! for the log-subscriber and uploader-pool workloads here.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like crossbeam: don't require T: Debug.
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel (cloneable: MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a message. Fails when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(msg);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe closure.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or the channel closes.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .0
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_recv_across_threads() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }

        #[test]
        fn multi_consumer_each_message_once() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<i32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn disconnects_are_observable() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded();
            drop(rx2);
            assert_eq!(tx2.send(1), Err(SendError(1)));
        }
    }
}
