//! Unified table storage: one table = an in-memory rowstore level plus
//! columnstore segments with secondary indexes (paper §4).
//!
//! Concurrency model: the partition's *commit lock* serializes every
//! state-changing commit (user commits, flushes, moves, merges) and the
//! allocation of commit timestamps; the table's internal `RwLock` protects
//! the segment map for shared readers. Read snapshots are taken under the
//! commit lock, so a snapshot always observes a prefix of the commit order.
//! Row-level concurrency inside the rowstore is handled by its own MVCC +
//! row locks and does not take the commit lock until commit time.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use s2_columnstore::{SegmentMeta, SegmentReader};
use s2_common::sync::{rank, RwLock};
use s2_common::{
    BitVec, Error, Result, Row, Schema, SegmentId, TableId, TableOptions, Timestamp, TxnId, Value,
};
use s2_index::{intersect, GlobalIndex, InvertedIndex, InvertedIndexBuilder};
use s2_rowstore::RowStore;

use crate::segfile::SegmentFile;

/// A live (or recently retired) columnstore segment.
pub struct SegmentCore {
    /// Static metadata (the `deleted` field inside is unused here; current
    /// bits live in [`SegmentCore::deleted`]).
    pub meta: SegmentMeta,
    /// Current deleted bits, copy-on-write so snapshots pin a version cheaply.
    pub deleted: RwLock<Arc<BitVec>>,
    /// Timestamp at which a merge retired this segment (`u64::MAX` = live).
    /// Retired segments stay readable until no snapshot can reference them.
    pub dropped_ts: AtomicU64,
    /// Log position just past the merge record that retired this segment
    /// (`u64::MAX` = live). The data file may only be physically deleted once
    /// a rowstore snapshot at or after this position exists — otherwise log
    /// replay would re-install the segment from its flush record and fail to
    /// find the file.
    pub dropped_lp: AtomicU64,
    /// Decoded column readers.
    pub reader: SegmentReader,
    /// Per-segment inverted indexes keyed by column ordinal.
    pub inverted: HashMap<usize, Arc<InvertedIndex>>,
}

impl SegmentCore {
    /// Current deleted bits.
    pub fn deleted_bits(&self) -> Arc<BitVec> {
        Arc::clone(&self.deleted.read())
    }

    /// Live rows under the current bits.
    pub fn live_rows(&self) -> usize {
        self.meta.row_count - self.deleted.read().count_ones()
    }

    /// Whether the segment was retired by a merge.
    pub fn is_dropped(&self) -> bool {
        self.dropped_ts.load(Ordering::Acquire) != u64::MAX
    }
}

/// Secondary-index state for one table.
pub struct TableIndexes {
    /// Arity-1 global index per indexed column (shared across index defs,
    /// paper §4.1.1).
    pub column: HashMap<usize, GlobalIndex>,
    /// Tuple global index per multi-column index def: (columns, index).
    pub tuple: Vec<(Vec<usize>, GlobalIndex)>,
}

impl TableIndexes {
    fn new(options: &TableOptions) -> TableIndexes {
        let mut column = HashMap::new();
        let mut tuple = Vec::new();
        for def in &options.indexes {
            for &c in &def.columns {
                column.entry(c).or_insert_with(|| GlobalIndex::new(1));
            }
            if def.columns.len() > 1 && !tuple.iter().any(|(cols, _)| cols == &def.columns) {
                tuple.push((def.columns.clone(), GlobalIndex::new(def.columns.len())));
            }
        }
        TableIndexes { column, tuple }
    }

    /// All indexed column ordinals.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.column.keys().copied().collect();
        cols.sort_unstable();
        cols
    }
}

/// Mutable columnstore-side state of a table.
pub struct TableState {
    /// Segments by id, including recently retired ones awaiting vacuum.
    pub segments: HashMap<SegmentId, Arc<SegmentCore>>,
    /// Sorted runs of live segments (LSM structure).
    pub runs: Vec<Vec<SegmentId>>,
    /// Secondary indexes.
    pub indexes: TableIndexes,
    /// Next segment id.
    pub next_segment_id: SegmentId,
}

/// A unified table.
pub struct Table {
    /// Table id, unique within the database.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Column schema.
    pub schema: Schema,
    /// Sort key, shard key, indexes, thresholds.
    pub options: TableOptions,
    /// LSM level 0 + row-lock manager.
    pub(crate) rowstore: RwLock<RowStore>,
    /// Columnstore state.
    pub(crate) state: RwLock<TableState>,
    /// Columns of the first unique index (the rowstore key), if any.
    pub(crate) unique_cols: Option<Vec<usize>>,
    /// Synthetic rowstore key allocator for tables without a unique key.
    auto_key: AtomicU64,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: TableId, name: String, schema: Schema, options: TableOptions) -> Result<Table> {
        options.validate(&schema)?;
        let unique_cols = options.indexes.iter().find(|d| d.unique).map(|d| d.columns.clone());
        let indexes = TableIndexes::new(&options);
        Ok(Table {
            id,
            name,
            schema,
            options,
            rowstore: RwLock::new(&rank::CORE_ROWSTORE, RowStore::new()),
            state: RwLock::new(
                &rank::CORE_TABLE_STATE,
                TableState {
                    segments: HashMap::new(),
                    runs: Vec::new(),
                    indexes,
                    next_segment_id: 1,
                },
            ),
            unique_cols,
            auto_key: AtomicU64::new(1),
        })
    }

    /// The rowstore key for a row: unique-key values if the table has a
    /// unique key, otherwise a fresh synthetic key. The rowstore's primary
    /// key doubles as the lock manager (paper §4.2).
    pub fn rowstore_key(&self, row: &Row) -> Vec<Value> {
        match &self.unique_cols {
            Some(cols) => row.project(cols),
            None => vec![Value::Int(self.auto_key.fetch_add(1, Ordering::Relaxed) as i64)],
        }
    }

    /// Advance the synthetic key allocator past `seen` (recovery).
    pub(crate) fn bump_auto_key(&self, seen: i64) {
        let mut cur = self.auto_key.load(Ordering::Relaxed);
        while (cur as i64) <= seen {
            match self.auto_key.compare_exchange(
                cur,
                seen as u64 + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Approximate rowstore key count (flush trigger).
    pub fn rowstore_len(&self) -> usize {
        self.rowstore.read().key_count()
    }

    /// Build the per-segment inverted indexes for all indexed columns over
    /// `rows` (called at flush/merge while the segment is being created).
    pub(crate) fn build_inverted(
        &self,
        rows: &[Row],
        indexed_cols: &[usize],
    ) -> HashMap<usize, Arc<InvertedIndex>> {
        let mut out = HashMap::new();
        for &col in indexed_cols {
            let mut b = InvertedIndexBuilder::new();
            for (i, row) in rows.iter().enumerate() {
                b.add(row.get(col), i as u32);
            }
            out.insert(col, Arc::new(b.finish()));
        }
        out
    }

    /// Register a freshly built segment in the global indexes.
    pub(crate) fn index_segment(
        indexes: &mut TableIndexes,
        seg_id: SegmentId,
        rows: &[Row],
        inverted: &HashMap<usize, Arc<InvertedIndex>>,
    ) -> Result<()> {
        // Per-column entries: every distinct value hash -> entry offset.
        for (&col, ix) in inverted {
            if let Some(global) = indexes.column.get_mut(&col) {
                let entries: Vec<(u64, Vec<u32>)> =
                    ix.iter_entries().map(|(h, off)| (h, vec![off])).collect();
                global.add_segment(seg_id, entries);
            }
        }
        // Tuple entries: distinct tuples -> the per-column entry offsets
        // (paper §4.1.1 structure (3)).
        for (cols, global) in &mut indexes.tuple {
            let mut seen: HashSet<u64> = HashSet::new();
            let mut entries: Vec<(u64, Vec<u32>)> = Vec::new();
            'rows: for row in rows {
                let vals: Vec<&Value> = cols.iter().map(|&c| row.get(c)).collect();
                if vals.iter().any(|v| v.is_null()) {
                    continue; // NULLs are not indexed
                }
                let h = s2_common::hash::hash_values(vals.iter().copied());
                if !seen.insert(h) {
                    continue;
                }
                let mut offs = Vec::with_capacity(cols.len());
                for (&c, v) in cols.iter().zip(&vals) {
                    let ix = inverted.get(&c).ok_or_else(|| {
                        Error::Internal(format!("missing inverted index for column {c}"))
                    })?;
                    match ix.entry_offset_of(v)? {
                        Some(off) => offs.push(off),
                        None => continue 'rows, // value unindexed (shouldn't happen)
                    }
                }
                entries.push((h, offs));
            }
            global.add_segment(seg_id, entries);
        }
        Ok(())
    }

    /// Install a new sorted run of segments (a flush or merge output) under
    /// the state write lock. `items` are (metadata, file, rows-in-physical-
    /// order); metadata may carry non-zero deleted bits during recovery.
    pub(crate) fn install_run(
        &self,
        items: Vec<(SegmentMeta, &SegmentFile, &[Row])>,
    ) -> Result<Vec<Arc<SegmentCore>>> {
        self.install_run_opts(items, true)
    }

    /// [`Table::install_run`] with index registration optionally deferred.
    /// Parallel recovery passes `build_indexes: false` and registers every
    /// surviving segment once at the end via [`Table::rebuild_indexes`],
    /// instead of indexing intermediate segments that a later merge drops.
    pub(crate) fn install_run_opts(
        &self,
        items: Vec<(SegmentMeta, &SegmentFile, &[Row])>,
        build_indexes: bool,
    ) -> Result<Vec<Arc<SegmentCore>>> {
        let mut state = self.state.write();
        let mut run = Vec::with_capacity(items.len());
        let mut cores = Vec::with_capacity(items.len());
        for (meta, file, rows) in items {
            let id = meta.id;
            let deleted = Arc::new(meta.deleted.clone());
            let mut meta = meta;
            meta.deleted = BitVec::zeros(0); // bits live in SegmentCore::deleted
            let inverted: HashMap<usize, Arc<InvertedIndex>> =
                file.inverted.iter().map(|(c, ix)| (*c, Arc::new(ix.clone()))).collect();
            let core = Arc::new(SegmentCore {
                meta,
                deleted: RwLock::new(&rank::CORE_SEG_DELETED, deleted),
                dropped_ts: AtomicU64::new(u64::MAX),
                dropped_lp: AtomicU64::new(u64::MAX),
                reader: SegmentReader::new(file.data.clone()),
                inverted,
            });
            if build_indexes {
                Table::index_segment(&mut state.indexes, id, rows, &core.inverted)?;
            }
            state.segments.insert(id, Arc::clone(&core));
            state.next_segment_id = state.next_segment_id.max(id + 1);
            run.push(id);
            cores.push(core);
        }
        if !run.is_empty() {
            state.runs.push(run);
        }
        Ok(cores)
    }

    /// Rebuild the global indexes from the live segments in one pass
    /// (recovery phase 2, the oxibase-style `populate_all_indexes`). Every
    /// physical row of every live segment is registered — same as the live
    /// path, which indexes rows at install time and filters deleted rows at
    /// probe time — so probes behave identically to a serially recovered
    /// partition.
    pub(crate) fn rebuild_indexes(&self) -> Result<()> {
        let mut state = self.state.write();
        let mut fresh = TableIndexes::new(&self.options);
        let live: Vec<SegmentId> = state.runs.iter().flatten().copied().collect();
        for id in live {
            let Some(core) = state.segments.get(&id) else {
                return Err(Error::Internal(format!("run references missing segment {id}")));
            };
            let mut rows = Vec::with_capacity(core.meta.row_count);
            for ri in 0..core.meta.row_count {
                rows.push(core.reader.row(ri)?);
            }
            Table::index_segment(&mut fresh, id, &rows, &core.inverted)?;
        }
        state.indexes = fresh;
        Ok(())
    }

    /// Current live segments in run order.
    pub fn live_segments(&self) -> Vec<Arc<SegmentCore>> {
        let state = self.state.read();
        state.runs.iter().flatten().filter_map(|id| state.segments.get(id).cloned()).collect()
    }

    /// Lookup live segment row locations for `key_cols == key_vals` using the
    /// two-level index, at the *latest* state (unique checks and DML need
    /// latest, not snapshot, state). Returns (segment, matching row offsets
    /// with currently-deleted rows filtered out).
    pub fn index_probe_latest(
        &self,
        key_cols: &[usize],
        key_vals: &[Value],
    ) -> Result<Vec<(Arc<SegmentCore>, Vec<u32>)>> {
        let state = self.state.read();
        let hits = probe_state(&state, key_cols, key_vals, None)?;
        drop(state);
        let mut out = Vec::new();
        for (core, rows) in hits {
            let deleted = core.deleted_bits();
            let rows: Vec<u32> = rows.into_iter().filter(|&r| !deleted.get(r as usize)).collect();
            if !rows.is_empty() {
                out.push((core, rows));
            }
        }
        Ok(out)
    }

    /// Whether every column in `cols` is covered by a secondary index.
    pub fn columns_indexed(&self, cols: &[usize]) -> bool {
        let state = self.state.read();
        cols.iter().all(|c| state.indexes.column.contains_key(c))
    }
}

/// Probe the index state for an equality match on `key_cols = key_vals`.
/// `restrict` optionally limits results to a snapshot's segment set.
pub(crate) fn probe_state(
    state: &TableState,
    key_cols: &[usize],
    key_vals: &[Value],
    restrict: Option<&HashSet<SegmentId>>,
) -> Result<Vec<(Arc<SegmentCore>, Vec<u32>)>> {
    if key_cols.is_empty() || key_cols.len() != key_vals.len() {
        return Err(Error::InvalidArgument("bad index probe arity".into()));
    }
    if key_vals.iter().any(|v| v.is_null()) {
        return Ok(Vec::new()); // NULLs are not indexed
    }
    let is_live = |state: &TableState, seg: SegmentId| -> bool {
        match restrict {
            Some(set) => set.contains(&seg),
            None => state.segments.get(&seg).is_some_and(|core| !core.is_dropped()),
        }
    };

    // Fast path: a tuple index covering exactly these columns skips segments
    // that don't contain the full tuple (paper §4.1.1).
    if key_cols.len() > 1 {
        if let Some((cols, global)) =
            state.indexes.tuple.iter().find(|(cols, _)| cols.as_slice() == key_cols)
        {
            let h = s2_common::hash::hash_values(key_vals.iter());
            let hits = global.lookup(h, &|s| is_live(state, s));
            return resolve_hits(state, cols, key_vals, hits);
        }
    }

    // General path: probe each single-column global index and intersect
    // per-segment postings.
    let mut per_col: Vec<HashMap<SegmentId, u32>> = Vec::with_capacity(key_cols.len());
    for (&col, val) in key_cols.iter().zip(key_vals) {
        let global = state
            .indexes
            .column
            .get(&col)
            .ok_or_else(|| Error::NotFound(format!("no secondary index on column {col}")))?;
        let hits = global.lookup(val.hash64(), &|s| is_live(state, s));
        let mut map = HashMap::new();
        for (seg, offs) in hits {
            map.insert(seg, offs[0]);
        }
        per_col.push(map);
    }
    // Candidate segments must appear in every column's hit set.
    let mut candidates: Vec<SegmentId> = per_col[0].keys().copied().collect();
    candidates.retain(|s| per_col.iter().all(|m| m.contains_key(s)));
    candidates.sort_unstable();
    let mut out = Vec::new();
    for seg in candidates {
        let offs: Vec<u32> = per_col.iter().map(|m| m[&seg]).collect();
        resolve_one(state, seg, key_cols, key_vals, &offs, &mut out)?;
    }
    Ok(out)
}

fn resolve_hits(
    state: &TableState,
    cols: &[usize],
    vals: &[Value],
    hits: Vec<(SegmentId, Vec<u32>)>,
) -> Result<Vec<(Arc<SegmentCore>, Vec<u32>)>> {
    let mut out = Vec::new();
    for (seg, offs) in hits {
        resolve_one(state, seg, cols, vals, &offs, &mut out)?;
    }
    Ok(out)
}

/// Open per-column postings at the given entry offsets (verifying values to
/// resolve hash collisions) and intersect them. Deleted-row filtering is the
/// caller's job: `index_probe_latest` uses current bits, snapshot probes use
/// the snapshot's pinned bits.
fn resolve_one(
    state: &TableState,
    seg: SegmentId,
    cols: &[usize],
    vals: &[Value],
    entry_offs: &[u32],
    out: &mut Vec<(Arc<SegmentCore>, Vec<u32>)>,
) -> Result<()> {
    let Some(core) = state.segments.get(&seg) else {
        return Ok(()); // raced with vacuum; lazily-deleted reference
    };
    let mut readers = Vec::with_capacity(cols.len());
    for ((&col, val), &off) in cols.iter().zip(vals).zip(entry_offs) {
        let Some(ix) = core.inverted.get(&col) else { return Ok(()) };
        match ix.postings_at(off, val)? {
            Some(p) => readers.push(p),
            None => return Ok(()), // hash collision: value not actually present
        }
    }
    let rows = intersect(readers)?;
    if !rows.is_empty() {
        out.push((Arc::clone(core), rows));
    }
    Ok(())
}

/// A consistent per-table read view: segment set + pinned deleted bits +
/// rowstore visibility at `read_ts`.
pub struct TableSnapshot {
    /// The table (rowstore reads go through it with `read_ts`).
    pub table: Arc<Table>,
    /// Snapshot timestamp.
    pub read_ts: Timestamp,
    /// Transaction whose own uncommitted writes are visible, if any.
    pub self_txn: Option<TxnId>,
    /// Live segments at snapshot time with their pinned deleted bits.
    pub segments: Vec<SegmentSnap>,
    seg_ids: HashSet<SegmentId>,
    rowstore_rows: OnceLock<Vec<(Vec<Value>, Row)>>,
}

/// One segment as seen by a snapshot. Cloning is two `Arc` bumps, which is
/// what lets the parallel scan executor hand segments to pool workers as
/// owned (`'static`) morsels.
#[derive(Clone)]
pub struct SegmentSnap {
    /// Shared segment core (metadata + readers + inverted indexes).
    pub core: Arc<SegmentCore>,
    /// Deleted bits as of the snapshot.
    pub deleted: Arc<BitVec>,
}

impl SegmentSnap {
    /// Live rows under the snapshot's bits.
    pub fn live_rows(&self) -> usize {
        self.core.meta.row_count - self.deleted.count_ones()
    }
}

impl TableSnapshot {
    /// Capture a snapshot. Must be called under the partition commit lock so
    /// `read_ts` and the segment state agree.
    pub(crate) fn capture(
        table: &Arc<Table>,
        read_ts: Timestamp,
        self_txn: Option<TxnId>,
    ) -> TableSnapshot {
        let state = table.state.read();
        let mut segments = Vec::new();
        let mut seg_ids = HashSet::new();
        for id in state.runs.iter().flatten() {
            if let Some(core) = state.segments.get(id) {
                seg_ids.insert(*id);
                segments.push(SegmentSnap { core: Arc::clone(core), deleted: core.deleted_bits() });
            }
        }
        TableSnapshot {
            table: Arc::clone(table),
            read_ts,
            self_txn,
            segments,
            seg_ids,
            rowstore_rows: OnceLock::new(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.table.schema
    }

    /// Rowstore rows visible to this snapshot, materialized once.
    pub fn rowstore_rows(&self) -> &[(Vec<Value>, Row)] {
        self.rowstore_rows.get_or_init(|| {
            let mut out = Vec::new();
            self.table.rowstore.read().for_each_visible(self.read_ts, self.self_txn, |k, r| {
                out.push((k.to_vec(), r.clone()));
            });
            out
        })
    }

    /// Total live rows visible (rowstore + segments).
    pub fn live_row_count(&self) -> usize {
        self.rowstore_rows().len() + self.segments.iter().map(SegmentSnap::live_rows).sum::<usize>()
    }

    /// Equality index probe within this snapshot: segment hits plus matching
    /// rowstore rows. Returns `None` when some probed column is not indexed
    /// (caller falls back to a scan).
    pub fn index_probe(
        &self,
        key_cols: &[usize],
        key_vals: &[Value],
    ) -> Result<Option<IndexProbe>> {
        {
            let state = self.table.state.read();
            if !key_cols.iter().all(|c| state.indexes.column.contains_key(c)) {
                return Ok(None);
            }
        }
        let state = self.table.state.read();
        let seg_hits = probe_state(&state, key_cols, key_vals, Some(&self.seg_ids))?;
        drop(state);
        // Apply the *snapshot's* pinned deleted bits: a row deleted after the
        // snapshot was taken is still visible here.
        let mut segments = Vec::new();
        for (core, rows) in seg_hits {
            let snap_deleted = self
                .segments
                .iter()
                .find(|s| s.core.meta.id == core.meta.id)
                .map(|s| Arc::clone(&s.deleted));
            let Some(deleted) = snap_deleted else { continue };
            let rows: Vec<u32> = rows.into_iter().filter(|&r| !deleted.get(r as usize)).collect();
            if !rows.is_empty() {
                segments.push((core, rows));
            }
        }
        let rowstore: Vec<(Vec<Value>, Row)> = self
            .rowstore_rows()
            .iter()
            .filter(|(_, row)| key_cols.iter().zip(key_vals).all(|(&c, v)| row.get(c) == v))
            .cloned()
            .collect();
        Ok(Some(IndexProbe { segments, rowstore }))
    }
}

// The parallel scan executor ships snapshots and segments across threads;
// these compile-time assertions are the audit that everything a reader can
// reach is `Send + Sync` (interior mutability is confined to locks and
// atomics). A non-thread-safe field added to any of these types fails the
// build here rather than at a distant pool call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SegmentCore>();
    assert_send_sync::<SegmentSnap>();
    assert_send_sync::<TableSnapshot>();
    assert_send_sync::<IndexProbe>();
    assert_send_sync::<Table>();
};

/// Result of a snapshot index probe.
pub struct IndexProbe {
    /// Matching live segment rows.
    pub segments: Vec<(Arc<SegmentCore>, Vec<u32>)>,
    /// Matching rowstore rows (key, row).
    pub rowstore: Vec<(Vec<Value>, Row)>,
}

impl IndexProbe {
    /// Total matching rows.
    pub fn row_count(&self) -> usize {
        self.rowstore.len() + self.segments.iter().map(|(_, r)| r.len()).sum::<usize>()
    }

    /// Materialize every matching row.
    pub fn materialize(&self) -> Result<Vec<Row>> {
        let mut out: Vec<Row> = self.rowstore.iter().map(|(_, r)| r.clone()).collect();
        for (core, rows) in &self.segments {
            for &r in rows {
                out.push(core.reader.row(r as usize)?);
            }
        }
        Ok(out)
    }
}
