//! The partition: tables + write-ahead log + commit protocol + background
//! maintenance (flush, merge, vacuum) + snapshots + recovery.
//!
//! A partition is the unit of durability and replication in S2DB (paper §2,
//! §3): it owns one log, one commit-timestamp sequence, and the tables'
//! partition-local data. Every state-changing commit (user transaction,
//! flush, move, merge) runs under the partition's commit lock, which also
//! orders read-snapshot acquisition — giving partition-local snapshot
//! isolation (paper §2.1.2).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use s2_columnstore::{merge_segments, MergePolicy, SegmentMeta, SegmentReader};
use s2_common::io::{ByteReader, ByteWriter};
use s2_common::sync::{rank, Mutex, RwLock};
use s2_common::{
    Error, LogPosition, Result, Row, Schema, SegmentId, TableId, TableOptions, Timestamp, TxnId,
    Value,
};
use s2_wal::{GroupCommit, Log, RecordIter, Snapshot};

use crate::record::{self, EngineRecord, RowOp};
use crate::segfile::{file_name, DataFileStore, SegmentFile};
use crate::table::{SegmentCore, Table, TableSnapshot};

/// Snapshot blob magic ("S2PS").
const PARTITION_SNAPSHOT_MAGIC: u32 = 0x5350_3253;

/// Whether [`Partition::recover`] replays the WAL in parallel
/// (`S2_PARALLEL_RECOVERY`, default on; `0` pins the serial path). Read on
/// every recovery — restarts are rare and tests flip it at runtime.
pub fn parallel_recovery_enabled() -> bool {
    std::env::var("S2_PARALLEL_RECOVERY").map_or(true, |v| v != "0")
}

/// Per-table state threaded through one parallel-replay worker: `Move`
/// tombstones batched for a single copy-on-write install per surviving
/// segment at queue end.
#[derive(Default)]
struct ReplayCtx {
    pending_deletes: HashMap<SegmentId, Vec<u32>>,
}

/// A partition of a database.
pub struct Partition {
    /// Partition name (also the data-file key prefix), e.g. `db0_p3`.
    pub name: String,
    /// The write-ahead log.
    pub log: Arc<Log>,
    /// Data-file storage (local cache + blob in the cluster layer).
    pub file_store: Arc<dyn DataFileStore>,
    tables: RwLock<HashMap<TableId, Arc<Table>>>,
    table_names: RwLock<HashMap<String, TableId>>,
    next_table_id: AtomicU64,
    /// Serializes commits and snapshot acquisition.
    commit_lock: Mutex<()>,
    /// Group-commit queue: commit redo records are submitted here under the
    /// commit lock and appended+synced in batches by a leader outside it.
    group: GroupCommit,
    commit_ts: AtomicU64,
    next_txn: AtomicU64,
    /// Active read snapshots: read_ts -> count (pins GC horizons).
    pinned: Mutex<BTreeMap<Timestamp, usize>>,
    merge_policy: MergePolicy,
    /// Log position of the newest rowstore snapshot: recovery replays only
    /// records at or after it, which bounds which data files replay can need.
    last_snapshot_lp: AtomicU64,
}

impl Partition {
    /// Create an empty partition over `log` and `file_store`.
    pub fn new(
        name: impl Into<String>,
        log: Arc<Log>,
        file_store: Arc<dyn DataFileStore>,
    ) -> Arc<Partition> {
        Arc::new(Partition {
            name: name.into(),
            log,
            file_store,
            tables: RwLock::new(&rank::CORE_TABLES, HashMap::new()),
            table_names: RwLock::new(&rank::CORE_TABLES, HashMap::new()),
            next_table_id: AtomicU64::new(1),
            commit_lock: Mutex::new(&rank::CORE_COMMIT, ()),
            group: GroupCommit::new(),
            commit_ts: AtomicU64::new(0),
            next_txn: AtomicU64::new(1),
            pinned: Mutex::new(&rank::CORE_PINNED, BTreeMap::new()),
            merge_policy: MergePolicy::default(),
            last_snapshot_lp: AtomicU64::new(0),
        })
    }

    /// Last committed timestamp.
    pub fn commit_ts(&self) -> Timestamp {
        self.commit_ts.load(Ordering::Acquire)
    }

    /// Whether commits go through the group-commit pipeline
    /// (`S2_GROUP_COMMIT`, default on).
    pub fn group_commit_enabled(&self) -> bool {
        self.group.enabled()
    }

    /// Toggle the group-commit pipeline at runtime (tests, benches, sim).
    /// Serialized against commits; any queued records are appended first so
    /// no submission is stranded by the switch.
    pub fn set_group_commit(&self, on: bool) {
        let _g = self.commit_lock.lock();
        self.group.flush_queued(&self.log);
        self.group.set_enabled(on);
    }

    /// Set the leader flush window: how long a group-commit leader waits for
    /// its batch to grow before appending (0 = append immediately).
    pub fn set_group_flush_window_us(&self, us: u64) {
        self.group.set_flush_window_us(us);
    }

    /// Allocate a transaction id.
    pub(crate) fn alloc_txn(&self) -> TxnId {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// Create a table. Returns its id. Logged as DDL.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        options: TableOptions,
    ) -> Result<TableId> {
        let name = name.into();
        let _g = self.commit_lock.lock();
        // Direct appenders drain the group-commit queue first: we hold the
        // commit lock (no submission can race), and every queued commit
        // record must precede ours in the stream so replay order matches
        // commit order.
        self.group.flush_queued(&self.log);
        if self.table_names.read().contains_key(&name) {
            return Err(Error::InvalidArgument(format!("table {name:?} already exists")));
        }
        let id = self.next_table_id.fetch_add(1, Ordering::Relaxed) as TableId;
        let table = Arc::new(Table::new(id, name.clone(), schema.clone(), options.clone())?);
        let rec = EngineRecord::CreateTable { table: id, name: name.clone(), schema, options };
        self.log.append(rec.kind(), &rec.encode());
        self.tables.write().insert(id, table);
        self.table_names.write().insert(name, id);
        Ok(id)
    }

    /// Look up a table by id.
    pub fn table(&self, id: TableId) -> Result<Arc<Table>> {
        self.tables.read().get(&id).cloned().ok_or_else(|| Error::NotFound(format!("table {id}")))
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<Arc<Table>> {
        let id = *self
            .table_names
            .read()
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("table {name:?}")))?;
        self.table(id)
    }

    /// All table ids.
    pub fn table_ids(&self) -> Vec<TableId> {
        let mut ids: Vec<TableId> = self.tables.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    // ---- snapshots ------------------------------------------------------

    fn pin(&self, ts: Timestamp) {
        *self.pinned.lock().entry(ts).or_insert(0) += 1;
    }

    fn unpin(&self, ts: Timestamp) {
        let mut p = self.pinned.lock();
        if let Some(c) = p.get_mut(&ts) {
            *c -= 1;
            if *c == 0 {
                p.remove(&ts);
            }
        }
    }

    fn oldest_pinned(&self) -> Option<Timestamp> {
        self.pinned.lock().keys().next().copied()
    }

    /// Take a consistent read snapshot of every table.
    pub fn read_snapshot(self: &Arc<Self>) -> PartitionSnapshot {
        self.snapshot_for(None)
    }

    /// Read snapshot that additionally sees `self_txn`'s uncommitted writes.
    pub fn snapshot_for(self: &Arc<Self>, self_txn: Option<TxnId>) -> PartitionSnapshot {
        let _g = self.commit_lock.lock();
        let read_ts = self.commit_ts();
        let tables = self.tables.read();
        let snaps: HashMap<TableId, Arc<TableSnapshot>> = tables
            .iter()
            .map(|(id, t)| (*id, Arc::new(TableSnapshot::capture(t, read_ts, self_txn))))
            .collect();
        drop(tables);
        self.pin(read_ts);
        PartitionSnapshot { read_ts, tables: snaps, partition: Arc::clone(self) }
    }

    // ---- commit protocol -------------------------------------------------

    /// Commit a user transaction's buffered writes: resolve rowstore versions
    /// at a fresh timestamp and log the redo record. Returns (commit
    /// timestamp, log position — the position replication must ack for the
    /// commit to be durable, paper §3; with group commit on, the batch end,
    /// already synced to the local log).
    ///
    /// With group commit on, the commit lock covers only timestamp resolution
    /// and queueing the redo record; the append + fsync happen in the
    /// group-commit leader with the lock released, so the next commit's
    /// timestamp resolves while this batch is being made durable.
    pub(crate) fn commit_txn(
        &self,
        txn: TxnId,
        ops: Vec<RowOp>,
        keys_by_table: &HashMap<TableId, Vec<Vec<Value>>>,
    ) -> Result<(Timestamp, LogPosition)> {
        // Timed from before the lock to local durability: commit latency is
        // the full enqueue->durable span the committer experiences, including
        // waiting behind the group ahead of us and the batch fsync. (It used
        // to stop before any sync, under-reporting by the whole fsync cost.)
        let timer = s2_obs::histogram!("wal.commit.latency_us").start_timer();
        let mut ticket = None;
        let (ts, mut end_lp) = {
            let _g = self.commit_lock.lock();
            let ts = self.commit_ts() + 1;
            for (tid, keys) in keys_by_table {
                let table = self.table(*tid)?;
                table.rowstore.read().commit(txn, ts, keys);
            }
            s2_obs::counter!("core.txn.commit_ops").add(ops.len() as u64);
            let rec = EngineRecord::Commit { commit_ts: ts, ops };
            // Crash here = power loss after version resolution but before the
            // redo record exists: the commit was never acknowledged and must
            // be invisible after recovery.
            s2_common::fault::crash_point("core.commit.log");
            let end_lp = if self.group.enabled() {
                ticket = Some(self.group.submit(rec.kind(), rec.encode()));
                0
            } else {
                let (_, end_lp) = self.log.append(rec.kind(), &rec.encode());
                end_lp
            };
            self.commit_ts.store(ts, Ordering::Release);
            s2_obs::counter!("core.txn.commits").inc();
            (ts, end_lp)
        };
        if let Some(t) = ticket {
            // Park outside the commit lock until a leader has appended and
            // fsynced the batch containing our record. The returned position
            // is the batch end — one replication ack there covers every
            // commit in the batch.
            end_lp = self.group.wait_durable(&self.log, t)?;
        }
        timer.stop();
        Ok((ts, end_lp))
    }

    /// Roll back a transaction's buffered writes (no log record: redo-only).
    pub(crate) fn rollback_txn(
        &self,
        txn: TxnId,
        keys_by_table: &HashMap<TableId, Vec<Vec<Value>>>,
    ) {
        s2_obs::counter!("core.txn.rollbacks").inc();
        for (tid, keys) in keys_by_table {
            if let Ok(table) = self.table(*tid) {
                table.rowstore.read().rollback(txn, keys);
            }
        }
    }

    /// Execute a move transaction (paper §4.2): copy the target segment rows
    /// into the rowstore (committed immediately, locks kept for `user_txn`)
    /// and set their deleted bits. Returns the rowstore keys + rows created.
    ///
    /// Runs entirely under the commit lock, so it cannot race merges — the
    /// paper's reordering of move vs. merge transactions collapses to
    /// serialization here, preserving the observable behaviour (moves never
    /// block on user transactions, only on other short system transactions).
    pub(crate) fn move_rows(
        &self,
        user_txn: TxnId,
        table: &Arc<Table>,
        targets: &[(Arc<SegmentCore>, u32)],
    ) -> Result<Vec<(Vec<Value>, Row)>> {
        let _g = self.commit_lock.lock();
        // Queued commit records must precede the Move record in the stream.
        self.group.flush_queued(&self.log);
        let ts = self.commit_ts() + 1;
        let mut inserts: Vec<(Vec<Value>, Row)> = Vec::with_capacity(targets.len());
        let mut bits_by_seg: HashMap<SegmentId, Vec<u32>> = HashMap::new();
        let rs = table.rowstore.read();
        for (core, off) in targets {
            // Re-validate under the lock: the segment may have been merged
            // away or the row deleted since the caller located it.
            let (core, off) = if core.is_dropped() || core.deleted.read().get(*off as usize) {
                match self.relocate(table, core, *off)? {
                    Some(loc) => loc,
                    None => continue, // row no longer exists anywhere: skip
                }
            } else {
                (Arc::clone(core), *off)
            };
            let row = core.reader.row(off as usize)?;
            let key = table.rowstore_key(&row);
            rs.write(user_txn, &key, Some(row.clone()))?;
            bits_by_seg.entry(core.meta.id).or_default().push(off);
            inserts.push((key, row));
        }
        if inserts.is_empty() {
            return Ok(inserts);
        }
        // Commit the moved copies immediately, keeping locks for the user.
        let keys: Vec<Vec<Value>> = inserts.iter().map(|(k, _)| k.clone()).collect();
        rs.commit_keep_locked(user_txn, ts, &keys);
        drop(rs);
        // Install new deleted bit vectors (copy-on-write).
        let state = table.state.read();
        for (seg, offs) in &bits_by_seg {
            if let Some(core) = state.segments.get(seg) {
                let mut bits = (**core.deleted.read()).clone();
                for &o in offs {
                    bits.set(o as usize);
                }
                *core.deleted.write() = Arc::new(bits);
            }
        }
        drop(state);
        s2_obs::counter!("core.move.txns").inc();
        s2_obs::counter!("core.move.rows").add(inserts.len() as u64);
        // Canonical segment order keeps the record bytes (and therefore log
        // positions) independent of hash-map iteration order — replayable
        // runs depend on the log stream being a pure function of the workload.
        let mut deleted: Vec<(SegmentId, Vec<u32>)> = bits_by_seg.into_iter().collect();
        deleted.sort_by_key(|(seg, _)| *seg);
        let rec = EngineRecord::Move {
            table: table.id,
            commit_ts: ts,
            inserts: inserts.clone(),
            deleted,
        };
        self.log.append(rec.kind(), &rec.encode());
        self.commit_ts.store(ts, Ordering::Release);
        Ok(inserts)
    }

    /// Find the current location of the row that used to live at
    /// (`stale_core`, `off`): the paper's "extra scanning pass on newly
    /// created segments ... to find the latest versions of the locked rows".
    fn relocate(
        &self,
        table: &Arc<Table>,
        stale_core: &Arc<SegmentCore>,
        off: u32,
    ) -> Result<Option<(Arc<SegmentCore>, u32)>> {
        let row = stale_core.reader.row(off as usize)?;
        // Prefer the unique index when one exists.
        if let Some(cols) = &table.unique_cols {
            let key = row.project(cols);
            let hits = table.index_probe_latest(cols, &key)?;
            for (core, rows) in hits {
                if let Some(&r) = rows.first() {
                    return Ok(Some((core, r)));
                }
            }
            return Ok(None);
        }
        // No unique key: scan live segments for an identical, live row.
        for core in table.live_segments() {
            let deleted = core.deleted_bits();
            for ri in 0..core.meta.row_count {
                if deleted.get(ri) {
                    continue;
                }
                if core.reader.row(ri)? == row {
                    return Ok(Some((core, ri as u32)));
                }
            }
        }
        Ok(None)
    }

    // ---- flush -----------------------------------------------------------

    /// Convert accumulated rowstore rows into columnstore segment(s)
    /// (paper §2.1.2's background flusher; figure 1(b)). With `force` the
    /// flush runs even below the configured threshold. Returns segments
    /// created.
    pub fn flush_table(&self, table_id: TableId, force: bool) -> Result<usize> {
        let table = self.table(table_id)?;
        let _g = self.commit_lock.lock();
        // Queued commit records must precede the Flush record: the Flush
        // removes rowstore keys those commits wrote, so replaying it before
        // them would resurrect the rows.
        self.group.flush_queued(&self.log);
        if !force && table.rowstore_len() < table.options.flush_threshold_rows {
            return Ok(0);
        }
        let timer = s2_obs::histogram!("core.flush.latency_us").start_timer();
        let flush_txn = self.alloc_txn();
        let rs = table.rowstore.read();
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut rows: Vec<Row> = Vec::new();
        rs.for_each_latest_committed(|key, row, owner| {
            // Skip rows a writer currently holds; they'll flush next time.
            if owner == 0 && rs.try_lock_key(flush_txn, key) {
                keys.push(key.to_vec());
                rows.push(row.clone());
            }
            true
        });
        if rows.is_empty() {
            drop(rs);
            timer.cancel();
            return Ok(0);
        }

        // Sort once so the physical segment order and the inverted indexes
        // agree (build_segment's sort is then a stable no-op).
        let sort_key = table.options.sort_key.clone();
        if !sort_key.is_empty() {
            rows.sort_by(|a, b| {
                sort_key
                    .iter()
                    .map(|&c| a.get(c).total_cmp(b.get(c)))
                    .find(|o| *o != std::cmp::Ordering::Equal)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }

        let indexed_cols: Vec<usize> = {
            let state = table.state.read();
            state.indexes.indexed_columns()
        };
        let file_id = self.log.end_lp();
        let ts = self.commit_ts() + 1;

        // Build one sorted run (possibly several segments) and its files.
        let mut built: Vec<(SegmentMeta, SegmentFile, Vec<Row>)> = Vec::new();
        {
            let mut state = table.state.write();
            for chunk in rows.chunks(table.options.segment_rows) {
                let id = state.next_segment_id;
                state.next_segment_id += 1;
                let (mut meta, data) =
                    s2_columnstore::build_segment(id, chunk.to_vec(), &table.schema, &sort_key)?;
                meta.file_id = file_id;
                let inverted_map = table.build_inverted(chunk, &indexed_cols);
                let inverted: Vec<(usize, s2_index::InvertedIndex)> =
                    inverted_map.iter().map(|(c, ix)| (*c, (**ix).clone())).collect();
                built.push((meta, SegmentFile { data, inverted }, chunk.to_vec()));
            }
        }
        // Crash here = power loss before any flush effect reached disk; the
        // rowstore rows are still the only copy and recovery must keep them.
        s2_common::fault::crash_point("core.flush.write_files");
        for (meta, file, _) in &built {
            self.file_store
                .write_file(&file_name(&self.name, file_id, meta.id), Arc::new(file.encode()))?;
        }

        // Atomic state change: delete flushed keys from the rowstore and
        // install the new run, all at timestamp `ts`.
        for key in &keys {
            rs.write(flush_txn, key, None)?; // lock already held by flush_txn
        }
        rs.commit(flush_txn, ts, &keys);
        drop(rs);

        let n = built.len();
        let items: Vec<(SegmentMeta, &SegmentFile, &[Row])> =
            built.iter().map(|(m, f, r)| (m.clone(), f, r.as_slice())).collect();
        table.install_run(items)?;

        // Log: ONE Flush record covering every segment plus the key removals.
        // A single frame is all-or-nothing under torn-tail truncation; with
        // one record per segment, a crash could persist the removals with
        // only a prefix of the segments and lose the rest of the rows.
        let metas: Vec<SegmentMeta> = built
            .iter()
            .map(|(m, _, _)| {
                let mut m = m.clone();
                m.deleted = s2_common::BitVec::zeros(m.row_count);
                m
            })
            .collect();
        let rec = EngineRecord::Flush {
            table: table.id,
            commit_ts: ts,
            metas,
            removed_keys: keys.clone(),
        };
        // Crash here = files written and state installed but record unlogged:
        // recovery must come back with the rows still in the rowstore (the
        // orphaned data files are unreferenced and harmless).
        s2_common::fault::crash_point("core.flush.log");
        self.log.append(rec.kind(), &rec.encode());
        self.commit_ts.store(ts, Ordering::Release);
        s2_obs::counter!("core.flush.segments").add(n as u64);
        s2_obs::counter!("core.flush.rows").add(keys.len() as u64);
        timer.stop();
        Ok(n)
    }

    // ---- merge -----------------------------------------------------------

    /// Run one background merge step if the LSM has too many sorted runs
    /// (paper §2.1.2). Returns true if a merge happened.
    pub fn merge_table(&self, table_id: TableId) -> Result<bool> {
        let table = self.table(table_id)?;
        let _g = self.commit_lock.lock();
        // Queued commit records must precede the Merge record in the stream.
        self.group.flush_queued(&self.log);

        let (input_ids, inputs, mut next_id) = {
            let state = table.state.read();
            let run_sizes: Vec<usize> = state
                .runs
                .iter()
                .map(|run| {
                    run.iter().filter_map(|id| state.segments.get(id)).map(|c| c.live_rows()).sum()
                })
                .collect();
            let Some(plan) = self.merge_policy.plan(&run_sizes) else {
                return Ok(false);
            };
            let mut ids = Vec::new();
            for &ri in &plan {
                ids.extend(state.runs[ri].iter().copied());
            }
            let inputs: Vec<Arc<SegmentCore>> =
                ids.iter().filter_map(|id| state.segments.get(id).cloned()).collect();
            (ids, inputs, state.next_segment_id)
        };
        if inputs.is_empty() {
            return Ok(false);
        }
        let timer = s2_obs::histogram!("core.merge.latency_us").start_timer();
        s2_obs::counter!("core.merge.segments_in").add(inputs.len() as u64);

        // Merge with each input's *current* deleted bits (no move can race:
        // we hold the commit lock).
        let metas: Vec<SegmentMeta> = inputs
            .iter()
            .map(|c| {
                let mut m = c.meta.clone();
                m.deleted = (*c.deleted_bits()).clone();
                m
            })
            .collect();
        let pairs: Vec<(&SegmentMeta, &SegmentReader)> =
            metas.iter().zip(inputs.iter()).map(|(m, c)| (m, &c.reader)).collect();
        let sort_key = table.options.sort_key.clone();
        let merged = merge_segments(
            &pairs,
            &table.schema,
            &sort_key,
            &mut next_id,
            table.options.segment_rows,
        )?;

        let indexed_cols: Vec<usize> = {
            let state = table.state.read();
            state.indexes.indexed_columns()
        };
        let file_id = self.log.end_lp();
        let ts = self.commit_ts() + 1;

        let mut built: Vec<(SegmentMeta, SegmentFile, Vec<Row>)> = Vec::new();
        for m in merged {
            let mut meta = m.meta;
            meta.file_id = file_id;
            let inverted_map = table.build_inverted(&m.rows, &indexed_cols);
            let inverted: Vec<(usize, s2_index::InvertedIndex)> =
                inverted_map.iter().map(|(c, ix)| (*c, (**ix).clone())).collect();
            built.push((meta, SegmentFile { data: m.data, inverted }, m.rows));
        }
        // A failed write aborts the merge before any state changed (inputs
        // are only retired below); a crash discards the engine outright.
        s2_common::fault::failpoint("core.merge.write_files")?;
        for (meta, file, _) in &built {
            self.file_store
                .write_file(&file_name(&self.name, file_id, meta.id), Arc::new(file.encode()))?;
        }

        // State change: retire inputs, install the output run.
        {
            let mut state = table.state.write();
            state.next_segment_id = state.next_segment_id.max(next_id);
            for id in &input_ids {
                if let Some(core) = state.segments.get(id) {
                    core.dropped_ts.store(ts, Ordering::Release);
                }
            }
            state.runs.retain(|run| run.iter().all(|id| !input_ids.contains(id)));
        }
        let items: Vec<(SegmentMeta, &SegmentFile, &[Row])> =
            built.iter().map(|(m, f, r)| (m.clone(), f, r.as_slice())).collect();
        table.install_run(items)?;

        let out_metas: Vec<SegmentMeta> = built
            .iter()
            .map(|(m, _, _)| {
                let mut m = m.clone();
                m.deleted = s2_common::BitVec::zeros(m.row_count);
                m
            })
            .collect();
        let rec = EngineRecord::Merge {
            table: table.id,
            commit_ts: ts,
            dropped: input_ids.clone(),
            metas: out_metas,
        };
        // Crash here = merge applied in memory but unlogged: recovery replays
        // the pre-merge structure, which is content-equivalent (merges are
        // content-preserving reorganizations).
        s2_common::fault::crash_point("core.merge.log");
        let (_, merge_end_lp) = self.log.append(rec.kind(), &rec.encode());
        {
            let state = table.state.read();
            for id in &input_ids {
                if let Some(core) = state.segments.get(id) {
                    core.dropped_lp.store(merge_end_lp, Ordering::Release);
                }
            }
        }
        self.commit_ts.store(ts, Ordering::Release);
        s2_obs::counter!("core.merge.runs").inc();
        timer.stop();
        Ok(true)
    }

    // ---- vacuum ----------------------------------------------------------

    /// Reclaim MVCC versions, retired segments and stale global-index levels
    /// that no active snapshot can observe. Returns (segments reclaimed,
    /// rowstore versions freed).
    pub fn vacuum(&self) -> Result<(usize, usize)> {
        let horizon = self.oldest_pinned().unwrap_or_else(|| self.commit_ts());
        let mut segs_reclaimed = 0;
        let mut versions_freed = 0;
        let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        for table in tables {
            // Rowstore GC: anything below the horizon that is superseded.
            {
                let mut rs = table.rowstore.write();
                let (_, freed) = rs.gc(horizon.saturating_sub(0));
                versions_freed += freed;
            }
            // Segment GC: retired segments no snapshot can still reference.
            let snapshot_lp = self.last_snapshot_lp.load(Ordering::Acquire);
            let mut dead: Vec<(SegmentId, LogPosition)> = Vec::new();
            {
                let mut state = table.state.write();
                let ids: Vec<SegmentId> = state.segments.keys().copied().collect();
                for id in ids {
                    let core = &state.segments[&id];
                    let dropped = core.dropped_ts.load(Ordering::Acquire);
                    if dropped != u64::MAX && dropped <= horizon {
                        // The in-memory segment can always be reclaimed; the
                        // data file only once a snapshot at/after the merge
                        // exists (log replay from that snapshot no longer
                        // revisits this segment's flush record).
                        if core.dropped_lp.load(Ordering::Acquire) <= snapshot_lp {
                            dead.push((id, core.meta.file_id));
                        }
                        state.segments.remove(&id);
                        segs_reclaimed += 1;
                    }
                }
                // Lazy-deletion maintenance on the global indexes.
                let live: std::collections::HashSet<SegmentId> = state
                    .segments
                    .iter()
                    .filter(|(_, c)| !c.is_dropped())
                    .map(|(id, _)| *id)
                    .collect();
                let is_live = move |s: SegmentId| live.contains(&s);
                for g in state.indexes.column.values_mut() {
                    g.maintain(&is_live);
                }
                for (_, g) in &mut state.indexes.tuple {
                    g.maintain(&is_live);
                }
            }
            for (id, file_id) in dead {
                self.file_store.delete_file(&file_name(&self.name, file_id, id))?;
            }
        }
        s2_obs::counter!("core.vacuum.segments_reclaimed").add(segs_reclaimed as u64);
        s2_obs::counter!("core.vacuum.versions_freed").add(versions_freed as u64);
        Ok((segs_reclaimed, versions_freed))
    }

    /// Run one full maintenance pass: flush + merge every table, then vacuum.
    pub fn maintenance_pass(&self) -> Result<()> {
        for id in self.table_ids() {
            self.flush_table(id, false)?;
            while self.merge_table(id)? {}
        }
        self.vacuum()?;
        Ok(())
    }

    // ---- snapshots (durability) & recovery --------------------------------

    /// Serialize the partition state as a rowstore snapshot at the current
    /// log position (paper §2.1.1, §3.1). Only masters take snapshots; with
    /// separated storage they're written directly to blob storage.
    /// Note: serializing the snapshot does NOT advance the vacuum horizon
    /// (`last_snapshot_lp`) — the caller must persist the snapshot (and sync
    /// the log up to its position) first, then call
    /// [`Partition::mark_snapshot_durable`]. Advancing the horizon before the
    /// blob put succeeds would let vacuum delete data files that recovery
    /// still needs if the put fails or the node crashes mid-upload.
    pub fn write_snapshot(&self) -> Result<Snapshot> {
        let _g = self.commit_lock.lock();
        // The snapshot position must cover every committed record: drain any
        // queued commit records so `end_lp` includes them.
        self.group.flush_queued(&self.log);
        let lp = self.log.end_lp();
        let mut w = ByteWriter::new();
        w.put_u32(PARTITION_SNAPSHOT_MAGIC);
        w.put_u64(self.commit_ts());
        w.put_u64(self.next_table_id.load(Ordering::Relaxed));
        let tables = self.tables.read();
        let mut ids: Vec<TableId> = tables.keys().copied().collect();
        ids.sort_unstable();
        w.put_varint(ids.len() as u64);
        for id in ids {
            let t = &tables[&id];
            w.put_u32(t.id);
            w.put_str(&t.name);
            record::put_schema(&mut w, &t.schema);
            record::put_options(&mut w, &t.options);
            // Rowstore: latest committed rows.
            let mut pairs: Vec<(Vec<Value>, Row)> = Vec::new();
            t.rowstore.read().for_each_latest_committed(|k, row, _| {
                pairs.push((k.to_vec(), row.clone()));
                true
            });
            w.put_varint(pairs.len() as u64);
            for (k, row) in &pairs {
                record::put_key(&mut w, k);
                record::put_row(&mut w, row);
            }
            // Segments: live ones only, with current deleted bits, run by run.
            let state = t.state.read();
            w.put_u64(state.next_segment_id);
            w.put_varint(state.runs.len() as u64);
            for run in &state.runs {
                let metas: Vec<SegmentMeta> = run
                    .iter()
                    .filter_map(|sid| state.segments.get(sid))
                    .map(|c| {
                        let mut m = c.meta.clone();
                        m.deleted = (*c.deleted_bits()).clone();
                        m
                    })
                    .collect();
                w.put_varint(metas.len() as u64);
                for m in &metas {
                    m.write_to(&mut w);
                }
            }
        }
        Ok(Snapshot { lp, data: w.into_bytes() })
    }

    /// Record that a snapshot at `lp` is durably stored (uploaded to blob
    /// storage, with the log synced past `lp`). Monotonic. Vacuum uses this
    /// as its data-file retention bound: replay from the newest durable
    /// snapshot never revisits records below it.
    pub fn mark_snapshot_durable(&self, lp: LogPosition) {
        self.last_snapshot_lp.fetch_max(lp, Ordering::AcqRel);
    }

    /// Restore partition state from a snapshot blob. `build_indexes: false`
    /// defers index registration to a post-replay [`Table::rebuild_indexes`]
    /// pass (parallel recovery).
    fn load_snapshot_state(&self, data: &[u8], build_indexes: bool) -> Result<()> {
        let mut r = ByteReader::new(data);
        let magic = r.get_u32()?;
        if magic != PARTITION_SNAPSHOT_MAGIC {
            return Err(Error::Corruption(format!("bad partition snapshot magic {magic:#x}")));
        }
        let commit_ts = r.get_u64()?;
        let next_table_id = r.get_u64()?;
        self.commit_ts.store(commit_ts, Ordering::Release);
        self.next_table_id.store(next_table_id, Ordering::Relaxed);
        let n_tables = r.get_varint()? as usize;
        for _ in 0..n_tables {
            let id = r.get_u32()?;
            let name = r.get_str()?.to_string();
            let schema = record::get_schema(&mut r)?;
            let options = record::get_options(&mut r)?;
            let table = Arc::new(Table::new(id, name.clone(), schema, options)?);
            // Rowstore rows, committed at the snapshot timestamp.
            let n_rows = r.get_varint()? as usize;
            let txn = self.alloc_txn();
            let mut keys = Vec::with_capacity(n_rows);
            {
                let rs = table.rowstore.read();
                for _ in 0..n_rows {
                    let key = record::get_key(&mut r)?;
                    let row = record::get_row(&mut r)?;
                    self.note_auto_key(&table, &key);
                    rs.write(txn, &key, Some(row))?;
                    keys.push(key);
                }
                rs.commit(txn, commit_ts, &keys);
            }
            // Segments.
            let next_segment_id = r.get_u64()?;
            let n_runs = r.get_varint()? as usize;
            for _ in 0..n_runs {
                let n_segs = r.get_varint()? as usize;
                let mut items_owned: Vec<(SegmentMeta, SegmentFile, Vec<Row>)> = Vec::new();
                for _ in 0..n_segs {
                    let meta = SegmentMeta::read_from(&mut r)?;
                    let (file, rows) = self.load_segment_file(&meta)?;
                    items_owned.push((meta, file, rows));
                }
                let items: Vec<(SegmentMeta, &SegmentFile, &[Row])> =
                    items_owned.iter().map(|(m, f, rws)| (m.clone(), f, rws.as_slice())).collect();
                table.install_run_opts(items, build_indexes)?;
            }
            {
                let mut state = table.state.write();
                state.next_segment_id = state.next_segment_id.max(next_segment_id);
            }
            self.tables.write().insert(id, table);
            self.table_names.write().insert(name, id);
            let cur = self.next_table_id.load(Ordering::Relaxed);
            if u64::from(id) >= cur {
                self.next_table_id.store(u64::from(id) + 1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn note_auto_key(&self, table: &Table, key: &[Value]) {
        if table.unique_cols.is_none() {
            if let [Value::Int(n)] = key {
                table.bump_auto_key(*n);
            }
        }
    }

    fn load_segment_file(&self, meta: &SegmentMeta) -> Result<(SegmentFile, Vec<Row>)> {
        let bytes = self.file_store.read_file(&file_name(&self.name, meta.file_id, meta.id))?;
        let file = SegmentFile::decode(&bytes)?;
        // All physical rows (deleted or not) in segment order, for index
        // registration.
        let reader = SegmentReader::new(file.data.clone());
        let mut rows = Vec::with_capacity(file.data.rows);
        for ri in 0..file.data.rows {
            rows.push(reader.row(ri)?);
        }
        Ok((file, rows))
    }

    /// Rebuild a partition from an optional snapshot plus the log suffix.
    /// This is the node-restart path, the replica-provisioning path and the
    /// PITR path (with `upto_lp` bounding replay).
    ///
    /// The replay strategy comes from `S2_PARALLEL_RECOVERY` (default on):
    /// the parallel path fans decode and per-table application across the
    /// shared worker pool, then rebuilds indexes and delete vectors in a
    /// single pass. Both paths produce byte-identical snapshots (asserted by
    /// the `recovery_parallel` proptests).
    pub fn recover(
        name: impl Into<String>,
        log: Arc<Log>,
        file_store: Arc<dyn DataFileStore>,
        snapshot: Option<&Snapshot>,
        upto_lp: Option<LogPosition>,
    ) -> Result<Arc<Partition>> {
        Self::recover_with(name, log, file_store, snapshot, upto_lp, parallel_recovery_enabled())
    }

    /// [`Partition::recover`] with the replay strategy pinned (tests compare
    /// the two paths directly without racing on the environment).
    pub fn recover_with(
        name: impl Into<String>,
        log: Arc<Log>,
        file_store: Arc<dyn DataFileStore>,
        snapshot: Option<&Snapshot>,
        upto_lp: Option<LogPosition>,
        parallel: bool,
    ) -> Result<Arc<Partition>> {
        let p = Partition::new(name, log, file_store);
        let start_lp = match snapshot {
            Some(s) => {
                p.load_snapshot_state(&s.data, !parallel)?;
                p.last_snapshot_lp.store(s.lp, Ordering::Release);
                s.lp
            }
            None => 0,
        };
        let end_lp = upto_lp.unwrap_or_else(|| p.log.end_lp()).min(p.log.end_lp());
        if parallel {
            if end_lp > start_lp {
                p.replay_parallel(start_lp, end_lp)?;
            } else {
                p.rebuild_all_indexes(s2_pool::effective_threads(0))?;
            }
        } else if end_lp > start_lp {
            let bytes = p.log.read_range(start_lp, end_lp)?;
            for rec in RecordIter::new(&bytes, start_lp) {
                let rec = match rec {
                    Ok(rec) => rec,
                    Err(e) => {
                        // A corrupt frame ends replay: everything past the
                        // longest checksummed prefix is a torn tail from a
                        // crash mid-write. Nothing there was ever
                        // acknowledged — acks only cover synced,
                        // CRC-complete prefixes — so stopping is lossless.
                        s2_obs::counter!("core.recover.torn_tail_stops").add(1);
                        s2_obs::event("core.recover_truncated", format!("{e}"));
                        break;
                    }
                };
                let engine_rec = EngineRecord::decode(rec.kind, rec.payload)?;
                p.apply_record(engine_rec)?;
            }
        }
        Ok(p)
    }

    /// Parallel WAL replay (paper §3.1 restart; idiom after oxibase's
    /// two-phase `replay_wal` + `populate_all_indexes`):
    ///
    /// 1. **Frame scan** (serial): walk the checksummed frames exactly like
    ///    the serial path, stopping at the first torn frame.
    /// 2. **Decode** (parallel): `EngineRecord::decode` fans across the
    ///    worker pool in input-ordered batches; the first error is surfaced
    ///    in log order.
    /// 3. **Partition** (serial): apply `CreateTable` immediately; split
    ///    each multi-table `Commit` into per-table sub-commits (same
    ///    timestamp — transaction ids are not observable state) and bucket
    ///    everything else by table. Every non-DDL record touches exactly one
    ///    table, so per-table queues preserve all ordering that matters.
    /// 4. **Apply** (parallel): one worker per table replays that table's
    ///    queue in log order, deferring index registration and batching
    ///    `Move` tombstones (delete bits only ever get set and segment ids
    ///    are never reused, so one copy-on-write install per surviving
    ///    segment at the end is equivalent to per-record installs).
    /// 5. **Index rebuild** (parallel): one pass per table over its live
    ///    segments, replacing the per-record index maintenance.
    fn replay_parallel(
        self: &Arc<Partition>,
        start_lp: LogPosition,
        end_lp: LogPosition,
    ) -> Result<()> {
        let threads = s2_pool::effective_threads(0);
        let pool = s2_pool::ScanPool::global();
        let bytes = Arc::new(self.log.read_range(start_lp, end_lp)?);
        // Phase 1: serial frame scan. Frames are (kind, payload range); the
        // payload range is resolved against the shared buffer so decode jobs
        // borrow nothing.
        let base = bytes.as_ptr() as usize;
        let mut frames: Vec<(u8, usize, usize)> = Vec::new();
        for rec in RecordIter::new(&bytes, start_lp) {
            match rec {
                Ok(rec) => {
                    let off = rec.payload.as_ptr() as usize - base;
                    frames.push((rec.kind, off, off + rec.payload.len()));
                }
                Err(e) => {
                    // Torn tail: same stop rule (and same telemetry) as the
                    // serial path.
                    s2_obs::counter!("core.recover.torn_tail_stops").add(1);
                    s2_obs::event("core.recover_truncated", format!("{e}"));
                    break;
                }
            }
        }
        // Phase 2: parallel decode in batches (input order preserved by the
        // pool; errors surfaced in log order).
        const DECODE_BATCH: usize = 256;
        let batches: Vec<Vec<(u8, usize, usize)>> =
            frames.chunks(DECODE_BATCH).map(<[_]>::to_vec).collect();
        let buf = Arc::clone(&bytes);
        let decoded: Vec<Vec<Result<EngineRecord>>> = pool.run(threads, batches, move |batch| {
            batch.into_iter().map(|(kind, s, e)| EngineRecord::decode(kind, &buf[s..e])).collect()
        });
        // Phase 3: serial partition into per-table ordered queues.
        let mut queues: HashMap<TableId, Vec<EngineRecord>> = HashMap::new();
        let mut max_ts: Timestamp = 0;
        for rec in decoded.into_iter().flatten() {
            let rec = rec?;
            if let Some(ts) = rec.commit_ts() {
                max_ts = max_ts.max(ts);
            }
            match rec {
                rec @ EngineRecord::CreateTable { .. } => self.apply_record(rec)?,
                EngineRecord::Commit { commit_ts, ops } => {
                    let mut by_table: HashMap<TableId, Vec<RowOp>> = HashMap::new();
                    for op in ops {
                        let tid = match &op {
                            RowOp::Upsert { table, .. } | RowOp::Delete { table, .. } => *table,
                        };
                        by_table.entry(tid).or_default().push(op);
                    }
                    for (tid, ops) in by_table {
                        queues
                            .entry(tid)
                            .or_default()
                            .push(EngineRecord::Commit { commit_ts, ops });
                    }
                }
                EngineRecord::Flush { table, .. }
                | EngineRecord::Move { table, .. }
                | EngineRecord::Merge { table, .. } => {
                    queues.entry(table).or_default().push(rec);
                }
            }
        }
        // Phase 4: parallel per-table apply (log order within each table).
        let mut work: Vec<(TableId, Vec<EngineRecord>)> = queues.into_iter().collect();
        work.sort_unstable_by_key(|(tid, _)| *tid);
        let replayer = Arc::clone(self);
        let results: Vec<Result<()>> = pool.run(threads, work, move |(tid, recs)| {
            let mut ctx = ReplayCtx::default();
            for rec in recs {
                replayer.apply_record_inner(rec, Some(&mut ctx))?;
            }
            replayer.install_replay_deletes(tid, ctx)
        });
        for r in results {
            r?;
        }
        self.bump_commit_ts(max_ts);
        // Phase 5: single-pass index rebuild, fanned per table.
        self.rebuild_all_indexes(threads)
    }

    /// Rebuild every table's global indexes from its live segments.
    fn rebuild_all_indexes(self: &Arc<Partition>, threads: usize) -> Result<()> {
        let tables: Vec<Arc<Table>> = {
            let map = self.tables.read();
            let mut ts: Vec<Arc<Table>> = map.values().cloned().collect();
            ts.sort_unstable_by_key(|t| t.id);
            ts
        };
        let results: Vec<Result<()>> =
            s2_pool::ScanPool::global().run(threads, tables, |t| t.rebuild_indexes());
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Apply the batched `Move` tombstones for one table: one copy-on-write
    /// delete-vector install per still-live segment.
    fn install_replay_deletes(&self, table: TableId, ctx: ReplayCtx) -> Result<()> {
        if ctx.pending_deletes.is_empty() {
            return Ok(());
        }
        let t = self.table(table)?;
        let state = t.state.read();
        for (seg, offs) in ctx.pending_deletes {
            if let Some(core) = state.segments.get(&seg) {
                let mut bits = (**core.deleted.read()).clone();
                for o in offs {
                    bits.set(o as usize);
                }
                *core.deleted.write() = Arc::new(bits);
            }
        }
        Ok(())
    }

    /// Apply one replayed (or replicated) record.
    pub fn apply_record(&self, rec: EngineRecord) -> Result<()> {
        self.apply_record_inner(rec, None)
    }

    /// [`Partition::apply_record`] with an optional parallel-replay context:
    /// when present, index registration is deferred (rebuilt in one pass
    /// afterwards), `Move` tombstones are batched into the context, and the
    /// commit-timestamp bump is skipped (the replay driver folds the maximum
    /// serially — the bump is a non-atomic read-modify-write that must not
    /// race across table workers).
    fn apply_record_inner(&self, rec: EngineRecord, replay: Option<&mut ReplayCtx>) -> Result<()> {
        let deferred = replay.is_some();
        match rec {
            EngineRecord::CreateTable { table, name, schema, options } => {
                let t = Arc::new(Table::new(table, name.clone(), schema, options)?);
                self.tables.write().insert(table, t);
                self.table_names.write().insert(name, table);
                let cur = self.next_table_id.load(Ordering::Relaxed);
                if u64::from(table) >= cur {
                    self.next_table_id.store(u64::from(table) + 1, Ordering::Relaxed);
                }
            }
            EngineRecord::Commit { commit_ts, ops } => {
                let txn = self.alloc_txn();
                let mut keys_by_table: HashMap<TableId, Vec<Vec<Value>>> = HashMap::new();
                for op in ops {
                    match op {
                        RowOp::Upsert { table, key, row } => {
                            let t = self.table(table)?;
                            self.note_auto_key(&t, &key);
                            t.rowstore.read().write(txn, &key, Some(row))?;
                            keys_by_table.entry(table).or_default().push(key);
                        }
                        RowOp::Delete { table, key } => {
                            let t = self.table(table)?;
                            t.rowstore.read().write(txn, &key, None)?;
                            keys_by_table.entry(table).or_default().push(key);
                        }
                    }
                }
                for (tid, keys) in &keys_by_table {
                    self.table(*tid)?.rowstore.read().commit(txn, commit_ts, keys);
                }
                if !deferred {
                    self.bump_commit_ts(commit_ts);
                }
            }
            EngineRecord::Flush { table, commit_ts, metas, removed_keys } => {
                let t = self.table(table)?;
                // Install every segment as ONE run, mirroring the live flush
                // (a flush produces a single sorted run).
                let mut items_owned: Vec<(SegmentMeta, SegmentFile, Vec<Row>)> = Vec::new();
                for meta in metas {
                    let (file, rows) = self.load_segment_file(&meta)?;
                    items_owned.push((meta, file, rows));
                }
                let items: Vec<(SegmentMeta, &SegmentFile, &[Row])> =
                    items_owned.iter().map(|(m, f, rws)| (m.clone(), f, rws.as_slice())).collect();
                t.install_run_opts(items, !deferred)?;
                if !removed_keys.is_empty() {
                    let txn = self.alloc_txn();
                    let rs = t.rowstore.read();
                    for key in &removed_keys {
                        rs.write(txn, key, None)?;
                    }
                    rs.commit(txn, commit_ts, &removed_keys);
                }
                if !deferred {
                    self.bump_commit_ts(commit_ts);
                }
            }
            EngineRecord::Move { table, commit_ts, inserts, deleted } => {
                let t = self.table(table)?;
                if !inserts.is_empty() {
                    let txn = self.alloc_txn();
                    let rs = t.rowstore.read();
                    let mut keys = Vec::with_capacity(inserts.len());
                    for (key, row) in inserts {
                        self.note_auto_key(&t, &key);
                        rs.write(txn, &key, Some(row))?;
                        keys.push(key);
                    }
                    rs.commit(txn, commit_ts, &keys);
                }
                match replay {
                    Some(ctx) => {
                        // Batched: delete bits only ever get set, so folding
                        // them into one install at queue end is equivalent.
                        for (seg, offs) in deleted {
                            ctx.pending_deletes.entry(seg).or_default().extend(offs);
                        }
                    }
                    None => {
                        let state = t.state.read();
                        for (seg, offs) in deleted {
                            if let Some(core) = state.segments.get(&seg) {
                                let mut bits = (**core.deleted.read()).clone();
                                for o in offs {
                                    bits.set(o as usize);
                                }
                                *core.deleted.write() = Arc::new(bits);
                            }
                        }
                    }
                }
                if !deferred {
                    self.bump_commit_ts(commit_ts);
                }
            }
            EngineRecord::Merge { table, commit_ts, dropped, metas } => {
                let t = self.table(table)?;
                {
                    let mut state = t.state.write();
                    for id in &dropped {
                        state.segments.remove(id);
                    }
                    state.runs.retain(|run| run.iter().all(|id| !dropped.contains(id)));
                }
                let mut items_owned: Vec<(SegmentMeta, SegmentFile, Vec<Row>)> = Vec::new();
                for meta in metas {
                    let (file, rows) = self.load_segment_file(&meta)?;
                    items_owned.push((meta, file, rows));
                }
                let items: Vec<(SegmentMeta, &SegmentFile, &[Row])> =
                    items_owned.iter().map(|(m, f, rws)| (m.clone(), f, rws.as_slice())).collect();
                t.install_run_opts(items, !deferred)?;
                if !deferred {
                    self.bump_commit_ts(commit_ts);
                }
            }
        }
        Ok(())
    }

    fn bump_commit_ts(&self, ts: Timestamp) {
        let cur = self.commit_ts();
        if ts > cur {
            self.commit_ts.store(ts, Ordering::Release);
        }
    }
}

/// A consistent multi-table read view of one partition. Pins GC horizons
/// while alive.
pub struct PartitionSnapshot {
    /// Snapshot timestamp.
    pub read_ts: Timestamp,
    tables: HashMap<TableId, Arc<TableSnapshot>>,
    partition: Arc<Partition>,
}

impl PartitionSnapshot {
    /// Per-table snapshot by id.
    pub fn table(&self, id: TableId) -> Result<&Arc<TableSnapshot>> {
        self.tables.get(&id).ok_or_else(|| Error::NotFound(format!("table {id} in snapshot")))
    }

    /// Per-table snapshot by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Arc<TableSnapshot>> {
        let t = self.partition.table_by_name(name)?;
        self.table(t.id)
    }

    /// Ids of tables captured.
    pub fn table_ids(&self) -> Vec<TableId> {
        let mut ids: Vec<TableId> = self.tables.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

impl Drop for PartitionSnapshot {
    fn drop(&mut self) {
        self.partition.unpin(self.read_ts);
    }
}
