//! Data files and the data-file store.
//!
//! A data file bundles a segment's encoded columns with the per-segment
//! inverted indexes for every indexed column, so a segment restored from
//! blob storage is immediately probe-able without an index rebuild. Files
//! are immutable and named by the log position at which they were created
//! (paper §3: "each data file is named after the log page at which it was
//! created"), making them logically part of the log stream.

use std::collections::HashMap;
use std::sync::Arc;

use s2_columnstore::SegmentData;
use s2_common::io::{ByteReader, ByteWriter};
use s2_common::sync::{rank, RwLock};
use s2_common::{Error, LogPosition, Result};
use s2_index::InvertedIndex;

/// Data-file magic ("S2DF").
pub const SEGFILE_MAGIC: u32 = 0x4644_3253;

/// A segment's on-disk bundle: column data plus inverted indexes.
#[derive(Debug, Clone)]
pub struct SegmentFile {
    /// Encoded column data.
    pub data: SegmentData,
    /// Inverted indexes keyed by column ordinal.
    pub inverted: Vec<(usize, InvertedIndex)>,
}

impl SegmentFile {
    /// Serialize to file bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(SEGFILE_MAGIC);
        let data = self.data.encode();
        w.put_bytes(&data);
        w.put_varint(self.inverted.len() as u64);
        for (col, ix) in &self.inverted {
            w.put_varint(*col as u64);
            w.put_bytes(ix.as_bytes());
        }
        w.into_bytes()
    }

    /// Parse file bytes.
    pub fn decode(bytes: &[u8]) -> Result<SegmentFile> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u32()?;
        if magic != SEGFILE_MAGIC {
            return Err(Error::Corruption(format!("bad data file magic {magic:#x}")));
        }
        let data = SegmentData::decode(r.get_bytes()?)?;
        let n = r.get_varint()? as usize;
        let mut inverted = Vec::with_capacity(n);
        for _ in 0..n {
            let col = r.get_varint()? as usize;
            let ix = InvertedIndex::from_bytes(Arc::new(r.get_bytes()?.to_vec()))?;
            inverted.push((col, ix));
        }
        Ok(SegmentFile { data, inverted })
    }
}

/// Canonical data-file name for a partition's segment file. Named primarily
/// by the log position at which it was created (so files sort in log order);
/// the segment id disambiguates multiple files created by one transaction
/// (e.g. a merge producing several outputs at one log position).
pub fn file_name(partition: &str, file_id: LogPosition, segment: u64) -> String {
    format!("{partition}/files/{file_id:020}_{segment}")
}

/// Where data files live. The engine writes files here at flush/merge and
/// reads them back on recovery or cache miss. `s2-cluster` implements this
/// over the local cache + blob store; the default is plain memory.
pub trait DataFileStore: Send + Sync {
    /// Store an immutable data file.
    fn write_file(&self, name: &str, bytes: Arc<Vec<u8>>) -> Result<()>;
    /// Fetch a data file.
    fn read_file(&self, name: &str) -> Result<Arc<Vec<u8>>>;
    /// Delete a data file (after its segment was merged away and no snapshot
    /// needs it). Idempotent.
    fn delete_file(&self, name: &str) -> Result<()>;
}

/// In-memory data-file store (local-disk stand-in for single-node use).
pub struct MemFileStore {
    files: RwLock<HashMap<String, Arc<Vec<u8>>>>,
}

impl Default for MemFileStore {
    fn default() -> MemFileStore {
        MemFileStore::new()
    }
}

impl MemFileStore {
    /// Empty store.
    pub fn new() -> MemFileStore {
        MemFileStore { files: RwLock::new(&rank::CORE_SEGFILES, HashMap::new()) }
    }

    /// Number of files held.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// Total bytes held.
    pub fn total_bytes(&self) -> usize {
        self.files.read().values().map(|b| b.len()).sum()
    }
}

impl DataFileStore for MemFileStore {
    fn write_file(&self, name: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        self.files.write().insert(name.to_string(), bytes);
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        self.files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("data file {name:?}")))
    }

    fn delete_file(&self, name: &str) -> Result<()> {
        self.files.write().remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_columnstore::build_segment;
    use s2_common::schema::{ColumnDef, DataType};
    use s2_common::{Row, Schema, Value};
    use s2_index::InvertedIndexBuilder;

    #[test]
    fn segment_file_roundtrip() {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::new("tag", DataType::Str),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..50)
            .map(|i| Row::new(vec![Value::Int(i), Value::str(["a", "b"][i as usize % 2])]))
            .collect();
        let (_, data) = build_segment(1, rows, &schema, &[0]).unwrap();
        let mut b = InvertedIndexBuilder::new();
        for i in 0..50u32 {
            b.add(&Value::str(["a", "b"][i as usize % 2]), i);
        }
        let file = SegmentFile { data, inverted: vec![(1, b.finish())] };
        let bytes = file.encode();
        let back = SegmentFile::decode(&bytes).unwrap();
        assert_eq!(back.data.rows, 50);
        assert_eq!(back.inverted.len(), 1);
        assert_eq!(back.inverted[0].0, 1);
        let mut p = back.inverted[0].1.lookup(&Value::str("a")).unwrap().unwrap();
        assert_eq!(p.len(), 25);
        assert_eq!(p.next().unwrap(), Some(0));
    }

    #[test]
    fn mem_store_basics() {
        let s = MemFileStore::new();
        let name = file_name("db0_p0", 4096, 7);
        assert_eq!(name, "db0_p0/files/00000000000000004096_7");
        s.write_file(&name, Arc::new(vec![1, 2, 3])).unwrap();
        assert_eq!(s.read_file(&name).unwrap().len(), 3);
        assert_eq!(s.file_count(), 1);
        s.delete_file(&name).unwrap();
        assert!(s.read_file(&name).is_err());
    }

    #[test]
    fn corrupt_magic_rejected() {
        assert!(SegmentFile::decode(&[9, 9, 9, 9]).is_err());
    }
}
