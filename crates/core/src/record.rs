//! Log record semantics for the unified storage engine.
//!
//! The WAL (`s2-wal`) frames opaque payloads; this module defines what those
//! payloads mean: table DDL, transaction commits (redo-only row operations),
//! rowstore→segment flushes, move transactions (paper §4.2) and segment
//! merges. Replaying these records reconstructs a partition exactly — which
//! is also how replicas apply the replication stream and how PITR works.

use s2_columnstore::SegmentMeta;
use s2_common::io::{ByteReader, ByteWriter};
use s2_common::schema::IndexDef;
use s2_common::{
    ColumnDef, DataType, Error, Result, Row, Schema, SegmentId, TableId, TableOptions, Timestamp,
    Value,
};

/// Record kind: table creation.
pub const REC_CREATE_TABLE: u8 = 1;
/// Record kind: user transaction commit (row ops).
pub const REC_COMMIT: u8 = 2;
/// Record kind: rowstore flush into a columnstore segment.
pub const REC_FLUSH: u8 = 3;
/// Record kind: move transaction (deleted bits + rowstore copies).
pub const REC_MOVE: u8 = 4;
/// Record kind: segment merge.
pub const REC_MERGE: u8 = 5;

/// One row operation inside a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOp {
    /// Write `row` under `key` in the table's rowstore level.
    Upsert {
        /// Target table.
        table: TableId,
        /// Rowstore key (unique-key values or synthetic).
        key: Vec<Value>,
        /// New row contents.
        row: Row,
    },
    /// Write a delete marker under `key`.
    Delete {
        /// Target table.
        table: TableId,
        /// Rowstore key.
        key: Vec<Value>,
    },
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineRecord {
    /// DDL: create a table.
    CreateTable {
        /// Assigned table id.
        table: TableId,
        /// Table name.
        name: String,
        /// Column definitions.
        schema: Schema,
        /// Sort/shard/index options.
        options: TableOptions,
    },
    /// A committed user transaction (redo only — aborted work is never logged).
    Commit {
        /// Commit timestamp.
        commit_ts: Timestamp,
        /// Row operations in execution order.
        ops: Vec<RowOp>,
    },
    /// A flush: `removed_keys` left the rowstore, `metas` (and their data
    /// files, named by each meta's `file_id`) entered the columnstore,
    /// atomically. One flush is always ONE record, even when it produces
    /// several segments: if the segments and the key removals were split
    /// across frames, a torn tail could persist the removals with only some
    /// of the segments and recovery would lose the rest of the flushed rows.
    Flush {
        /// Target table.
        table: TableId,
        /// Commit timestamp of the flush transaction.
        commit_ts: Timestamp,
        /// Metadata of every segment the flush produced, in run order.
        metas: Vec<SegmentMeta>,
        /// Rowstore keys whose rows moved into the segments.
        removed_keys: Vec<Vec<Value>>,
    },
    /// A move transaction (paper §4.2): rows copied from segments into the
    /// rowstore (content-preserving) and their segment offsets tombstoned in
    /// the deleted bit vectors.
    Move {
        /// Target table.
        table: TableId,
        /// Commit timestamp of the move transaction.
        commit_ts: Timestamp,
        /// Rows inserted into the rowstore, already committed.
        inserts: Vec<(Vec<Value>, Row)>,
        /// Per-segment row offsets newly marked deleted.
        deleted: Vec<(SegmentId, Vec<u32>)>,
    },
    /// A segment merge: inputs dropped, outputs (and their data files) added.
    Merge {
        /// Target table.
        table: TableId,
        /// Commit timestamp of the merge transaction.
        commit_ts: Timestamp,
        /// Segments removed.
        dropped: Vec<SegmentId>,
        /// Replacement segments.
        metas: Vec<SegmentMeta>,
    },
}

pub(crate) fn put_key(w: &mut ByteWriter, key: &[Value]) {
    w.put_varint(key.len() as u64);
    for v in key {
        w.put_value(v);
    }
}

pub(crate) fn get_key(r: &mut ByteReader<'_>) -> Result<Vec<Value>> {
    let n = r.get_varint()? as usize;
    (0..n).map(|_| r.get_value()).collect()
}

pub(crate) fn put_row(w: &mut ByteWriter, row: &Row) {
    w.put_varint(row.len() as u64);
    for v in row.values() {
        w.put_value(v);
    }
}

pub(crate) fn get_row(r: &mut ByteReader<'_>) -> Result<Row> {
    let n = r.get_varint()? as usize;
    Ok(Row::new((0..n).map(|_| r.get_value()).collect::<Result<_>>()?))
}

pub(crate) fn put_schema(w: &mut ByteWriter, schema: &Schema) {
    w.put_varint(schema.len() as u64);
    for c in schema.columns() {
        w.put_str(&c.name);
        w.put_u8(match c.data_type {
            DataType::Int64 => 0,
            DataType::Double => 1,
            DataType::Str => 2,
        });
        w.put_u8(c.nullable as u8);
    }
}

pub(crate) fn get_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let n = r.get_varint()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?.to_string();
        let dt = match r.get_u8()? {
            0 => DataType::Int64,
            1 => DataType::Double,
            2 => DataType::Str,
            t => return Err(Error::Corruption(format!("bad data type tag {t}"))),
        };
        let nullable = r.get_u8()? != 0;
        cols.push(ColumnDef { name, data_type: dt, nullable });
    }
    Schema::new(cols)
}

pub(crate) fn put_usizes(w: &mut ByteWriter, xs: &[usize]) {
    w.put_varint(xs.len() as u64);
    for &x in xs {
        w.put_varint(x as u64);
    }
}

pub(crate) fn get_usizes(r: &mut ByteReader<'_>) -> Result<Vec<usize>> {
    let n = r.get_varint()? as usize;
    (0..n).map(|_| Ok(r.get_varint()? as usize)).collect()
}

pub(crate) fn put_options(w: &mut ByteWriter, o: &TableOptions) {
    put_usizes(w, &o.sort_key);
    put_usizes(w, &o.shard_key);
    w.put_varint(o.indexes.len() as u64);
    for ix in &o.indexes {
        w.put_str(&ix.name);
        put_usizes(w, &ix.columns);
        w.put_u8(ix.unique as u8);
    }
    w.put_varint(o.flush_threshold_rows as u64);
    w.put_varint(o.segment_rows as u64);
}

pub(crate) fn get_options(r: &mut ByteReader<'_>) -> Result<TableOptions> {
    let sort_key = get_usizes(r)?;
    let shard_key = get_usizes(r)?;
    let n = r.get_varint()? as usize;
    let mut indexes = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?.to_string();
        let columns = get_usizes(r)?;
        let unique = r.get_u8()? != 0;
        indexes.push(IndexDef { name, columns, unique });
    }
    let flush_threshold_rows = r.get_varint()? as usize;
    let segment_rows = r.get_varint()? as usize;
    Ok(TableOptions { sort_key, shard_key, indexes, flush_threshold_rows, segment_rows })
}

impl EngineRecord {
    /// The WAL kind byte for this record.
    pub fn kind(&self) -> u8 {
        match self {
            EngineRecord::CreateTable { .. } => REC_CREATE_TABLE,
            EngineRecord::Commit { .. } => REC_COMMIT,
            EngineRecord::Flush { .. } => REC_FLUSH,
            EngineRecord::Move { .. } => REC_MOVE,
            EngineRecord::Merge { .. } => REC_MERGE,
        }
    }

    /// The commit timestamp carried by the record, if any.
    pub fn commit_ts(&self) -> Option<Timestamp> {
        match self {
            EngineRecord::CreateTable { .. } => None,
            EngineRecord::Commit { commit_ts, .. }
            | EngineRecord::Flush { commit_ts, .. }
            | EngineRecord::Move { commit_ts, .. }
            | EngineRecord::Merge { commit_ts, .. } => Some(*commit_ts),
        }
    }

    /// Serialize the payload (kind byte travels in the WAL frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            EngineRecord::CreateTable { table, name, schema, options } => {
                w.put_u32(*table);
                w.put_str(name);
                put_schema(&mut w, schema);
                put_options(&mut w, options);
            }
            EngineRecord::Commit { commit_ts, ops } => {
                w.put_u64(*commit_ts);
                w.put_varint(ops.len() as u64);
                for op in ops {
                    match op {
                        RowOp::Upsert { table, key, row } => {
                            w.put_u8(1);
                            w.put_u32(*table);
                            put_key(&mut w, key);
                            put_row(&mut w, row);
                        }
                        RowOp::Delete { table, key } => {
                            w.put_u8(2);
                            w.put_u32(*table);
                            put_key(&mut w, key);
                        }
                    }
                }
            }
            EngineRecord::Flush { table, commit_ts, metas, removed_keys } => {
                w.put_u32(*table);
                w.put_u64(*commit_ts);
                w.put_varint(metas.len() as u64);
                for m in metas {
                    m.write_to(&mut w);
                }
                w.put_varint(removed_keys.len() as u64);
                for k in removed_keys {
                    put_key(&mut w, k);
                }
            }
            EngineRecord::Move { table, commit_ts, inserts, deleted } => {
                w.put_u32(*table);
                w.put_u64(*commit_ts);
                w.put_varint(inserts.len() as u64);
                for (k, row) in inserts {
                    put_key(&mut w, k);
                    put_row(&mut w, row);
                }
                w.put_varint(deleted.len() as u64);
                for (seg, offsets) in deleted {
                    w.put_u64(*seg);
                    w.put_varint(offsets.len() as u64);
                    for &o in offsets {
                        w.put_u32(o);
                    }
                }
            }
            EngineRecord::Merge { table, commit_ts, dropped, metas } => {
                w.put_u32(*table);
                w.put_u64(*commit_ts);
                w.put_varint(dropped.len() as u64);
                for d in dropped {
                    w.put_u64(*d);
                }
                w.put_varint(metas.len() as u64);
                for m in metas {
                    m.write_to(&mut w);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a payload of the given WAL kind.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<EngineRecord> {
        let mut r = ByteReader::new(payload);
        match kind {
            REC_CREATE_TABLE => {
                let table = r.get_u32()?;
                let name = r.get_str()?.to_string();
                let schema = get_schema(&mut r)?;
                let options = get_options(&mut r)?;
                Ok(EngineRecord::CreateTable { table, name, schema, options })
            }
            REC_COMMIT => {
                let commit_ts = r.get_u64()?;
                let n = r.get_varint()? as usize;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    match r.get_u8()? {
                        1 => {
                            let table = r.get_u32()?;
                            let key = get_key(&mut r)?;
                            let row = get_row(&mut r)?;
                            ops.push(RowOp::Upsert { table, key, row });
                        }
                        2 => {
                            let table = r.get_u32()?;
                            let key = get_key(&mut r)?;
                            ops.push(RowOp::Delete { table, key });
                        }
                        t => return Err(Error::Corruption(format!("bad row op tag {t}"))),
                    }
                }
                Ok(EngineRecord::Commit { commit_ts, ops })
            }
            REC_FLUSH => {
                let table = r.get_u32()?;
                let commit_ts = r.get_u64()?;
                let m = r.get_varint()? as usize;
                let metas =
                    (0..m).map(|_| SegmentMeta::read_from(&mut r)).collect::<Result<Vec<_>>>()?;
                let n = r.get_varint()? as usize;
                let removed_keys = (0..n).map(|_| get_key(&mut r)).collect::<Result<_>>()?;
                Ok(EngineRecord::Flush { table, commit_ts, metas, removed_keys })
            }
            REC_MOVE => {
                let table = r.get_u32()?;
                let commit_ts = r.get_u64()?;
                let n = r.get_varint()? as usize;
                let mut inserts = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = get_key(&mut r)?;
                    let row = get_row(&mut r)?;
                    inserts.push((k, row));
                }
                let m = r.get_varint()? as usize;
                let mut deleted = Vec::with_capacity(m);
                for _ in 0..m {
                    let seg = r.get_u64()?;
                    let c = r.get_varint()? as usize;
                    let offsets = (0..c).map(|_| r.get_u32()).collect::<Result<_>>()?;
                    deleted.push((seg, offsets));
                }
                Ok(EngineRecord::Move { table, commit_ts, inserts, deleted })
            }
            REC_MERGE => {
                let table = r.get_u32()?;
                let commit_ts = r.get_u64()?;
                let n = r.get_varint()? as usize;
                let dropped = (0..n).map(|_| r.get_u64()).collect::<Result<_>>()?;
                let m = r.get_varint()? as usize;
                let metas =
                    (0..m).map(|_| SegmentMeta::read_from(&mut r)).collect::<Result<_>>()?;
                Ok(EngineRecord::Merge { table, commit_ts, dropped, metas })
            }
            t => Err(Error::Corruption(format!("unknown engine record kind {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::BitVec;

    fn roundtrip(rec: EngineRecord) {
        let enc = rec.encode();
        let back = EngineRecord::decode(rec.kind(), &enc).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn create_table_roundtrip() {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::nullable("name", DataType::Str),
        ])
        .unwrap();
        let options = TableOptions::new()
            .with_sort_key(vec![0])
            .with_shard_key(vec![0])
            .with_unique("pk", vec![0])
            .with_index("by_name", vec![1]);
        roundtrip(EngineRecord::CreateTable { table: 3, name: "users".into(), schema, options });
    }

    #[test]
    fn commit_roundtrip() {
        roundtrip(EngineRecord::Commit {
            commit_ts: 42,
            ops: vec![
                RowOp::Upsert {
                    table: 1,
                    key: vec![Value::Int(7)],
                    row: Row::new(vec![Value::Int(7), Value::str("x"), Value::Null]),
                },
                RowOp::Delete { table: 1, key: vec![Value::Int(8)] },
            ],
        });
    }

    #[test]
    fn flush_and_merge_roundtrip() {
        let meta = SegmentMeta {
            id: 5,
            file_id: 12345,
            row_count: 3,
            encodings: vec![s2_encoding::Encoding::PlainInt],
            min_max: vec![Some((Value::Int(1), Value::Int(9)))],
            deleted: BitVec::zeros(3),
            sorted: true,
        };
        let mut meta2 = meta.clone();
        meta2.id = 6;
        roundtrip(EngineRecord::Flush {
            table: 1,
            commit_ts: 10,
            metas: vec![meta.clone(), meta2],
            removed_keys: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        });
        roundtrip(EngineRecord::Merge {
            table: 1,
            commit_ts: 20,
            dropped: vec![1, 2],
            metas: vec![meta],
        });
    }

    #[test]
    fn move_roundtrip() {
        roundtrip(EngineRecord::Move {
            table: 2,
            commit_ts: 99,
            inserts: vec![(vec![Value::str("k")], Row::new(vec![Value::str("k"), Value::Int(1)]))],
            deleted: vec![(7, vec![0, 5, 11])],
        });
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(EngineRecord::decode(99, &[]).is_err());
    }
}
