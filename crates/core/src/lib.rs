//! Unified HTAP table storage — the paper's primary contribution (§4).
//!
//! A table is a log-structured merge tree whose level 0 is an in-memory MVCC
//! rowstore (`s2-rowstore`) and whose lower levels are immutable, compressed
//! columnstore segments (`s2-columnstore`) with two-level secondary indexes
//! (`s2-index`). Key properties reproduced from the paper:
//!
//! - **No merge-based reconciliation during reads**: deletes are a bit
//!   vector in segment metadata, applied as a filter during scans, never a
//!   tombstone merge across LSM levels.
//! - **Row-level locking via move transactions** (§4.2): updates/deletes of
//!   segment-resident rows first relocate them into the rowstore in an
//!   autonomous, content-preserving transaction; the rowstore's primary key
//!   is the lock manager.
//! - **Uniqueness enforcement through the secondary index** (§4.1.2) with
//!   ERROR / SKIP / REPLACE / ON-DUPLICATE-UPDATE handling.
//! - **Redo-only WAL integration** (§3): every commit is one log record;
//!   flushes name their immutable data files after the log position that
//!   created them; recovery = snapshot + log replay, which is also the
//!   replica-apply and PITR path.

pub mod partition;
pub mod record;
pub mod segfile;
pub mod table;
pub mod txn;

pub use partition::{parallel_recovery_enabled, Partition, PartitionSnapshot};
pub use record::{
    EngineRecord, RowOp, REC_COMMIT, REC_CREATE_TABLE, REC_FLUSH, REC_MERGE, REC_MOVE,
};
pub use segfile::{file_name, DataFileStore, MemFileStore, SegmentFile};
pub use table::{IndexProbe, SegmentCore, SegmentSnap, Table, TableSnapshot};
pub use txn::{DuplicatePolicy, InsertReport, RowLocation, Txn};
