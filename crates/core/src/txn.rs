//! The transaction API: inserts with uniqueness enforcement (paper §4.1.2),
//! updates and deletes with row-level locking via move transactions
//! (paper §4.2), point reads, commit and rollback.
//!
//! Writes buffer in the rowstore as uncommitted MVCC versions (visible to
//! this transaction only) and are logged as one redo record at commit.

use std::collections::HashMap;
use std::sync::Arc;

use s2_common::{Error, LogPosition, Result, Row, TableId, Timestamp, TxnId, Value};

use crate::partition::Partition;
use crate::record::RowOp;
use crate::table::{SegmentCore, Table};

/// What to do when an inserted row violates a unique key (paper §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicatePolicy {
    /// Report an error (default).
    Error,
    /// Skip the new row (`SKIP DUPLICATE KEY ERRORS`).
    Skip,
    /// Delete the conflicting row, then insert the new one (`REPLACE`).
    Replace,
    /// Update the conflicting row with the new values (`ON DUPLICATE KEY UPDATE`).
    Update,
}

/// Outcome of a batch insert.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InsertReport {
    /// Rows inserted as new.
    pub inserted: usize,
    /// Rows skipped due to duplicates.
    pub skipped: usize,
    /// Rows that replaced an existing row.
    pub replaced: usize,
    /// Rows merged into an existing row via update.
    pub updated: usize,
}

/// Where a row currently lives (used by DML planning).
#[derive(Clone)]
pub enum RowLocation {
    /// In the rowstore, under this key.
    Rowstore(Vec<Value>),
    /// In a columnstore segment at this offset.
    Segment(Arc<SegmentCore>, u32),
}

/// An interactive read-write transaction on one partition.
pub struct Txn {
    partition: Arc<Partition>,
    id: TxnId,
    ops: Vec<RowOp>,
    /// Rowstore keys this transaction holds locks on, per table.
    locked: HashMap<TableId, Vec<Vec<Value>>>,
    finished: bool,
}

impl Partition {
    /// Begin a read-write transaction.
    pub fn begin(self: &Arc<Self>) -> Txn {
        Txn {
            partition: Arc::clone(self),
            id: self.alloc_txn(),
            ops: Vec::new(),
            locked: HashMap::new(),
            finished: false,
        }
    }
}

impl Txn {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    fn check_active(&self) -> Result<()> {
        if self.finished {
            return Err(Error::TxnAborted("transaction already finished".into()));
        }
        Ok(())
    }

    fn note_lock(&mut self, table: TableId, key: Vec<Value>) {
        self.locked.entry(table).or_default().push(key);
    }

    /// Insert a single row (duplicates are errors).
    pub fn insert(&mut self, table: TableId, row: Row) -> Result<()> {
        let report = self.insert_batch(table, vec![row], DuplicatePolicy::Error)?;
        debug_assert_eq!(report.inserted, 1);
        Ok(())
    }

    /// Insert a batch of rows with the given duplicate-key handling
    /// (paper §4.1.2: each batch is checked together to amortize index
    /// lookups: lock keys, probe indexes, then resolve conflicts).
    pub fn insert_batch(
        &mut self,
        table_id: TableId,
        rows: Vec<Row>,
        policy: DuplicatePolicy,
    ) -> Result<InsertReport> {
        self.check_active()?;
        let table = self.partition.table(table_id)?;
        let mut report = InsertReport::default();
        for row in rows {
            let row = Row::checked(row.into_values(), &table.schema)?;
            match &table.unique_cols {
                None => {
                    // No unique key: plain append under a synthetic key.
                    let key = table.rowstore_key(&row);
                    table.rowstore.read().write(self.id, &key, Some(row.clone()))?;
                    self.note_lock(table_id, key.clone());
                    self.ops.push(RowOp::Upsert { table: table_id, key, row });
                    report.inserted += 1;
                }
                Some(cols) => {
                    let cols = cols.clone();
                    self.insert_unique(&table, row, &cols, policy, &mut report)?;
                }
            }
        }
        Ok(report)
    }

    fn insert_unique(
        &mut self,
        table: &Arc<Table>,
        row: Row,
        unique_cols: &[usize],
        policy: DuplicatePolicy,
        report: &mut InsertReport,
    ) -> Result<()> {
        let key = row.project(unique_cols);
        if key.iter().any(Value::is_null) {
            return Err(Error::InvalidArgument("NULL in unique key".into()));
        }
        // Step 1 (paper §4.1.2): lock the unique key value. The rowstore's
        // primary key acts as the lock manager.
        table.rowstore.read().lock_key(self.id, &key)?;
        self.note_lock(table.id, key.clone());

        // Step 2: duplicate lookup. Own uncommitted writes count too.
        let existing = self.find_live_by_unique(table, &key)?;

        match existing {
            None => {
                table.rowstore.read().write(self.id, &key, Some(row.clone()))?;
                self.ops.push(RowOp::Upsert { table: table.id, key, row });
                report.inserted += 1;
            }
            Some(loc) => match policy {
                DuplicatePolicy::Error => {
                    return Err(Error::DuplicateKey(format!(
                        "table {:?}, key {:?}",
                        table.name, key
                    )));
                }
                DuplicatePolicy::Skip => {
                    report.skipped += 1;
                }
                DuplicatePolicy::Replace | DuplicatePolicy::Update => {
                    // Both write the new row over the old one; REPLACE is
                    // delete+insert, which for a full-row payload is the same
                    // final state.
                    self.ensure_in_rowstore(table, loc)?;
                    table.rowstore.read().write(self.id, &key, Some(row.clone()))?;
                    self.ops.push(RowOp::Upsert { table: table.id, key, row });
                    if policy == DuplicatePolicy::Replace {
                        report.replaced += 1;
                    } else {
                        report.updated += 1;
                    }
                }
            },
        }
        Ok(())
    }

    /// Latest live row under a unique key: rowstore first (including our own
    /// uncommitted writes), then the columnstore via the unique index.
    fn find_live_by_unique(
        &self,
        table: &Arc<Table>,
        key: &[Value],
    ) -> Result<Option<RowLocation>> {
        // Rowstore delete markers do NOT mean "row deleted": a flush leaves a
        // marker behind when it moves a row into a segment, and a logical
        // delete of a segment row always sets the segment's deleted bit as
        // well (via the move transaction). So a live rowstore version decides
        // immediately; a marker or a miss falls through to the segment probe,
        // whose deleted bits are the source of truth.
        //
        // DML reads use latest-committed (not snapshot) visibility. Reading
        // at TS_MAX_COMMITTED instead of `commit_ts()` matters: a competing
        // writer resolves its versions and releases the row lock *before*
        // the partition publishes the new commit timestamp, and since we
        // hold the row lock, "every committed version" is exactly "every
        // version the previous lock holder wrote".
        let latest = s2_common::TS_MAX_COMMITTED;
        if let Some(Some(_)) = table.rowstore.read().get(key, latest, Some(self.id)) {
            return Ok(Some(RowLocation::Rowstore(key.to_vec())));
        }
        // s2-lint: allow(unwrap, callers guard on table.unique_cols.is_some() before resolving by unique key)
        let cols = table.unique_cols.as_ref().expect("caller checked");
        let hits = table.index_probe_latest(cols, key)?;
        for (core, rows) in hits {
            if let Some(&r) = rows.first() {
                return Ok(Some(RowLocation::Segment(core, r)));
            }
        }
        Ok(None)
    }

    /// Guarantee the row at `loc` is modifiable in the rowstore: segment rows
    /// go through a move transaction (paper §4.2) which locks them for us.
    fn ensure_in_rowstore(&mut self, table: &Arc<Table>, loc: RowLocation) -> Result<()> {
        match loc {
            RowLocation::Rowstore(_) => Ok(()), // already there; key locked above
            RowLocation::Segment(core, off) => {
                let moved = self.partition.move_rows(self.id, table, &[(core, off)])?;
                for (key, _) in moved {
                    self.note_lock(table.id, key);
                }
                Ok(())
            }
        }
    }

    /// Point read by unique key at the latest committed state (plus this
    /// transaction's own writes). OLTP reads that precede an update use this.
    pub fn get_unique(&self, table_id: TableId, key: &[Value]) -> Result<Option<Row>> {
        self.check_active()?;
        let table = self.partition.table(table_id)?;
        if table.unique_cols.is_none() {
            return Err(Error::InvalidArgument(format!(
                "table {:?} has no unique key",
                table.name
            )));
        }
        let latest = s2_common::TS_MAX_COMMITTED;
        // Same marker and latest-committed semantics as find_live_by_unique:
        // only a live rowstore version short-circuits; markers fall through
        // to the segments.
        if let Some(Some(row)) = table.rowstore.read().get(key, latest, Some(self.id)) {
            return Ok(Some(row));
        }
        // s2-lint: allow(unwrap, callers guard on table.unique_cols.is_some() before resolving by unique key)
        let cols = table.unique_cols.as_ref().expect("checked");
        let hits = table.index_probe_latest(cols, key)?;
        for (core, rows) in hits {
            if let Some(&r) = rows.first() {
                return Ok(Some(core.reader.row(r as usize)?));
            }
        }
        Ok(None)
    }

    /// Update the row under a unique key with `new_row`. Returns false when
    /// no live row exists.
    pub fn update_unique(
        &mut self,
        table_id: TableId,
        key: &[Value],
        new_row: Row,
    ) -> Result<bool> {
        self.check_active()?;
        let table = self.partition.table(table_id)?;
        let new_row = Row::checked(new_row.into_values(), &table.schema)?;
        if table.unique_cols.is_none() {
            return Err(Error::InvalidArgument(format!(
                "table {:?} has no unique key",
                table.name
            )));
        }
        if let Some(cols) = &table.unique_cols {
            if new_row.project(cols) != key {
                return Err(Error::InvalidArgument(
                    "update_unique cannot change the unique key".into(),
                ));
            }
        }
        table.rowstore.read().lock_key(self.id, key)?;
        self.note_lock(table_id, key.to_vec());
        match self.find_live_by_unique(&table, key)? {
            None => Ok(false),
            Some(loc) => {
                self.ensure_in_rowstore(&table, loc)?;
                table.rowstore.read().write(self.id, key, Some(new_row.clone()))?;
                self.ops.push(RowOp::Upsert { table: table_id, key: key.to_vec(), row: new_row });
                Ok(true)
            }
        }
    }

    /// Read-modify-write by unique key: `f` receives the current row and
    /// returns the new one. Returns false when no live row exists.
    pub fn update_unique_with(
        &mut self,
        table_id: TableId,
        key: &[Value],
        f: impl FnOnce(&Row) -> Row,
    ) -> Result<bool> {
        self.check_active()?;
        let table = self.partition.table(table_id)?;
        table.rowstore.read().lock_key(self.id, key)?;
        self.note_lock(table_id, key.to_vec());
        let current = match self.find_live_by_unique(&table, key)? {
            None => return Ok(false),
            Some(loc) => {
                self.ensure_in_rowstore(&table, loc.clone())?;
                match loc {
                    RowLocation::Rowstore(_) | RowLocation::Segment(..) => {
                        // After ensure_in_rowstore the row is in the rowstore.
                        match table.rowstore.read().get(
                            key,
                            s2_common::TS_MAX_COMMITTED,
                            Some(self.id),
                        ) {
                            Some(Some(row)) => row,
                            _ => return Ok(false),
                        }
                    }
                }
            }
        };
        let new_row = Row::checked(f(&current).into_values(), &table.schema)?;
        table.rowstore.read().write(self.id, key, Some(new_row.clone()))?;
        self.ops.push(RowOp::Upsert { table: table_id, key: key.to_vec(), row: new_row });
        Ok(true)
    }

    /// Delete the row under a unique key. Returns false when absent.
    pub fn delete_unique(&mut self, table_id: TableId, key: &[Value]) -> Result<bool> {
        self.check_active()?;
        let table = self.partition.table(table_id)?;
        table.rowstore.read().lock_key(self.id, key)?;
        self.note_lock(table_id, key.to_vec());
        match self.find_live_by_unique(&table, key)? {
            None => Ok(false),
            Some(loc) => {
                self.ensure_in_rowstore(&table, loc)?;
                table.rowstore.read().write(self.id, key, None)?;
                self.ops.push(RowOp::Delete { table: table_id, key: key.to_vec() });
                Ok(true)
            }
        }
    }

    /// Delete rows at explicit locations (the query-engine DML path for
    /// non-unique predicates). Returns the number of rows deleted.
    pub fn delete_at(&mut self, table_id: TableId, locations: Vec<RowLocation>) -> Result<usize> {
        self.check_active()?;
        let table = self.partition.table(table_id)?;
        let mut n = 0;
        // Partition into rowstore keys and segment targets.
        let mut seg_targets: Vec<(Arc<SegmentCore>, u32)> = Vec::new();
        for loc in locations {
            match loc {
                RowLocation::Rowstore(key) => {
                    let rs = table.rowstore.read();
                    rs.lock_key(self.id, &key)?;
                    self.note_lock(table_id, key.clone());
                    // The row may have been deleted since it was located.
                    if matches!(rs.get_latest_committed(&key), Some(Some(_)))
                        || matches!(
                            rs.get(&key, s2_common::TS_MAX_COMMITTED, Some(self.id)),
                            Some(Some(_))
                        )
                    {
                        rs.write(self.id, &key, None)?;
                        self.ops.push(RowOp::Delete { table: table_id, key });
                        n += 1;
                    }
                }
                RowLocation::Segment(core, off) => seg_targets.push((core, off)),
            }
        }
        if !seg_targets.is_empty() {
            let moved = self.partition.move_rows(self.id, &table, &seg_targets)?;
            let rs = table.rowstore.read();
            for (key, _) in moved {
                rs.write(self.id, &key, None)?;
                self.ops.push(RowOp::Delete { table: table_id, key: key.clone() });
                self.note_lock(table_id, key);
                n += 1;
            }
        }
        Ok(n)
    }

    /// Update rows at explicit locations, applying `f` to each current row.
    pub fn update_at(
        &mut self,
        table_id: TableId,
        locations: Vec<RowLocation>,
        mut f: impl FnMut(&Row) -> Row,
    ) -> Result<usize> {
        self.check_active()?;
        let table = self.partition.table(table_id)?;
        let mut n = 0;
        let mut seg_targets: Vec<(Arc<SegmentCore>, u32)> = Vec::new();
        for loc in locations {
            match loc {
                RowLocation::Rowstore(key) => {
                    let rs = table.rowstore.read();
                    rs.lock_key(self.id, &key)?;
                    self.note_lock(table_id, key.clone());
                    let current =
                        rs.get(&key, s2_common::TS_MAX_COMMITTED, Some(self.id)).flatten();
                    if let Some(current) = current {
                        let new_row = Row::checked(f(&current).into_values(), &table.schema)?;
                        rs.write(self.id, &key, Some(new_row.clone()))?;
                        self.ops.push(RowOp::Upsert { table: table_id, key, row: new_row });
                        n += 1;
                    }
                }
                RowLocation::Segment(core, off) => seg_targets.push((core, off)),
            }
        }
        if !seg_targets.is_empty() {
            let moved = self.partition.move_rows(self.id, &table, &seg_targets)?;
            let rs = table.rowstore.read();
            for (key, current) in moved {
                let new_row = Row::checked(f(&current).into_values(), &table.schema)?;
                rs.write(self.id, &key, Some(new_row.clone()))?;
                self.ops.push(RowOp::Upsert { table: table_id, key: key.clone(), row: new_row });
                self.note_lock(table_id, key);
                n += 1;
            }
        }
        Ok(n)
    }

    /// Commit. Returns (commit timestamp, log position replication must ack
    /// — with group commit on, the containing batch's end position, already
    /// fsynced by the group-commit leader before this returns).
    pub fn commit(mut self) -> Result<(Timestamp, LogPosition)> {
        self.check_active()?;
        self.finished = true;
        let ops = std::mem::take(&mut self.ops);
        let locked = std::mem::take(&mut self.locked);
        self.partition.commit_txn(self.id, ops, &locked)
    }

    /// Roll back all buffered writes and release locks.
    pub fn rollback(mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let locked = std::mem::take(&mut self.locked);
        self.partition.rollback_txn(self.id, &locked);
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            // Implicit rollback on drop (e.g. on an error path).
            self.finished = true;
            let locked = std::mem::take(&mut self.locked);
            self.partition.rollback_txn(self.id, &locked);
        }
    }
}
