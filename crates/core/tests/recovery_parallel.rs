//! Parallel crash recovery must be observationally identical to serial
//! replay (§3.1 restart path): over randomized workloads — inserts, updates
//! and deletes across several tables, forced flushes and merges — both
//! strategies must produce byte-identical engine snapshots, equal index
//! probe results, and must stop at exactly the same torn-tail prefix.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableId, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_wal::{Log, Snapshot};

fn kv_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("k", DataType::Int64),
        ColumnDef::new("v", DataType::Int64),
        ColumnDef::new("tag", DataType::Str),
    ])
    .unwrap()
}

fn kv_options(rng: &mut StdRng) -> TableOptions {
    TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_index("by_tag", vec![2])
        .with_flush_threshold(rng.random_range(8..24))
        .with_segment_rows(rng.random_range(16..48))
}

fn row(k: i64, v: i64) -> Row {
    Row::new(vec![Value::Int(k), Value::Int(v), Value::str(format!("g{}", k % 7))])
}

struct Workload {
    p: Arc<Partition>,
    files: Arc<MemFileStore>,
    /// `end_lp` of every committed transaction, in commit order.
    boundaries: Vec<u64>,
    /// Mid-workload snapshot, if `snap_round` was given.
    snap: Option<Snapshot>,
    tables: Vec<TableId>,
    max_key: i64,
}

/// Drive a randomized multi-table workload against a fresh partition:
/// inserts, updates and deletes of unique keys, periodic forced flushes
/// (which turn later updates/deletes into §4.2 move transactions) and
/// merges. Optionally takes an engine snapshot after `snap_round` rounds.
fn run_workload(seed: u64, snap_round: Option<usize>) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let files = Arc::new(MemFileStore::new());
    let p = Partition::new(
        "rp_p0",
        Arc::new(Log::in_memory()),
        Arc::clone(&files) as Arc<dyn s2_core::DataFileStore>,
    );
    let ntables = rng.random_range(1..=3usize);
    let tables: Vec<TableId> = (0..ntables)
        .map(|i| p.create_table(format!("t{i}"), kv_schema(), kv_options(&mut rng)).unwrap())
        .collect();
    let mut live: Vec<BTreeSet<i64>> = vec![BTreeSet::new(); ntables];
    let mut next_key: i64 = 0;
    let mut boundaries = Vec::new();
    let mut snap = None;

    let rounds = rng.random_range(8..=16usize);
    for round in 0..rounds {
        let mut txn = p.begin();
        let nops = rng.random_range(1..=6usize);
        for _ in 0..nops {
            let ti = rng.random_range(0..ntables);
            let t = tables[ti];
            let choice = rng.random_range(0..10u32);
            if choice < 5 || live[ti].is_empty() {
                let k = next_key;
                next_key += 1;
                txn.insert(t, row(k, rng.random_range(0..1000))).unwrap();
                live[ti].insert(k);
            } else {
                let idx = rng.random_range(0..live[ti].len());
                let k = *live[ti].iter().nth(idx).unwrap();
                if choice < 8 {
                    txn.update_unique(t, &[Value::Int(k)], row(k, rng.random_range(0..1000)))
                        .unwrap();
                } else {
                    txn.delete_unique(t, &[Value::Int(k)]).unwrap();
                    live[ti].remove(&k);
                }
            }
        }
        let (_ts, end) = txn.commit().unwrap();
        boundaries.push(end);
        if round % 3 == 2 {
            for &t in &tables {
                p.flush_table(t, true).unwrap();
            }
        }
        if round % 5 == 4 {
            let t = tables[rng.random_range(0..ntables)];
            p.merge_table(t).unwrap();
        }
        if snap_round == Some(round) {
            snap = Some(p.write_snapshot().unwrap());
        }
    }
    p.log.sync().unwrap();
    Workload { p, files, boundaries, snap, tables, max_key: next_key }
}

fn log_bytes(p: &Arc<Partition>) -> Vec<u8> {
    p.log.read_range(0, p.log.end_lp()).unwrap()
}

fn recover_mode(
    bytes: &[u8],
    files: &Arc<MemFileStore>,
    snap: Option<&Snapshot>,
    upto: Option<u64>,
    parallel: bool,
) -> Arc<Partition> {
    let log = Log::in_memory();
    log.append_raw(bytes);
    // Same name as the workload partition: data-file keys embed it.
    Partition::recover_with(
        "rp_p0",
        Arc::new(log),
        Arc::clone(files) as Arc<dyn s2_core::DataFileStore>,
        snap,
        upto,
        parallel,
    )
    .unwrap()
}

fn fingerprint(p: &Arc<Partition>) -> Vec<u8> {
    p.write_snapshot().unwrap().data
}

/// Deep observational equality: per-table live row counts, rowstore sizes,
/// unique-key lookups (exercising the rebuilt unique index) and secondary
/// index probe hit counts (exercising the rebuilt column index).
fn assert_same_state(a: &Arc<Partition>, b: &Arc<Partition>, tables: &[TableId], max_key: i64) {
    let sa = a.read_snapshot();
    let sb = b.read_snapshot();
    assert_eq!(sa.table_ids(), sb.table_ids());
    for &t in tables {
        let ta = sa.table(t).unwrap();
        let tb = sb.table(t).unwrap();
        assert_eq!(ta.live_row_count(), tb.live_row_count(), "table {t} live rows");
        assert_eq!(ta.rowstore_rows().len(), tb.rowstore_rows().len(), "table {t} rowstore");
    }
    let txa = a.begin();
    let txb = b.begin();
    for &t in tables {
        for k in 0..max_key {
            assert_eq!(
                txa.get_unique(t, &[Value::Int(k)]).unwrap(),
                txb.get_unique(t, &[Value::Int(k)]).unwrap(),
                "table {t} key {k}"
            );
        }
    }
    drop(txa);
    drop(txb);
    for &t in tables {
        let ta = a.table(t).unwrap();
        let tb = b.table(t).unwrap();
        for g in 0..7 {
            let tag = [Value::str(format!("g{g}"))];
            let hits_a: usize =
                ta.index_probe_latest(&[2], &tag).unwrap().iter().map(|(_, r)| r.len()).sum();
            let hits_b: usize =
                tb.index_probe_latest(&[2], &tag).unwrap().iter().map(|(_, r)| r.len()).sum();
            assert_eq!(hits_a, hits_b, "table {t} tag g{g}");
        }
    }
}

fn torn_tail_counter() -> u64 {
    s2_obs::global().snapshot().counter("core.recover.torn_tail_stops")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-log recovery: parallel and serial replay produce byte-identical
    /// engine snapshots, and both match the live primary they replay.
    #[test]
    fn parallel_replay_matches_serial(seed in any::<u64>()) {
        let w = run_workload(seed, None);
        let bytes = log_bytes(&w.p);
        let ser = recover_mode(&bytes, &w.files, None, None, false);
        let par = recover_mode(&bytes, &w.files, None, None, true);
        prop_assert_eq!(fingerprint(&ser), fingerprint(&par));
        assert_same_state(&ser, &par, &w.tables, w.max_key);
        assert_same_state(&w.p, &par, &w.tables, w.max_key);
    }

    /// Recovery from a mid-history snapshot plus the log suffix: both modes
    /// agree byte-for-byte, with and without a PITR `upto_lp` bound.
    #[test]
    fn parallel_replay_with_snapshot_and_pitr(seed in any::<u64>()) {
        let w = run_workload(seed, Some(4));
        let bytes = log_bytes(&w.p);
        let snap = w.snap.as_ref().unwrap();

        // Snapshot + full suffix.
        let ser = recover_mode(&bytes, &w.files, Some(snap), None, false);
        let par = recover_mode(&bytes, &w.files, Some(snap), None, true);
        prop_assert_eq!(fingerprint(&ser), fingerprint(&par));
        assert_same_state(&w.p, &par, &w.tables, w.max_key);

        // PITR: replay bounded at a committed-transaction boundary.
        let upto = w.boundaries[w.boundaries.len() / 2];
        let ser = recover_mode(&bytes, &w.files, None, Some(upto), false);
        let par = recover_mode(&bytes, &w.files, None, Some(upto), true);
        prop_assert_eq!(fingerprint(&ser), fingerprint(&par));
        assert_same_state(&ser, &par, &w.tables, w.max_key);

        // Snapshot + PITR bound past the snapshot position.
        if let Some(&upto) = w.boundaries.iter().find(|&&b| b > snap.lp) {
            let ser = recover_mode(&bytes, &w.files, Some(snap), Some(upto), false);
            let par = recover_mode(&bytes, &w.files, Some(snap), Some(upto), true);
            prop_assert_eq!(fingerprint(&ser), fingerprint(&par));
            assert_same_state(&ser, &par, &w.tables, w.max_key);
        }
    }

    /// A corrupt frame mid-log stops both strategies at exactly the same
    /// prefix — the state equals a clean recovery of the bytes before the
    /// corruption — and fires `core.recover.torn_tail_stops` exactly once
    /// per recovery in both modes.
    #[test]
    fn torn_tail_stops_at_same_prefix(seed in any::<u64>()) {
        let w = run_workload(seed, None);
        let bytes = log_bytes(&w.p);
        let cut = w.boundaries[w.boundaries.len() / 2] as usize;
        prop_assert!(cut < bytes.len(), "later rounds always append past a mid-workload boundary");

        // Flip the kind byte of the frame starting at `cut`: the frame is
        // whole but its CRC no longer matches — a mid-log corruption.
        let mut corrupt = bytes.clone();
        corrupt[cut + 4] ^= 0xFF;

        let before = torn_tail_counter();
        let ser = recover_mode(&corrupt, &w.files, None, None, false);
        let after_ser = torn_tail_counter();
        prop_assert_eq!(after_ser - before, 1, "serial replay: one torn-tail stop");
        let par = recover_mode(&corrupt, &w.files, None, None, true);
        let after_par = torn_tail_counter();
        prop_assert_eq!(after_par - after_ser, 1, "parallel replay: one torn-tail stop");

        // Both stopped at the corruption point: identical to a clean
        // recovery of the prefix.
        let clean = recover_mode(&bytes[..cut], &w.files, None, None, false);
        prop_assert_eq!(fingerprint(&ser), fingerprint(&par));
        prop_assert_eq!(fingerprint(&clean), fingerprint(&par));
        assert_same_state(&ser, &par, &w.tables, w.max_key);

        // A cleanly truncated tail (crash mid-append) is NOT corruption:
        // replay stops silently at the last whole frame, no counter.
        let trunc = &bytes[..(cut + 5).min(bytes.len())];
        let before = torn_tail_counter();
        let ser = recover_mode(trunc, &w.files, None, None, false);
        let par = recover_mode(trunc, &w.files, None, None, true);
        prop_assert_eq!(torn_tail_counter(), before, "clean truncation fires no torn-tail stop");
        prop_assert_eq!(fingerprint(&ser), fingerprint(&par));
    }
}

/// `S2_PARALLEL_RECOVERY` picks the strategy at each `recover` call:
/// `0` forces serial, anything else (or unset) enables parallel replay.
/// Either way the recovered state is the same.
#[test]
fn env_switch_selects_strategy() {
    let w = run_workload(7, None);
    let bytes = log_bytes(&w.p);

    std::env::set_var("S2_PARALLEL_RECOVERY", "0");
    assert!(!s2_core::parallel_recovery_enabled());
    let log = Log::in_memory();
    log.append_raw(&bytes);
    let via_env = Partition::recover(
        "rp_p0",
        Arc::new(log),
        Arc::clone(&w.files) as Arc<dyn s2_core::DataFileStore>,
        None,
        None,
    )
    .unwrap();

    std::env::set_var("S2_PARALLEL_RECOVERY", "1");
    assert!(s2_core::parallel_recovery_enabled());
    std::env::remove_var("S2_PARALLEL_RECOVERY");
    assert!(s2_core::parallel_recovery_enabled(), "parallel replay is the default");

    let par = recover_mode(&bytes, &w.files, None, None, true);
    assert_eq!(fingerprint(&via_env), fingerprint(&par));
    assert_same_state(&w.p, &par, &w.tables, w.max_key);
}
