//! End-to-end tests of the unified storage engine: the write path of
//! figure 1, uniqueness enforcement (§4.1.2), move transactions (§4.2),
//! flush/merge behaviour (§2.1.2) and recovery.

use std::sync::Arc;

use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{DuplicatePolicy, MemFileStore, Partition, RowLocation};
use s2_wal::Log;

fn users_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("name", DataType::Str),
        ColumnDef::nullable("score", DataType::Double),
    ])
    .unwrap()
}

fn user(id: i64, name: &str, score: f64) -> Row {
    Row::new(vec![Value::Int(id), Value::str(name), Value::Double(score)])
}

fn new_partition() -> Arc<Partition> {
    Partition::new("t_p0", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()))
}

fn users_options() -> TableOptions {
    TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_index("by_name", vec![1])
        .with_flush_threshold(64)
        .with_segment_rows(128)
}

#[test]
fn insert_read_commit_visibility() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();

    let mut txn = p.begin();
    txn.insert(t, user(1, "alice", 1.0)).unwrap();
    // Own write visible before commit; other snapshots don't see it.
    assert!(txn.get_unique(t, &[Value::Int(1)]).unwrap().is_some());
    let snap = p.read_snapshot();
    assert_eq!(snap.table(t).unwrap().live_row_count(), 0);
    txn.commit().unwrap();

    let snap2 = p.read_snapshot();
    assert_eq!(snap2.table(t).unwrap().live_row_count(), 1);
    // The old snapshot still sees nothing (snapshot isolation).
    assert_eq!(snap.table(t).unwrap().live_row_count(), 0);
}

#[test]
fn duplicate_key_policies() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();

    let mut txn = p.begin();
    txn.insert(t, user(1, "alice", 1.0)).unwrap();
    txn.commit().unwrap();

    // Error (default).
    let mut txn = p.begin();
    let err = txn.insert(t, user(1, "imposter", 0.0)).unwrap_err();
    assert!(matches!(err, s2_common::Error::DuplicateKey(_)));
    txn.rollback();

    // Skip.
    let mut txn = p.begin();
    let r = txn
        .insert_batch(t, vec![user(1, "imposter", 0.0), user(2, "bob", 2.0)], DuplicatePolicy::Skip)
        .unwrap();
    assert_eq!((r.inserted, r.skipped), (1, 1));
    txn.commit().unwrap();

    // Replace.
    let mut txn = p.begin();
    let r = txn.insert_batch(t, vec![user(1, "alice2", 9.0)], DuplicatePolicy::Replace).unwrap();
    assert_eq!(r.replaced, 1);
    txn.commit().unwrap();
    let txn = p.begin();
    let row = txn.get_unique(t, &[Value::Int(1)]).unwrap().unwrap();
    assert_eq!(row.get(1), &Value::str("alice2"));
    txn.rollback();
}

#[test]
fn unique_enforced_across_flush() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    for i in 0..100 {
        txn.insert(t, user(i, &format!("u{i}"), i as f64)).unwrap();
    }
    txn.commit().unwrap();
    // Move everything into a columnstore segment.
    assert!(p.flush_table(t, true).unwrap() >= 1);
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    assert_eq!(ts.rowstore_rows().len(), 0, "rowstore drained");
    assert_eq!(ts.live_row_count(), 100);

    // Duplicate check must consult the segment via the unique index.
    let mut txn = p.begin();
    let err = txn.insert(t, user(42, "dup", 0.0)).unwrap_err();
    assert!(matches!(err, s2_common::Error::DuplicateKey(_)), "{err}");
    txn.rollback();

    // Point read through the index hits the segment.
    let txn = p.begin();
    let row = txn.get_unique(t, &[Value::Int(42)]).unwrap().unwrap();
    assert_eq!(row.get(1), &Value::str("u42"));
    txn.rollback();
}

#[test]
fn update_of_segment_row_uses_move_transaction() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    for i in 0..50 {
        txn.insert(t, user(i, &format!("u{i}"), 0.0)).unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();

    // A reader that starts *before* the update must keep seeing the old row.
    let old_snap = p.read_snapshot();

    let mut txn = p.begin();
    assert!(txn.update_unique(t, &[Value::Int(7)], user(7, "updated", 5.0)).unwrap());
    txn.commit().unwrap();

    let new_snap = p.read_snapshot();
    // New snapshot: exactly one row with id 7, updated.
    let probe = new_snap.table(t).unwrap().index_probe(&[0], &[Value::Int(7)]).unwrap().unwrap();
    assert_eq!(probe.row_count(), 1);
    let rows = probe.materialize().unwrap();
    assert_eq!(rows[0].get(1), &Value::str("updated"));

    // Old snapshot: still exactly one row, with the old value.
    let probe = old_snap.table(t).unwrap().index_probe(&[0], &[Value::Int(7)]).unwrap().unwrap();
    assert_eq!(probe.row_count(), 1);
    let rows = probe.materialize().unwrap();
    assert_eq!(rows[0].get(1), &Value::str("u7"));

    // Total row count unchanged (move preserved logical content).
    assert_eq!(new_snap.table(t).unwrap().live_row_count(), 50);
}

#[test]
fn delete_and_row_count() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    for i in 0..30 {
        txn.insert(t, user(i, "x", 0.0)).unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();

    let mut txn = p.begin();
    assert!(txn.delete_unique(t, &[Value::Int(5)]).unwrap());
    assert!(!txn.delete_unique(t, &[Value::Int(999)]).unwrap());
    txn.commit().unwrap();

    let snap = p.read_snapshot();
    assert_eq!(snap.table(t).unwrap().live_row_count(), 29);
    let txn = p.begin();
    assert!(txn.get_unique(t, &[Value::Int(5)]).unwrap().is_none());
    txn.rollback();

    // Deleting again reports absence.
    let mut txn = p.begin();
    assert!(!txn.delete_unique(t, &[Value::Int(5)]).unwrap());
    txn.rollback();
}

#[test]
fn rollback_undoes_everything_including_moves() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    txn.insert(t, user(1, "keep", 1.0)).unwrap();
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();

    let mut txn = p.begin();
    assert!(txn.update_unique(t, &[Value::Int(1)], user(1, "changed", 2.0)).unwrap());
    txn.rollback();

    // Content preserved: exactly one live row with the old values (the move
    // itself is content-preserving and survives the rollback).
    let snap = p.read_snapshot();
    assert_eq!(snap.table(t).unwrap().live_row_count(), 1);
    let txn = p.begin();
    let row = txn.get_unique(t, &[Value::Int(1)]).unwrap().unwrap();
    assert_eq!(row.get(1), &Value::str("keep"));
    txn.rollback();

    // And the row is updatable afterwards (locks were released).
    let mut txn = p.begin();
    assert!(txn.update_unique(t, &[Value::Int(1)], user(1, "final", 3.0)).unwrap());
    txn.commit().unwrap();
}

#[test]
fn merge_reduces_runs_and_drops_deleted_rows() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    // Create many single-segment runs.
    for batch in 0..6 {
        let mut txn = p.begin();
        for i in 0..40 {
            txn.insert(t, user(batch * 40 + i, "row", 0.0)).unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    // Delete some rows (sets deleted bits).
    let mut txn = p.begin();
    for id in [3i64, 77, 141] {
        assert!(txn.delete_unique(t, &[Value::Int(id)]).unwrap());
    }
    txn.commit().unwrap();

    let table = p.table(t).unwrap();
    let runs_before = table.live_segments().len();
    assert!(runs_before >= 5);
    while p.merge_table(t).unwrap() {}
    p.vacuum().unwrap();
    let segs_after = table.live_segments().len();
    assert!(segs_after < runs_before, "{segs_after} vs {runs_before}");

    let snap = p.read_snapshot();
    assert_eq!(snap.table(t).unwrap().live_row_count(), 6 * 40 - 3);
    // Deleted rows stay gone; survivors stay reachable through the index.
    let txn = p.begin();
    assert!(txn.get_unique(t, &[Value::Int(77)]).unwrap().is_none());
    assert!(txn.get_unique(t, &[Value::Int(78)]).unwrap().is_some());
    txn.rollback();
}

#[test]
fn secondary_index_by_non_unique_column() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    for i in 0..60 {
        txn.insert(t, user(i, ["red", "green", "blue"][(i % 3) as usize], 0.0)).unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();
    // A few more rows stay in the rowstore.
    let mut txn = p.begin();
    for i in 60..66 {
        txn.insert(t, user(i, "green", 0.0)).unwrap();
    }
    txn.commit().unwrap();

    let snap = p.read_snapshot();
    let probe = snap.table(t).unwrap().index_probe(&[1], &[Value::str("green")]).unwrap().unwrap();
    assert_eq!(probe.row_count(), 26, "20 in the segment + 6 in the rowstore");
    // Unindexed column probe falls back to None.
    assert!(snap.table(t).unwrap().index_probe(&[2], &[Value::Double(0.0)]).unwrap().is_none());
}

#[test]
fn recovery_replays_log_exactly() {
    let log = Arc::new(Log::in_memory());
    let files = Arc::new(MemFileStore::new());
    let p = Partition::new("t_p0", Arc::clone(&log), files.clone());
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    for i in 0..100 {
        txn.insert(t, user(i, &format!("u{i}"), i as f64)).unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();
    let mut txn = p.begin();
    txn.update_unique(t, &[Value::Int(10)], user(10, "updated", -1.0)).unwrap();
    txn.delete_unique(t, &[Value::Int(11)]).unwrap();
    txn.insert(t, user(1000, "late", 0.0)).unwrap();
    txn.commit().unwrap();

    // Recover from log only (no snapshot).
    let p2 = Partition::recover("t_p0", Arc::clone(&log), files.clone(), None, None).unwrap();
    let t2 = p2.table_by_name("users").unwrap().id;
    let snap = p2.read_snapshot();
    assert_eq!(snap.table(t2).unwrap().live_row_count(), 100);
    let txn = p2.begin();
    assert_eq!(
        txn.get_unique(t2, &[Value::Int(10)]).unwrap().unwrap().get(1),
        &Value::str("updated")
    );
    assert!(txn.get_unique(t2, &[Value::Int(11)]).unwrap().is_none());
    assert!(txn.get_unique(t2, &[Value::Int(1000)]).unwrap().is_some());
    txn.rollback();

    // The recovered partition accepts new writes without key collisions.
    let mut txn = p2.begin();
    txn.insert(t2, user(2000, "after-recovery", 0.0)).unwrap();
    txn.commit().unwrap();
}

#[test]
fn recovery_from_snapshot_plus_log_suffix() {
    let log = Arc::new(Log::in_memory());
    let files = Arc::new(MemFileStore::new());
    let p = Partition::new("t_p0", Arc::clone(&log), files.clone());
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    for i in 0..50 {
        txn.insert(t, user(i, "pre-snapshot", 0.0)).unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();

    let snapshot = p.write_snapshot().unwrap();

    // Post-snapshot activity that must come from the log suffix.
    let mut txn = p.begin();
    txn.insert(t, user(100, "post-snapshot", 0.0)).unwrap();
    txn.update_unique(t, &[Value::Int(3)], user(3, "patched", 0.0)).unwrap();
    txn.commit().unwrap();

    let p2 =
        Partition::recover("t_p0", Arc::clone(&log), files.clone(), Some(&snapshot), None).unwrap();
    let t2 = p2.table_by_name("users").unwrap().id;
    let snap = p2.read_snapshot();
    assert_eq!(snap.table(t2).unwrap().live_row_count(), 51);
    let txn = p2.begin();
    assert_eq!(
        txn.get_unique(t2, &[Value::Int(3)]).unwrap().unwrap().get(1),
        &Value::str("patched")
    );
    assert!(txn.get_unique(t2, &[Value::Int(100)]).unwrap().is_some());
    txn.rollback();
}

#[test]
fn pitr_style_bounded_replay() {
    let log = Arc::new(Log::in_memory());
    let files = Arc::new(MemFileStore::new());
    let p = Partition::new("t_p0", Arc::clone(&log), files.clone());
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    txn.insert(t, user(1, "early", 0.0)).unwrap();
    txn.commit().unwrap();
    let cut_lp = log.end_lp();
    let mut txn = p.begin();
    txn.insert(t, user(2, "late", 0.0)).unwrap();
    txn.commit().unwrap();

    // Restore only up to cut_lp: the "late" row must not exist.
    let p2 = Partition::recover("t_p0", Arc::clone(&log), files, None, Some(cut_lp)).unwrap();
    let t2 = p2.table_by_name("users").unwrap().id;
    let txn = p2.begin();
    assert!(txn.get_unique(t2, &[Value::Int(1)]).unwrap().is_some());
    assert!(txn.get_unique(t2, &[Value::Int(2)]).unwrap().is_none());
    txn.rollback();
}

#[test]
fn concurrent_writers_to_same_key_serialize() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut txn = p.begin();
    txn.insert(t, user(1, "base", 0.0)).unwrap();
    txn.commit().unwrap();

    let p2 = Arc::clone(&p);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let p = Arc::clone(&p2);
            std::thread::spawn(move || {
                // Each thread increments the score by 1, retrying conflicts.
                loop {
                    let mut txn = p.begin();
                    let r = txn.update_unique_with(t, &[Value::Int(1)], |row| {
                        let score = row.get(2).as_double().unwrap();
                        Row::new(vec![
                            Value::Int(1),
                            Value::str(format!("w{i}")),
                            Value::Double(score + 1.0),
                        ])
                    });
                    match r {
                        Ok(true) => {
                            txn.commit().unwrap();
                            return;
                        }
                        Ok(false) => panic!("row vanished"),
                        Err(e) if e.is_retryable() => {
                            txn.rollback();
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let txn = p.begin();
    let row = txn.get_unique(t, &[Value::Int(1)]).unwrap().unwrap();
    assert_eq!(row.get(2), &Value::Double(8.0), "all increments applied");
    txn.rollback();
}

#[test]
fn delete_at_segment_locations() {
    let p = new_partition();
    // No unique key: synthetic rowstore keys + full-scan DML path.
    let options = TableOptions::new()
        .with_sort_key(vec![0])
        .with_index("by_name", vec![1])
        .with_flush_threshold(32)
        .with_segment_rows(64);
    let t = p.create_table("events", users_schema(), options).unwrap();
    let mut txn = p.begin();
    for i in 0..40 {
        txn.insert(t, user(i, ["keep", "drop"][(i % 2) as usize], 0.0)).unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();

    // Locate all "drop" rows via the secondary index and delete them.
    let snap = p.read_snapshot();
    let probe = snap.table(t).unwrap().index_probe(&[1], &[Value::str("drop")]).unwrap().unwrap();
    let mut locations: Vec<RowLocation> = Vec::new();
    for (core, rows) in &probe.segments {
        for &r in rows {
            locations.push(RowLocation::Segment(Arc::clone(core), r));
        }
    }
    assert_eq!(locations.len(), 20);
    let mut txn = p.begin();
    assert_eq!(txn.delete_at(t, locations).unwrap(), 20);
    txn.commit().unwrap();

    let snap = p.read_snapshot();
    assert_eq!(snap.table(t).unwrap().live_row_count(), 20);
}

#[test]
fn flush_skips_locked_rows() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    let mut setup = p.begin();
    for i in 0..20 {
        setup.insert(t, user(i, "x", 0.0)).unwrap();
    }
    setup.commit().unwrap();

    // An open transaction holds a lock on id 0.
    let mut open = p.begin();
    open.update_unique(t, &[Value::Int(0)], user(0, "locked", 1.0)).unwrap();

    // Flush proceeds, skipping the locked row.
    p.flush_table(t, true).unwrap();
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    assert_eq!(ts.live_row_count(), 20);
    assert_eq!(ts.rowstore_rows().len(), 1, "locked row stayed in the rowstore");

    open.commit().unwrap();
    let snap = p.read_snapshot();
    assert_eq!(snap.table(t).unwrap().live_row_count(), 20);
}

#[test]
fn vacuum_reclaims_after_snapshot_release() {
    let p = new_partition();
    let t = p.create_table("users", users_schema(), users_options()).unwrap();
    for batch in 0..6 {
        let mut txn = p.begin();
        for i in 0..40 {
            txn.insert(t, user(batch * 40 + i, "row", 0.0)).unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    let pinned = p.read_snapshot(); // pins pre-merge state
    while p.merge_table(t).unwrap() {}

    let (reclaimed, _) = p.vacuum().unwrap();
    assert_eq!(reclaimed, 0, "snapshot still pins the merged-away segments");
    // The pinned snapshot still scans correctly.
    assert_eq!(pinned.table(t).unwrap().live_row_count(), 240);
    drop(pinned);
    let (reclaimed, _) = p.vacuum().unwrap();
    assert!(reclaimed > 0, "retired segments reclaimed once unpinned");
    // Data intact afterwards.
    let snap = p.read_snapshot();
    assert_eq!(snap.table(t).unwrap().live_row_count(), 240);
}
