//! Randomized battery for the group-commit pipeline (§3: commits are
//! durable once in the local WAL; group commit amortizes the fsync).
//!
//! Three properties, each over proptest-generated shapes:
//! - **acked ⇒ durable**: every key whose `commit()` returned is present
//!   after recovering a fresh partition from the durable log prefix alone;
//! - **monotonic timestamps**: commit timestamps across N racing
//!   committers are distinct and gapless — strictly monotonic per
//!   partition;
//! - **on/off equivalence**: the same single-threaded op sequence produces
//!   byte-identical log contents and an identical recovered state whether
//!   the group pipeline is on or off.

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_wal::Log;

fn kv_schema() -> Schema {
    Schema::new(vec![ColumnDef::new("k", DataType::Int64), ColumnDef::new("v", DataType::Int64)])
        .unwrap()
}

fn kv_options() -> TableOptions {
    TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_flush_threshold(16)
        .with_segment_rows(32)
}

fn new_partition(group_on: bool) -> (Arc<Partition>, u32) {
    let p = Partition::new("gc_p0", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    p.set_group_commit(group_on);
    let t = p.create_table("t", kv_schema(), kv_options()).unwrap();
    p.log.sync().unwrap();
    (p, t)
}

/// Recover a fresh partition from exactly the first `upto` log bytes.
fn recover_prefix(p: &Arc<Partition>, upto: u64) -> Arc<Partition> {
    let bytes = p.log.read_range(0, upto).unwrap();
    let log = Log::in_memory();
    log.append_raw(&bytes);
    Partition::recover("gc_rec", Arc::new(log), Arc::new(MemFileStore::new()), None, None).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// N committer threads race on one partition with the pipeline on.
    /// Afterwards: (a) every acked key survives recovery from the durable
    /// prefix alone, (b) the commit timestamps handed back are distinct and
    /// gapless (strictly monotonic per partition).
    #[test]
    fn racing_committers_acked_durable_and_ts_monotonic(
        n_threads in 2usize..=6,
        commits_per_thread in 1usize..=10,
        window_us in prop_oneof![1 => Just(0u64), 1 => Just(50), 1 => Just(200)],
    ) {
        let (p, t) = new_partition(true);
        p.set_group_flush_window_us(window_us);

        let mut handles = Vec::new();
        for tid in 0..n_threads {
            let p = Arc::clone(&p);
            handles.push(thread::spawn(move || {
                let mut out = Vec::new();
                for i in 0..commits_per_thread {
                    let k = (tid * 10_000 + i) as i64;
                    let mut txn = p.begin();
                    txn.insert(t, Row::new(vec![Value::Int(k), Value::Int(k * 7)])).unwrap();
                    let (ts, end_lp) = txn.commit().unwrap();
                    out.push((k, ts, end_lp));
                }
                out
            }));
        }
        let results: Vec<(i64, u64, u64)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        prop_assert_eq!(results.len(), n_threads * commits_per_thread);

        // (b) timestamps distinct and gapless.
        let mut tss: Vec<u64> = results.iter().map(|(_, ts, _)| *ts).collect();
        tss.sort_unstable();
        tss.dedup();
        prop_assert_eq!(tss.len(), results.len(), "commit timestamps must be distinct");
        prop_assert_eq!(
            tss[tss.len() - 1] - tss[0] + 1,
            results.len() as u64,
            "commit timestamps must be gapless"
        );

        // (a) every returned end_lp is already durable, and recovering from
        // the durable prefix alone reproduces every acked key.
        let durable = p.log.durable_lp();
        for (_, _, end_lp) in &results {
            prop_assert!(*end_lp <= durable, "acked position {end_lp} beyond durable {durable}");
        }
        let rp = recover_prefix(&p, durable);
        let txn = rp.begin();
        for (k, _, _) in &results {
            let got = txn.get_unique(t, &[Value::Int(*k)]).unwrap();
            let v = got.as_ref().and_then(|r| r.get(1).as_int().ok());
            prop_assert_eq!(v, Some(k * 7), "acked key {} lost after recovery", k);
        }
        txn.rollback();
    }

    /// The same deterministic single-threaded op sequence, run once with the
    /// pipeline on and once off, leaves byte-identical logs and recovers to
    /// identical states: the pipeline changes batching, never content.
    #[test]
    fn group_on_off_equivalence(seed in any::<u64>(), n_ops in 10usize..=60) {
        let (p_on, t_on) = new_partition(true);
        let (p_off, t_off) = new_partition(false);
        for (p, t) in [(&p_on, t_on), (&p_off, t_off)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut present: Vec<i64> = Vec::new();
            for _ in 0..n_ops {
                let mut txn = p.begin();
                let roll: u32 = rng.random_range(0..10);
                if roll < 5 || present.is_empty() {
                    let k: i64 = rng.random_range(0..1_000_000);
                    if !present.contains(&k) {
                        txn.insert(t, Row::new(vec![Value::Int(k), Value::Int(k + 1)])).unwrap();
                        present.push(k);
                    }
                } else if roll < 8 {
                    let k = present[rng.random_range(0..present.len())];
                    let v: i64 = rng.random_range(-1000..1000);
                    txn.update_unique(t, &[Value::Int(k)],
                        Row::new(vec![Value::Int(k), Value::Int(v)])).unwrap();
                } else {
                    let k = present.swap_remove(rng.random_range(0..present.len()));
                    txn.delete_unique(t, &[Value::Int(k)]).unwrap();
                }
                txn.commit().unwrap();
            }
        }
        let end_on = p_on.log.end_lp();
        let end_off = p_off.log.end_lp();
        prop_assert_eq!(end_on, end_off, "log lengths diverge");
        prop_assert_eq!(
            p_on.log.read_range(0, end_on).unwrap(),
            p_off.log.read_range(0, end_off).unwrap(),
            "log bytes diverge between group-commit on and off"
        );

        let ra = recover_prefix(&p_on, end_on);
        let rb = recover_prefix(&p_off, end_off);
        let (sa, sb) = (ra.read_snapshot(), rb.read_snapshot());
        let (ta, tb) = (sa.table(t_on).unwrap(), sb.table(t_off).unwrap());
        prop_assert_eq!(ta.live_row_count(), tb.live_row_count());
        let rows_a: Vec<(i64, i64)> = ta
            .rowstore_rows()
            .iter()
            .map(|(_, r)| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
            .collect();
        let rows_b: Vec<(i64, i64)> = tb
            .rowstore_rows()
            .iter()
            .map(|(_, r)| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
            .collect();
        prop_assert_eq!(rows_a, rows_b, "recovered states diverge");
    }
}
