//! Acceptance tests for the crash-recovery harness: the seeded smoke sweep,
//! byte-for-byte trace reproducibility, and targeted kill-point checks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use s2_blob::{BlobHealth, BreakerConfig, MemoryStore, ObjectStore, Uploader, UploaderConfig};
use s2_cluster::{StorageConfig, StorageService};
use s2_common::fault::{CrashPoint, FaultHook};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{DataFileStore, MemFileStore, Partition};
use s2_sim::{harness_lock, install_quiet_panic_hook, run_many, run_scenario, FaultPlan};
use s2_wal::Log;

/// The CI smoke: 200 randomized crash-recovery scenarios under a fixed
/// seed must uphold every invariant.
#[test]
fn smoke_200_scenarios_zero_violations() {
    let summary = run_many(42, 200, false);
    assert_eq!(summary.scenarios, 200);
    assert!(
        summary.failures.is_empty(),
        "invariant violations: {:?}",
        summary.failures.iter().map(|v| v.seed).collect::<Vec<_>>()
    );
    // The sweep must actually exercise the machinery, not vacuously pass.
    assert!(summary.crashes > 50, "only {} crashes injected", summary.crashes);
    assert!(summary.commits > 1000, "only {} commits", summary.commits);
    assert!(summary.pitr_checks > 100, "only {} PITR checks", summary.pitr_checks);
    assert!(summary.replica_scenarios > 20, "only {} replica runs", summary.replica_scenarios);
}

/// Same seed ⇒ identical kill-point trace and identical outcome.
#[test]
fn same_seed_reproduces_identical_trace() {
    for seed in [7u64, 1234, 0xDEAD] {
        let a = run_scenario(seed).expect("scenario passes");
        let b = run_scenario(seed).expect("scenario passes");
        assert_eq!(a.trace, b.trace, "trace diverged for seed {seed}");
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.pitr_checks, b.pitr_checks);
        assert_eq!(a.replica_mode, b.replica_mode);
    }
}

/// Different seeds explore different interleavings (not the same scripted
/// path every time).
#[test]
fn different_seeds_diverge() {
    let a = run_scenario(1).expect("scenario passes");
    let b = run_scenario(2).expect("scenario passes");
    assert_ne!(
        (a.trace.clone(), a.commits, a.steps),
        (b.trace.clone(), b.commits, b.steps),
        "seeds 1 and 2 produced identical runs"
    );
}

/// The uploader's per-attempt failpoint fires on its worker thread (error
/// injection only) and the bounded retry loop surfaces the failure.
#[test]
fn uploader_cross_thread_error_injection() {
    let _guard = harness_lock();
    let mut plan = FaultPlan::new(99);
    plan.site_any_thread("blob.uploader.attempt", 1.0, 0.0);
    s2_common::fault::install(Arc::new(plan) as Arc<dyn FaultHook>);

    let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    // A breaker that never opens: this test is about the per-job retry
    // budget surfacing the failure. (Under the default threshold a 100%
    // injection rate reads as an outage and the job parks instead.)
    let up = Uploader::with_config(
        Arc::clone(&store),
        UploaderConfig { threads: 1, ..UploaderConfig::default() },
        BlobHealth::with_config(
            "sim-inject",
            BreakerConfig { failure_threshold: u32::MAX, ..BreakerConfig::default() },
        ),
    );
    let outcome: Arc<Mutex<Option<bool>>> = Arc::new(Mutex::new(None));
    let flag = Arc::clone(&outcome);
    up.enqueue("k/fail", Arc::new(vec![1]), move |r| {
        *flag.lock().unwrap() = Some(r.is_err());
    })
    .unwrap();
    up.drain();
    assert_eq!(*outcome.lock().unwrap(), Some(true), "every attempt injected, job must fail");

    // Clear the plan: the same store works again.
    s2_common::fault::clear();
    let outcome2: Arc<Mutex<Option<bool>>> = Arc::new(Mutex::new(None));
    let flag2 = Arc::clone(&outcome2);
    up.enqueue("k/ok", Arc::new(vec![2]), move |r| {
        *flag2.lock().unwrap() = Some(r.is_err());
    })
    .unwrap();
    up.drain();
    assert_eq!(*outcome2.lock().unwrap(), Some(false));
    assert_eq!(store.get("k/ok").unwrap().as_slice(), &[2]);
}

fn small_partition() -> (Arc<Partition>, u32) {
    let p = Partition::new(
        "killpoint",
        Arc::new(Log::in_memory()),
        Arc::new(MemFileStore::new()) as Arc<dyn DataFileStore>,
    );
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int64),
        ColumnDef::new("v", DataType::Int64),
    ])
    .unwrap();
    let t = p.create_table("t", schema, TableOptions::new().with_unique("pk", vec![0])).unwrap();
    for i in 0..20 {
        let mut txn = p.begin();
        txn.insert(t, Row::new(vec![Value::Int(i), Value::Int(i * 10)])).unwrap();
        txn.commit().unwrap();
    }
    (p, t)
}

/// A crash between writing a snapshot and uploading it must leave the blob
/// store without the snapshot (so vacuum's horizon never advances early) —
/// and the next pass must publish it cleanly.
#[test]
fn snapshot_put_crash_keeps_blob_consistent() {
    let _guard = harness_lock();
    install_quiet_panic_hook();
    let (p, _t) = small_partition();
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cfg = StorageConfig {
        chunk_bytes: 1 << 20,
        snapshot_interval_bytes: 1,
        tick: Duration::from_millis(1),
        require_replicated: false,
    };
    let last_snap = Arc::new(AtomicU64::new(0));

    let mut plan = FaultPlan::new(5);
    plan.site("storage.snapshot.put", 0.0, 1.0);
    s2_common::fault::install(Arc::new(plan) as Arc<dyn FaultHook>);
    let outcome =
        catch_unwind(AssertUnwindSafe(|| StorageService::pass(&p, &blob, &cfg, &last_snap)));
    s2_common::fault::clear();

    let payload = outcome.expect_err("pass must crash at the kill point");
    let cp = payload.downcast_ref::<CrashPoint>().expect("CrashPoint payload");
    assert_eq!(cp.site, "storage.snapshot.put");
    // Log chunks uploaded before the kill point are fine; the snapshot must
    // not exist (its durability marker was never set).
    assert!(blob.list("killpoint/snapshots/").unwrap().is_empty());
    assert_eq!(last_snap.load(Ordering::Acquire), 0);

    // Uninstrumented retry publishes the snapshot.
    StorageService::pass(&p, &blob, &cfg, &last_snap).unwrap();
    assert_eq!(blob.list("killpoint/snapshots/").unwrap().len(), 1);
    assert!(last_snap.load(Ordering::Acquire) > 0);
}

/// The commit kill point fires before the redo record is appended: the log
/// never contains a record for the crashed commit.
#[test]
fn commit_crash_leaves_no_partial_record() {
    let _guard = harness_lock();
    install_quiet_panic_hook();
    let (p, t) = small_partition();
    let end_before = p.log.end_lp();

    let mut plan = FaultPlan::new(11);
    plan.site("core.commit.log", 0.0, 1.0);
    s2_common::fault::install(Arc::new(plan) as Arc<dyn FaultHook>);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut txn = p.begin();
        txn.insert(t, Row::new(vec![Value::Int(777), Value::Int(1)])).unwrap();
        txn.commit()
    }));
    s2_common::fault::clear();

    let payload = outcome.expect_err("commit must crash at the kill point");
    assert!(payload.downcast_ref::<CrashPoint>().is_some());
    assert_eq!(p.log.end_lp(), end_before, "crashed commit appended log bytes");
}
