//! Integration tests for the blob-outage drill: the seeded scenario upholds
//! its invariants across a seed sweep, exercises a genuine outage window,
//! and replays deterministically.

use s2_sim::{run_outage_many, run_outage_scenario};

#[test]
fn outage_drills_uphold_invariants() {
    let summary = run_outage_many(0xB10B, 4, false);
    for v in &summary.failures {
        eprintln!("{v}");
    }
    assert!(summary.failures.is_empty(), "{} drill(s) violated invariants", summary.failures.len());
    // The drill is only meaningful if commits actually landed while the
    // store rejected 100% of traffic and a backlog built up.
    assert!(summary.commits_during_outage > 0, "no commits acked during outage");
    assert!(summary.backlog_peak > 0, "no upload backlog ever accumulated");
}

#[test]
fn same_seed_replays_identical_trace() {
    let a = run_outage_scenario(90210).expect("drill failed");
    let b = run_outage_scenario(90210).expect("drill failed on replay");
    assert_eq!(a.trace, b.trace, "outage drill is not seed-deterministic");
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.commits_during_outage, b.commits_during_outage);
}
