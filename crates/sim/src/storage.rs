//! Deterministic file stores for the harness.
//!
//! [`SimFileStore`] replaces the background-threaded `BlobBackedFileStore`
//! with a synchronous equivalent: writes land locally, and the harness
//! explicitly pumps pending uploads to the blob store from the simulation
//! thread (so blob faults and crashes hit at deterministic points).
//! [`BlobReadFileStore`] serves restores: reads come from blob objects, with
//! a local overlay for anything the restored partition writes afterwards.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use s2_common::sync::{rank, Mutex};

use s2_blob::ObjectStore;
use s2_common::{Error, Result};
use s2_core::DataFileStore;

#[derive(Default)]
struct SimFiles {
    local: BTreeMap<String, Arc<Vec<u8>>>,
    uploaded: BTreeSet<String>,
}

/// Local file store with harness-pumped uploads (see module docs).
pub struct SimFileStore {
    inner: Mutex<SimFiles>,
}

impl Default for SimFileStore {
    fn default() -> SimFileStore {
        SimFileStore::new()
    }
}

impl SimFileStore {
    /// An empty store.
    pub fn new() -> SimFileStore {
        SimFileStore { inner: Mutex::new(&rank::SIM_STORAGE, SimFiles::default()) }
    }

    /// Upload every local file not yet in blob storage. Returns the number
    /// uploaded. Stops at the first failing put (injected faults included) —
    /// already-uploaded files stay marked, so a retry resumes where it left
    /// off.
    pub fn upload_pending(&self, blob: &Arc<dyn ObjectStore>) -> Result<usize> {
        let todo: Vec<(String, Arc<Vec<u8>>)> = {
            let inner = self.inner.lock();
            inner
                .local
                .iter()
                .filter(|(k, _)| !inner.uploaded.contains(*k))
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        let mut n = 0;
        for (key, bytes) in todo {
            blob.put(&key, bytes)?;
            self.inner.lock().uploaded.insert(key);
            n += 1;
        }
        Ok(n)
    }

    /// Files written but not yet uploaded.
    pub fn pending_uploads(&self) -> usize {
        let inner = self.inner.lock();
        inner.local.keys().filter(|k| !inner.uploaded.contains(*k)).count()
    }

    /// Number of files held locally.
    pub fn local_files(&self) -> usize {
        self.inner.lock().local.len()
    }
}

impl DataFileStore for SimFileStore {
    fn write_file(&self, name: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.local.insert(name.to_string(), bytes);
        // A crash-recovered engine can reuse a file name with different
        // content; the stale blob object must not shadow the new bytes.
        inner.uploaded.remove(name);
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        self.inner
            .lock()
            .local
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("sim file {name}")))
    }

    fn delete_file(&self, name: &str) -> Result<()> {
        // Local copy only — the blob object is history (continuous backup).
        self.inner.lock().local.remove(name);
        Ok(())
    }
}

/// Read-through-blob store for restored partitions: blob objects are the
/// source of truth, local writes overlay them.
pub struct BlobReadFileStore {
    blob: Arc<dyn ObjectStore>,
    overlay: Mutex<HashMap<String, Arc<Vec<u8>>>>,
}

impl BlobReadFileStore {
    /// A store reading through `blob`.
    pub fn new(blob: Arc<dyn ObjectStore>) -> BlobReadFileStore {
        BlobReadFileStore { blob, overlay: Mutex::new(&rank::SIM_STORAGE, HashMap::new()) }
    }
}

impl DataFileStore for BlobReadFileStore {
    fn write_file(&self, name: &str, bytes: Arc<Vec<u8>>) -> Result<()> {
        self.overlay.lock().insert(name.to_string(), bytes);
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Arc<Vec<u8>>> {
        if let Some(b) = self.overlay.lock().get(name) {
            return Ok(Arc::clone(b));
        }
        self.blob.get(name)
    }

    fn delete_file(&self, name: &str) -> Result<()> {
        self.overlay.lock().remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_blob::MemoryStore;

    #[test]
    fn rewrite_clears_uploaded_mark() {
        let fs = SimFileStore::new();
        let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        fs.write_file("p/files/a", Arc::new(vec![1])).unwrap();
        assert_eq!(fs.upload_pending(&blob).unwrap(), 1);
        assert_eq!(fs.pending_uploads(), 0);
        // Same name, new bytes (post-crash file-id reuse): must re-upload.
        fs.write_file("p/files/a", Arc::new(vec![2])).unwrap();
        assert_eq!(fs.pending_uploads(), 1);
        assert_eq!(fs.upload_pending(&blob).unwrap(), 1);
        assert_eq!(blob.get("p/files/a").unwrap().as_slice(), &[2]);
    }

    #[test]
    fn delete_keeps_blob_history() {
        let fs = SimFileStore::new();
        let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        fs.write_file("p/files/a", Arc::new(vec![7])).unwrap();
        fs.upload_pending(&blob).unwrap();
        fs.delete_file("p/files/a").unwrap();
        assert!(fs.read_file("p/files/a").is_err());
        assert_eq!(blob.get("p/files/a").unwrap().as_slice(), &[7]);
    }
}
