//! One crash-recovery scenario: a seed-driven randomized workload over a
//! full engine stack (partition + WAL + replica + blob storage service),
//! interleaved with injected faults and crashes, checked after every
//! recovery against the [`Oracle`] model.
//!
//! A scenario is a pure function of its seed. Workload choices, fault
//! decisions, torn-tail shapes — everything draws from seeded PRNG streams,
//! so a failing seed replays the identical kill-point trace byte for byte.
//!
//! Invariants checked (after every crash recovery, and again at the end):
//! - every acknowledged commit survives (acked_lp ≤ surviving log prefix);
//! - no unacknowledged/aborted write is visible (state == model at the
//!   surviving position);
//! - the unique index, delete bit-vectors, and live row counts agree with
//!   the table contents;
//! - blob history never runs ahead of the surviving timeline (uploaded ≤
//!   survivor position);
//! - a fresh replica fed the whole stream converges to master state;
//! - PITR to every captured position reproduces the model state of record.

use std::collections::btree_map::Entry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Once};

use s2_common::sync::{rank, Mutex, MutexGuard};
use std::time::Duration;

use crossbeam::channel::Receiver;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2_blob::{FaultyStore, MemoryStore, ObjectStore};
use s2_cluster::{
    empty_replica_partition, find_snapshot, max_uploaded_lp, restore_from_blob, StorageConfig,
    StorageService, StreamApplier,
};
use s2_common::fault::{CrashPoint, FaultHook};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, LogPosition, Row, Schema, TableOptions, Value};
use s2_core::{DataFileStore, Partition};
use s2_wal::{valid_prefix_len, Log, LogChunk};

use crate::oracle::{Model, Oracle};
use crate::plan::FaultPlan;
use crate::storage::{BlobReadFileStore, SimFileStore};

/// Partition name used by every scenario.
pub const PARTITION: &str = "sim_p0";

/// Outcome of a clean (violation-free) scenario.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Seed that produced this scenario.
    pub seed: u64,
    /// Workload steps executed.
    pub steps: usize,
    /// Transactions committed (and recorded in the oracle).
    pub commits: u64,
    /// Injected crashes survived (kill points hit).
    pub crashes: u64,
    /// Recoveries performed (crash recoveries; ≥ crashes can differ when a
    /// crash strikes again during recovery and the restart retries).
    pub recoveries: u64,
    /// Injected (non-crash) errors observed.
    pub injected_errors: u64,
    /// Point-in-time restores performed and verified.
    pub pitr_checks: u64,
    /// Whether this scenario ran with a synchronous replica (failover mode).
    pub replica_mode: bool,
    /// Whether commits went through the group-commit pipeline.
    pub group_commit: bool,
    /// The full injection trace (`site#hit:crash` / `site#hit:error`).
    pub trace: Vec<String>,
}

/// How a scenario chooses the commit path.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum GroupMode {
    /// Coin-flip per seed: the default sweep covers both the group-commit
    /// pipeline and the legacy per-commit append path.
    Random,
    /// Force the group-commit pipeline on and boost its crash sites — the
    /// dedicated `--scenario group` drill.
    Forced,
}

/// An invariant violation: the seed reproduces it exactly.
#[derive(Debug)]
pub struct Violation {
    /// Seed to replay.
    pub seed: u64,
    /// What went wrong.
    pub message: String,
    /// Injection decisions up to the failure.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "seed {}: {}", self.seed, self.message)?;
        write!(f, "  kill-point trace ({} events): {}", self.trace.len(), self.trace.join(" "))
    }
}

static SIM_LOCK: Mutex<()> = Mutex::new(&rank::SIM_HARNESS, ());

/// Serialize access to the process-global fault hook. Every test that
/// installs a plan must hold this for its duration; `run_scenario` takes it
/// internally.
pub fn harness_lock() -> MutexGuard<'static, ()> {
    SIM_LOCK.lock()
}

static HOOK_INIT: Once = Once::new();

/// Replace the global event ring's wall clock with a logical tick counter.
/// Event timestamps then depend only on the order events are recorded, so a
/// scenario's event trace is byte-identical for identical seeds. First
/// installer wins process-wide; idempotent across scenarios.
pub fn install_logical_event_clock() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    s2_obs::global()
        .events()
        .set_clock(Box::new(|| TICKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)));
}

/// Silence the default panic printer for injected `CrashPoint` panics (they
/// are simulated power losses, not bugs); forward everything else.
pub fn install_quiet_panic_hook() {
    HOOK_INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashPoint>().is_none() {
                prev(info);
            }
        }));
    });
}

struct FaultGuard;

impl Drop for FaultGuard {
    fn drop(&mut self) {
        s2_common::fault::clear();
    }
}

/// A synchronously-driven replica: the harness pumps its stream explicitly
/// (no background thread), so crash/ack interleavings are deterministic.
struct SyncReplica {
    partition: Arc<Partition>,
    applier: StreamApplier,
    rx: Receiver<LogChunk>,
}

struct Engine {
    master: Arc<Partition>,
    files: Arc<SimFileStore>,
    blob: Arc<dyn ObjectStore>,
    table: u32,
    key_space: i64,
    replica: Option<SyncReplica>,
    last_snap: Arc<AtomicU64>,
    cfg: StorageConfig,
    /// `(log position, model)` states that were fully uploaded to blob —
    /// the PITR targets.
    captures: Vec<(LogPosition, Model)>,
    temp_dir: PathBuf,
    restarts: u32,
    /// Segments reclaimed by vacuum so far (file deletions may have
    /// happened only if this is non-zero).
    vacuumed: usize,
    commits: u64,
    /// Whether commits run through the group-commit pipeline. Recovery
    /// builds fresh partitions (which default to the env setting), so the
    /// choice is re-applied after every restart/promotion.
    group_on: bool,
}

enum RecErr {
    /// Transient (injected) failure during recovery: restart the restart.
    Retry(String),
    /// Invariant violation.
    Violation(String),
}

/// Run one scenario. `Err` carries the violation with its replayable trace.
pub fn run_scenario(seed: u64) -> Result<ScenarioReport, Violation> {
    run_scenario_mode(seed, GroupMode::Random)
}

/// Run one group-commit crash drill: the pipeline is forced on and the
/// `wal.group.*` crash sites fire at boosted rates.
pub fn run_group_scenario(seed: u64) -> Result<ScenarioReport, Violation> {
    run_scenario_mode(seed, GroupMode::Forced)
}

fn run_scenario_mode(seed: u64, mode: GroupMode) -> Result<ScenarioReport, Violation> {
    let _guard = harness_lock();
    install_quiet_panic_hook();
    install_logical_event_clock();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_5353_494d_5531);
    let replica_mode = rng.random_bool(0.5);
    // Drawn unconditionally so both modes consume the same PRNG stream: a
    // seed replays the identical workload whether forced or not.
    let group_coin = rng.random_bool(0.5);
    let group_on = mode == GroupMode::Forced || group_coin;
    let steps = rng.random_range(40..90_usize);
    let key_space: i64 = rng.random_range(8..48);
    let cfg = StorageConfig {
        chunk_bytes: rng.random_range(64..512_usize),
        snapshot_interval_bytes: rng.random_range(200..2000_u64),
        tick: Duration::from_millis(1),
        require_replicated: replica_mode,
    };

    let viol = |message: String, trace: Vec<String>| Violation { seed, message, trace };

    // Engine setup runs un-instrumented: the CreateTable record and its sync
    // are the fixed starting point of every timeline.
    let blob: Arc<dyn ObjectStore> =
        Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    let files = Arc::new(SimFileStore::new());
    let master = Partition::new(
        PARTITION,
        Arc::new(Log::in_memory()),
        Arc::clone(&files) as Arc<dyn DataFileStore>,
    );
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int64),
        ColumnDef::new("v", DataType::Int64),
    ])
    .map_err(|e| viol(format!("schema: {e}"), vec![]))?;
    let options = TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_flush_threshold(rng.random_range(4..16_usize))
        .with_segment_rows(rng.random_range(4..24_usize));
    master.set_group_commit(group_on);
    let table = master
        .create_table("t", schema, options)
        .map_err(|e| viol(format!("create_table: {e}"), vec![]))?;
    master.log.sync().map_err(|e| viol(format!("setup sync: {e}"), vec![]))?;

    let mut engine = Engine {
        master,
        files,
        blob,
        table,
        key_space,
        replica: None,
        last_snap: Arc::new(AtomicU64::new(0)),
        cfg,
        captures: Vec::new(),
        temp_dir: std::env::temp_dir().join(format!("s2sim-{}-{seed:016x}", std::process::id())),
        restarts: 0,
        vacuumed: 0,
        commits: 0,
        group_on,
    };
    if replica_mode {
        engine.replica =
            Some(new_sync_replica(&engine.master, &engine.files).map_err(|m| viol(m, vec![]))?);
    }

    let group_boost = if mode == GroupMode::Forced { 4.0 } else { 1.0 };
    let plan = Arc::new(build_plan(seed, &mut rng, group_boost));
    s2_common::fault::install(Arc::clone(&plan) as Arc<dyn FaultHook>);
    let _fault_guard = FaultGuard;

    let mut oracle = Oracle::new();
    oracle.ack_up_to(engine.master.log.durable_lp());
    let mut crashes = 0u64;
    let mut recoveries = 0u64;
    let mut pitr_checks = 0u64;

    for _ in 0..steps {
        let outcome =
            catch_unwind(AssertUnwindSafe(|| do_step(&mut engine, &mut oracle, &mut rng, &plan)));
        match outcome {
            Ok(Ok(n)) => pitr_checks += n,
            Ok(Err(message)) => return Err(viol(message, plan.trace())),
            Err(payload) => {
                if payload.downcast_ref::<CrashPoint>().is_some() {
                    crashes += 1;
                    recover_after_crash(&mut engine, &mut oracle, &mut rng, &plan)
                        .map_err(|m| viol(m, plan.trace()))?;
                    recoveries += 1;
                } else {
                    return Err(viol(
                        format!("unexpected panic: {}", panic_message(&payload)),
                        plan.trace(),
                    ));
                }
            }
        }
    }

    plan.set_quiet(true);
    let final_checks = finale(&mut engine, &mut oracle).map_err(|m| viol(m, plan.trace()))?;
    pitr_checks += final_checks;

    let _ = std::fs::remove_dir_all(&engine.temp_dir);
    Ok(ScenarioReport {
        seed,
        steps,
        commits: engine.commits,
        crashes,
        recoveries,
        injected_errors: plan.error_count(),
        pitr_checks,
        replica_mode,
        group_commit: group_on,
        trace: plan.trace(),
    })
}

fn build_plan(seed: u64, rng: &mut StdRng, group_boost: f64) -> FaultPlan {
    let mut p = FaultPlan::new(seed);
    let s: f64 = rng.random_range(0.5..1.5);
    // Group-commit pipeline kill points: leader about to append the drained
    // batch, batch appended but not yet synced, and batch durable but
    // leadership not yet handed off. Crash-only — the sites sit on a path
    // where an error return would wedge parked followers.
    p.site("wal.group.append", 0.0, 0.012 * s * group_boost);
    p.site("wal.group.sync", 0.0, 0.012 * s * group_boost);
    p.site("wal.group.handoff", 0.0, 0.012 * s * group_boost);
    p.site("wal.append", 0.0, 0.012 * s);
    p.site("wal.sync", 0.04 * s, 0.012 * s);
    p.site("core.commit.log", 0.0, 0.012 * s);
    p.site("core.flush.write_files", 0.0, 0.04 * s);
    p.site("core.flush.log", 0.0, 0.04 * s);
    p.site("core.merge.write_files", 0.04 * s, 0.03 * s);
    p.site("core.merge.log", 0.0, 0.03 * s);
    p.site("blob.put", 0.08 * s, 0.015 * s);
    p.site("blob.get", 0.05 * s, 0.0);
    p.site("storage.snapshot.put", 0.0, 0.08 * s);
    p.site("pitr.restore", 0.10 * s, 0.0);
    p
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn injected(e: &s2_common::Error) -> bool {
    matches!(e, s2_common::Error::Unavailable(_))
}

// ---------------------------------------------------------------- workload

/// One workload step. Returns the number of PITR checks performed (probe
/// steps verify restores inline).
fn do_step(
    e: &mut Engine,
    o: &mut Oracle,
    rng: &mut StdRng,
    plan: &FaultPlan,
) -> Result<u64, String> {
    let roll: u32 = rng.random_range(0..100);
    match roll {
        0..=44 => {
            let commit = rng.random_bool(0.9);
            step_txn(e, o, rng, commit)?;
        }
        45..=51 => step_txn(e, o, rng, false)?,
        52..=61 => {
            let force = rng.random_bool(0.5);
            e.master.flush_table(e.table, force).map_err(|er| format!("flush failed: {er}"))?;
        }
        62..=68 => match e.master.merge_table(e.table) {
            Ok(_) => {}
            Err(er) if injected(&er) => {}
            Err(er) => return Err(format!("merge failed: {er}")),
        },
        69..=73 => {
            if e.replica.is_none() {
                // Replica scenarios retain all files: a new replica streams
                // the log from position 0, so file GC (snapshot-provisioned
                // replicas) is out of scope there.
                let (segs, _) = e.master.vacuum().map_err(|er| format!("vacuum failed: {er}"))?;
                e.vacuumed += segs;
            } else {
                step_upload(e)?;
            }
        }
        74..=83 => step_upload(e)?,
        84..=89 => {
            if e.replica.is_some() {
                let applied = drain_replica(e)?;
                o.ack_up_to(applied);
            } else {
                match e.master.log.sync() {
                    Ok(durable) => o.ack_up_to(durable),
                    Err(er) if injected(&er) => {}
                    Err(er) => return Err(format!("sync failed: {er}")),
                }
            }
        }
        90..=94 => {
            if e.captures.len() < 3 {
                plan.set_quiet(true);
                let res = step_capture(e, o);
                plan.set_quiet(false);
                res?;
            } else {
                step_txn(e, o, rng, true)?;
            }
        }
        _ => return step_pitr_probe(e, rng),
    }
    Ok(0)
}

fn step_txn(e: &mut Engine, o: &mut Oracle, rng: &mut StdRng, commit: bool) -> Result<(), String> {
    // The txn's expected view: the committed model plus its own writes.
    let mut scratch = o.model.clone();
    let mut txn = e.master.begin();
    let nops: usize = rng.random_range(1..=4);
    for _ in 0..nops {
        let k: i64 = rng.random_range(0..e.key_space);
        let key = [Value::Int(k)];
        let choice: u32 = rng.random_range(0..10);
        match scratch.entry(k) {
            Entry::Occupied(mut slot) => {
                if choice < 4 {
                    let v: i64 = rng.random_range(-1000..1000);
                    let updated = txn
                        .update_unique(e.table, &key, Row::new(vec![Value::Int(k), Value::Int(v)]))
                        .map_err(|er| format!("update_unique({k}) failed: {er}"))?;
                    if !updated {
                        return Err(format!("update_unique missed present key {k}"));
                    }
                    slot.insert(v);
                } else if choice < 7 {
                    let deleted = txn
                        .delete_unique(e.table, &key)
                        .map_err(|er| format!("delete_unique({k}) failed: {er}"))?;
                    if !deleted {
                        return Err(format!("delete_unique missed present key {k}"));
                    }
                    slot.remove();
                } else {
                    let got = txn
                        .get_unique(e.table, &key)
                        .map_err(|er| format!("get_unique({k}) failed: {er}"))?;
                    let got_v = got.as_ref().and_then(|r| r.get(1).as_int().ok());
                    if got_v != Some(*slot.get()) {
                        return Err(format!(
                            "read-your-writes divergence at key {k}: engine {:?}, expected {:?}",
                            got_v,
                            Some(*slot.get())
                        ));
                    }
                }
            }
            Entry::Vacant(slot) => {
                if choice < 7 {
                    let v: i64 = rng.random_range(-1000..1000);
                    txn.insert(e.table, Row::new(vec![Value::Int(k), Value::Int(v)]))
                        .map_err(|er| format!("insert of absent key {k} failed: {er}"))?;
                    slot.insert(v);
                } else {
                    let got = txn
                        .get_unique(e.table, &key)
                        .map_err(|er| format!("get_unique({k}) failed: {er}"))?;
                    if got.is_some() {
                        return Err(format!("phantom row at absent key {k}"));
                    }
                }
            }
        }
    }
    if !commit {
        txn.rollback();
        return Ok(());
    }
    // Stash the would-be post-commit state before calling into the engine:
    // with the group-commit pipeline a kill point can fire after the leader
    // made the record durable but before `commit()` returns, so the record
    // may survive recovery even though this call never completes. Recovery
    // reconciles against the stash (durable-but-unacknowledged is legal).
    o.pending = Some(scratch.clone());
    let (_ts, end_lp) = match txn.commit() {
        Ok(v) => v,
        Err(er) => {
            o.pending = None;
            return Err(format!("commit failed: {er}"));
        }
    };
    o.pending = None;
    o.record_commit(end_lp, scratch);
    e.commits += 1;
    // The client sometimes waits for durability (sync / replica ack) before
    // treating the commit as acknowledged; only acknowledged commits are
    // required to survive a crash.
    if e.replica.is_some() {
        // Replica-mode acks only come from replica application: the failover
        // survivor is the replica's applied prefix, so local durability
        // (which group commit provides on every return) never acks here.
        if rng.random_bool(0.6) {
            let applied = drain_replica(e)?;
            o.ack_up_to(applied);
        }
    } else if e.group_on {
        // Group commit returned ⇒ the leader's fsync covered this record:
        // the commit is acknowledged-durable the moment it returns. This is
        // the durability oracle for the pipeline — any crash after this
        // point that loses the record is a violation.
        o.ack_up_to(end_lp);
    } else if rng.random_bool(0.5) {
        match e.master.log.sync() {
            Ok(durable) => o.ack_up_to(durable),
            Err(er) if injected(&er) => {}
            Err(er) => return Err(format!("post-commit sync failed: {er}")),
        }
    }
    Ok(())
}

fn step_upload(e: &mut Engine) -> Result<(), String> {
    match StorageService::pass(&e.master, &e.blob, &e.cfg, &e.last_snap) {
        Ok(()) => {}
        Err(er) if injected(&er) => {}
        Err(er) => return Err(format!("storage pass failed: {er}")),
    }
    match e.files.upload_pending(&e.blob) {
        Ok(_) => {}
        Err(er) if injected(&er) => {}
        Err(er) => return Err(format!("file upload failed: {er}")),
    }
    Ok(())
}

/// Pump the replica stream dry and acknowledge the applied position back to
/// the master (the replica "acks" what it has applied).
fn drain_replica(e: &mut Engine) -> Result<LogPosition, String> {
    let Some(sr) = e.replica.as_mut() else { return Ok(0) };
    while let Ok(chunk) = sr.rx.try_recv() {
        sr.applier
            .feed(&sr.partition, &chunk)
            .map_err(|er| format!("replica apply failed: {er}"))?;
    }
    let applied = sr.applier.applied_lp();
    e.master.log.set_replicated_lp(applied);
    Ok(applied)
}

fn new_sync_replica(
    master: &Arc<Partition>,
    files: &Arc<SimFileStore>,
) -> Result<SyncReplica, String> {
    let (backlog, rx) = master.log.subscribe(0).map_err(|er| format!("subscribe: {er}"))?;
    let partition =
        empty_replica_partition(PARTITION, Arc::clone(files) as Arc<dyn DataFileStore>, 0);
    let mut applier = StreamApplier::new(0);
    if !backlog.bytes.is_empty() {
        applier
            .feed(&partition, &backlog)
            .map_err(|er| format!("replica backlog apply failed: {er}"))?;
    }
    master.log.set_replicated_lp(applier.applied_lp());
    Ok(SyncReplica { partition, applier, rx })
}

/// Fully upload log + files + (eventually) a snapshot, then record the
/// current state as a PITR target. Runs quiet (caller's responsibility).
fn step_capture(e: &mut Engine, o: &mut Oracle) -> Result<(), String> {
    full_upload(e)?;
    let end = e.master.log.end_lp();
    o.ack_up_to(end);
    if e.captures.last().map(|(lp, _)| *lp) != Some(end) {
        e.captures.push((end, o.model.clone()));
    }
    Ok(())
}

/// Drive uploads until blob storage covers the entire log and every data
/// file. Must run with injection quiet.
fn full_upload(e: &mut Engine) -> Result<(), String> {
    for _ in 0..10 {
        if e.replica.is_some() {
            drain_replica(e)?;
        }
        StorageService::pass(&e.master, &e.blob, &e.cfg, &e.last_snap)
            .map_err(|er| format!("storage pass (quiet) failed: {er}"))?;
        e.files
            .upload_pending(&e.blob)
            .map_err(|er| format!("file upload (quiet) failed: {er}"))?;
        if e.master.log.uploaded_lp() == e.master.log.end_lp() && e.files.pending_uploads() == 0 {
            return Ok(());
        }
    }
    Err("full upload did not converge with injection quiet".to_string())
}

/// Restore to a random captured position mid-run and diff against the
/// captured model. Injected blob faults are retried a few times.
fn step_pitr_probe(e: &Engine, rng: &mut StdRng) -> Result<u64, String> {
    if e.captures.is_empty() {
        return Ok(0);
    }
    let idx: usize = rng.random_range(0..e.captures.len());
    let (lp, model) = &e.captures[idx];
    for _ in 0..6 {
        let fs: Arc<dyn DataFileStore> = Arc::new(BlobReadFileStore::new(Arc::clone(&e.blob)));
        match restore_from_blob(&e.blob, PARTITION, fs, Some(*lp)) {
            Ok(rp) => {
                let (state, _) = engine_state(&rp, e.table)?;
                if &state != model {
                    return Err(format!(
                        "PITR divergence at lp {lp}: restored {} keys, expected {}",
                        state.len(),
                        model.len()
                    ));
                }
                return Ok(1);
            }
            Err(er) if er.is_retryable() => continue,
            Err(er) => return Err(format!("PITR restore to {lp} failed: {er}")),
        }
    }
    Ok(0) // persistently unavailable (injected) — tolerated
}

// ---------------------------------------------------------------- recovery

fn recover_after_crash(
    e: &mut Engine,
    o: &mut Oracle,
    rng: &mut StdRng,
    plan: &FaultPlan,
) -> Result<(), String> {
    if e.replica.is_some() {
        // Failover machinery is the environment, not the system under test:
        // run it quiet so promotion always completes.
        plan.set_quiet(true);
        let res = promote(e, o);
        plan.set_quiet(false);
        res?;
        reconcile_pending(e, o)?;
        return check_invariants(e, o);
    }
    // A single node restarts over its surviving bytes. Faults can strike
    // again *during* recovery; each attempt redraws, the last runs quiet.
    let mut last_retry = String::new();
    for attempt in 0..8 {
        let quiet = attempt == 7;
        if quiet {
            plan.set_quiet(true);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| local_restart(e, o, rng, quiet)));
        if quiet {
            plan.set_quiet(false);
        }
        match outcome {
            Ok(Ok(())) => {
                reconcile_pending(e, o)?;
                return check_invariants(e, o);
            }
            Ok(Err(RecErr::Violation(m))) => return Err(m),
            Ok(Err(RecErr::Retry(reason))) => {
                last_retry = reason;
                continue;
            }
            Err(payload) if payload.downcast_ref::<CrashPoint>().is_some() => continue,
            Err(payload) => {
                return Err(format!(
                    "unexpected panic during recovery: {}",
                    panic_message(&payload)
                ))
            }
        }
    }
    Err(format!("recovery did not complete within its attempt budget (last: {last_retry})"))
}

/// Simulated node restart: surviving bytes are the durable prefix plus an
/// arbitrary (possibly corrupted) fragment of the unsynced tail — exactly
/// what a torn write leaves on disk. Mutates the engine/oracle only on
/// success.
fn local_restart(
    e: &mut Engine,
    o: &mut Oracle,
    rng: &mut StdRng,
    force_snapshot: bool,
) -> Result<(), RecErr> {
    let old_log = &e.master.log;
    let durable = old_log.durable_lp();
    let end = old_log.end_lp();
    let mut bytes = old_log
        .read_range(0, durable)
        .map_err(|er| RecErr::Violation(format!("reading durable prefix: {er}")))?;
    if end > durable && rng.random_bool(0.7) {
        let extra: u64 = rng.random_range(0..=(end - durable));
        if extra > 0 {
            let mut frag = old_log
                .read_range(durable, durable + extra)
                .map_err(|er| RecErr::Violation(format!("reading unsynced tail: {er}")))?;
            if rng.random_bool(0.25) {
                let i: usize = rng.random_range(0..frag.len());
                let bit: u32 = rng.random_range(0..8);
                frag[i] ^= 1u8 << bit;
            }
            bytes.extend_from_slice(&frag);
        }
    }
    let vp = valid_prefix_len(&bytes) as u64;
    if o.acked_lp > vp {
        return Err(RecErr::Violation(format!(
            "acknowledged commit lost: acked_lp {} > surviving prefix {vp}",
            o.acked_lp
        )));
    }

    // Rebuild the log over the survivors — half the time through a real
    // file and `Log::open` (exercising its torn-tail truncation), half
    // in-memory over the already-validated prefix.
    let log: Arc<Log> = if rng.random_bool(0.4) {
        std::fs::create_dir_all(&e.temp_dir)
            .map_err(|er| RecErr::Retry(format!("temp dir: {er}")))?;
        let path = e.temp_dir.join(format!("restart-{}.log", e.restarts));
        std::fs::write(&path, &bytes).map_err(|er| RecErr::Retry(format!("temp write: {er}")))?;
        let l = Log::open(&path)
            .map_err(|er| RecErr::Violation(format!("Log::open over torn file: {er}")))?;
        if l.end_lp() != vp {
            return Err(RecErr::Violation(format!(
                "Log::open recovered to {}, expected valid prefix {vp}",
                l.end_lp()
            )));
        }
        Arc::new(l)
    } else {
        let l = Log::in_memory();
        l.append_raw(&bytes[..vp as usize]);
        Arc::new(l)
    };
    match log.sync() {
        Ok(_) => {}
        Err(er) if er.is_retryable() => return Err(RecErr::Retry(format!("restart sync: {er}"))),
        Err(er) => return Err(RecErr::Violation(format!("restart sync: {er}"))),
    }

    let use_snapshot = force_snapshot || rng.random_bool(0.5);
    let snapshot = if use_snapshot {
        match find_snapshot(&e.blob, PARTITION, Some(vp)) {
            Ok(s) => s,
            Err(er) if er.is_retryable() => None, // blob fault: fall back to log-only replay
            Err(er) => return Err(RecErr::Violation(format!("find_snapshot: {er}"))),
        }
    } else {
        None
    };
    let fs: Arc<dyn DataFileStore> = Arc::clone(&e.files) as Arc<dyn DataFileStore>;
    let recovered =
        match Partition::recover(PARTITION, Arc::clone(&log), fs, snapshot.as_ref(), None) {
            Ok(p) => p,
            Err(s2_common::Error::NotFound(m)) if snapshot.is_none() && e.vacuumed > 0 => {
                // Vacuum deleted files only replay-from-snapshot can skip;
                // log-only replay legitimately needs the snapshot. Retry (the
                // final quiet attempt always takes the snapshot path).
                return Err(RecErr::Retry(format!("log-only replay needs snapshot: {m}")));
            }
            Err(er) => return Err(RecErr::Violation(format!("recovery failed: {er}"))),
        };

    match max_uploaded_lp(&e.blob, PARTITION) {
        Ok(up) => {
            if up > vp {
                return Err(RecErr::Violation(format!(
                    "blob log ({up}) ahead of surviving bytes ({vp}): unsafe upload"
                )));
            }
            log.mark_uploaded(up);
        }
        Err(er) if er.is_retryable() => {} // unknown watermark: chunks re-upload later
        Err(er) => return Err(RecErr::Violation(format!("max_uploaded_lp: {er}"))),
    }

    // Recovery builds a fresh partition, which defaults to the env setting:
    // re-apply this scenario's commit-path choice.
    recovered.set_group_commit(e.group_on);
    e.master = recovered;
    e.restarts += 1;
    o.rewind_to(vp);
    Ok(())
}

/// Replica failover: the surviving replica finishes applying its stream and
/// becomes the new master; a fresh replica re-attaches from position 0.
fn promote(e: &mut Engine, o: &mut Oracle) -> Result<(), String> {
    let SyncReplica { partition, mut applier, rx } =
        e.replica.take().expect("promote requires replica mode");
    while let Ok(chunk) = rx.try_recv() {
        applier
            .feed(&partition, &chunk)
            .map_err(|er| format!("replica apply during failover: {er}"))?;
    }
    drop(rx);
    let applied = applier.applied_lp();
    if o.acked_lp > applied {
        return Err(format!(
            "failover lost acknowledged commit: acked_lp {} > replica applied {applied}",
            o.acked_lp
        ));
    }
    partition.log.sync().map_err(|er| format!("sync on promoted log: {er}"))?;
    match max_uploaded_lp(&e.blob, PARTITION) {
        Ok(up) => {
            if up > applied {
                return Err(format!(
                    "blob log ({up}) ahead of replica applied ({applied}): unsafe upload"
                ));
            }
            partition.log.mark_uploaded(up);
        }
        Err(er) => return Err(format!("max_uploaded_lp during failover: {er}")),
    }
    // The promoted replica was built by `empty_replica_partition` with the
    // env-default commit path: re-apply this scenario's choice.
    partition.set_group_commit(e.group_on);
    e.master = partition;
    e.restarts += 1;
    o.rewind_to(applied);
    e.replica = Some(new_sync_replica(&e.master, &e.files)?);
    Ok(())
}

// -------------------------------------------------------------- invariants

/// Read the full table state (rowstore + segments minus delete bits).
/// Returns the keyed state plus the raw live-row count (which differs from
/// the map size exactly when duplicate live rows exist — itself a bug).
pub(crate) fn engine_state(p: &Arc<Partition>, table: u32) -> Result<(Model, usize), String> {
    let snap = p.read_snapshot();
    let ts = snap.table(table).map_err(|er| format!("table snapshot: {er}"))?;
    let mut out = Model::new();
    let mut live = 0usize;
    for (_, row) in ts.rowstore_rows() {
        let k = row.get(0).as_int().map_err(|er| format!("rowstore key: {er}"))?;
        let v = row.get(1).as_int().map_err(|er| format!("rowstore value: {er}"))?;
        out.insert(k, v);
        live += 1;
    }
    for seg in &ts.segments {
        for ri in 0..seg.core.meta.row_count {
            if seg.deleted.get(ri) {
                continue;
            }
            let row = seg.core.reader.row(ri).map_err(|er| format!("segment row: {er}"))?;
            let k = row.get(0).as_int().map_err(|er| format!("segment key: {er}"))?;
            let v = row.get(1).as_int().map_err(|er| format!("segment value: {er}"))?;
            out.insert(k, v);
            live += 1;
        }
    }
    Ok((out, live))
}

fn diff_summary(engine: &Model, model: &Model) -> String {
    let only_engine: Vec<i64> =
        engine.keys().filter(|k| !model.contains_key(k)).copied().take(8).collect();
    let only_model: Vec<i64> =
        model.keys().filter(|k| !engine.contains_key(k)).copied().take(8).collect();
    let wrong: Vec<i64> = engine
        .iter()
        .filter(|(k, v)| model.get(k).is_some_and(|mv| mv != *v))
        .map(|(k, _)| *k)
        .take(8)
        .collect();
    format!(
        "engine-only keys {only_engine:?}, model-only keys {only_model:?}, wrong values {wrong:?}"
    )
}

/// Resolve a commit that was in flight when the crash struck. Its record
/// may have been made durable by the group leader (or shipped to the
/// replica) before `commit()` unwound — durable-but-unacknowledged, the
/// classic group-commit outcome. If the recovered state matches the
/// in-flight model, adopt it as a real commit at the survivor position so
/// later acks/rewinds see a consistent history; if the record was lost,
/// the rewound model already matches and there is nothing to do. Either
/// way the pending slot is consumed: at most one commit is ever in flight.
fn reconcile_pending(e: &Engine, o: &mut Oracle) -> Result<(), String> {
    let Some(pending) = o.pending.take() else { return Ok(()) };
    if pending == o.model {
        return Ok(()); // read-only or redundant in-flight txn: indistinguishable
    }
    let (state, _) = engine_state(&e.master, e.table)?;
    if state == pending {
        o.record_commit(e.master.log.end_lp(), pending);
    }
    Ok(())
}

/// Post-recovery checks: contents match the model, the unique index agrees
/// with the table, delete bit-vectors yield the right live count.
fn check_invariants(e: &Engine, o: &Oracle) -> Result<(), String> {
    let (state, live) = engine_state(&e.master, e.table)?;
    if state != o.model {
        return Err(format!(
            "post-recovery state mismatch ({} engine keys vs {} model): {}",
            state.len(),
            o.model.len(),
            diff_summary(&state, &o.model)
        ));
    }
    if live != o.model.len() {
        return Err(format!(
            "delete bit-vectors disagree with contents: {live} live rows for {} keys",
            o.model.len()
        ));
    }
    let snap = e.master.read_snapshot();
    let ts = snap.table(e.table).map_err(|er| format!("table snapshot: {er}"))?;
    if ts.live_row_count() != o.model.len() {
        return Err(format!(
            "live_row_count {} disagrees with model size {}",
            ts.live_row_count(),
            o.model.len()
        ));
    }
    // Probe the whole key space through the unique index.
    let txn = e.master.begin();
    for k in 0..e.key_space {
        let got = txn
            .get_unique(e.table, &[Value::Int(k)])
            .map_err(|er| format!("index probe for {k}: {er}"))?;
        let got_v = got.as_ref().and_then(|r| r.get(1).as_int().ok());
        if got_v != o.model.get(&k).copied() {
            return Err(format!(
                "unique index diverges at key {k}: engine {:?}, model {:?}",
                got_v,
                o.model.get(&k)
            ));
        }
    }
    txn.rollback();
    Ok(())
}

// ------------------------------------------------------------------ finale

/// End-of-scenario verification (runs quiet): final upload, live-state
/// check, PITR to every capture, fresh-replica convergence, and a clean
/// restart. Returns the number of PITR restores verified.
fn finale(e: &mut Engine, o: &mut Oracle) -> Result<u64, String> {
    if e.replica.is_some() {
        let applied = drain_replica(e)?;
        o.ack_up_to(applied);
    } else {
        let durable = e.master.log.sync().map_err(|er| format!("final sync failed: {er}"))?;
        o.ack_up_to(durable);
    }
    full_upload(e)?;
    let end = e.master.log.end_lp();
    o.ack_up_to(end);
    check_invariants(e, o)?;
    if e.captures.last().map(|(lp, _)| *lp) != Some(end) {
        e.captures.push((end, o.model.clone()));
    }

    let mut checks = 0u64;
    for (lp, model) in &e.captures {
        let fs: Arc<dyn DataFileStore> = Arc::new(BlobReadFileStore::new(Arc::clone(&e.blob)));
        let rp = restore_from_blob(&e.blob, PARTITION, fs, Some(*lp))
            .map_err(|er| format!("final PITR to {lp} failed: {er}"))?;
        let (state, live) = engine_state(&rp, e.table)?;
        if &state != model {
            return Err(format!(
                "final PITR divergence at lp {lp}: {}",
                diff_summary(&state, model)
            ));
        }
        if live != model.len() {
            return Err(format!("final PITR to {lp} produced duplicate live rows"));
        }
        checks += 1;
    }

    if e.replica.is_some() {
        // A brand-new replica fed the whole stream must converge to master.
        let (backlog, _rx) = e.master.log.subscribe(0).map_err(|er| format!("subscribe: {er}"))?;
        let rp =
            empty_replica_partition(PARTITION, Arc::clone(&e.files) as Arc<dyn DataFileStore>, 0);
        let mut applier = StreamApplier::new(0);
        if !backlog.bytes.is_empty() {
            applier
                .feed(&rp, &backlog)
                .map_err(|er| format!("fresh replica apply failed: {er}"))?;
        }
        if applier.applied_lp() != end {
            return Err(format!(
                "fresh replica applied {} of {end} log bytes",
                applier.applied_lp()
            ));
        }
        let (state, _) = engine_state(&rp, e.table)?;
        if state != o.model {
            return Err(format!(
                "fresh replica diverges from master: {}",
                diff_summary(&state, &o.model)
            ));
        }
    }

    // A clean restart over the live log (plus the latest snapshot) must
    // reproduce the final state.
    let snapshot =
        find_snapshot(&e.blob, PARTITION, None).map_err(|er| format!("find_snapshot: {er}"))?;
    let rp = Partition::recover(
        PARTITION,
        Arc::clone(&e.master.log),
        Arc::clone(&e.files) as Arc<dyn DataFileStore>,
        snapshot.as_ref(),
        None,
    )
    .map_err(|er| format!("clean restart recovery failed: {er}"))?;
    let (state, _) = engine_state(&rp, e.table)?;
    if state != o.model {
        return Err(format!("clean restart diverges: {}", diff_summary(&state, &o.model)));
    }
    Ok(checks)
}
