//! The oracle: a `BTreeMap` model of table contents, versioned by log
//! position.
//!
//! Every committed transaction records the model state as of its commit
//! record's end position. After a crash truncates the log at some surviving
//! prefix, the oracle rewinds to the latest recorded state at or below the
//! truncation point — that is exactly what a correct engine must recover to.
//! `acked_lp` tracks the highest commit the harness has *acknowledged as
//! durable* (synced locally, or applied by the replica): losing anything at
//! or below it is an invariant violation, never acceptable data loss.

use std::collections::BTreeMap;

use s2_common::LogPosition;

/// Model state keyed by primary key.
pub type Model = BTreeMap<i64, i64>;

/// Versioned model of the table (see module docs).
pub struct Oracle {
    /// Current expected table contents.
    pub model: Model,
    /// `(commit end_lp, model as of that commit)`, ascending. Starts with
    /// `(0, empty)` so truncation to any position has a floor entry.
    history: Vec<(LogPosition, Model)>,
    /// Highest commit position acknowledged as durable to the "client".
    pub acked_lp: LogPosition,
    /// Model state of a commit that is *in flight*: `commit()` was called
    /// but has not returned. With the group-commit pipeline a crash can
    /// strike after the leader made the batch durable but before the
    /// committer woke — the record legally survives recovery even though
    /// the client was never acknowledged. Recovery reconciles against this
    /// (see `scenario::reconcile_pending`) and always clears it.
    pub pending: Option<Model>,
}

impl Oracle {
    /// An empty oracle: no rows, nothing acknowledged.
    pub fn new() -> Oracle {
        Oracle { model: Model::new(), history: vec![(0, Model::new())], acked_lp: 0, pending: None }
    }

    /// Record a successful commit whose record ends at `end_lp`.
    pub fn record_commit(&mut self, end_lp: LogPosition, model: Model) {
        debug_assert!(self.history.last().is_none_or(|(lp, _)| *lp <= end_lp));
        self.model = model.clone();
        self.history.push((end_lp, model));
    }

    /// Acknowledge every commit at or below `pos` as durable.
    pub fn ack_up_to(&mut self, pos: LogPosition) {
        let acked =
            self.history.iter().rev().find(|(lp, _)| *lp <= pos).map(|(lp, _)| *lp).unwrap_or(0);
        self.acked_lp = self.acked_lp.max(acked);
    }

    /// Expected table contents at log position `lp` (latest commit ≤ `lp`).
    pub fn state_at(&self, lp: LogPosition) -> &Model {
        &self
            .history
            .iter()
            .rev()
            .find(|(h, _)| *h <= lp)
            .expect("history has a floor entry at 0")
            .1
    }

    /// Rewind to the survivor state after a crash truncated the log at
    /// `survivor_lp`: commits above it are forgotten (they were never
    /// acknowledged — callers check `acked_lp <= survivor_lp` first).
    pub fn rewind_to(&mut self, survivor_lp: LogPosition) {
        while self.history.last().is_some_and(|(lp, _)| *lp > survivor_lp) {
            self.history.pop();
        }
        self.model = self.history.last().expect("floor entry").1.clone();
    }

    /// Number of commits recorded (excluding the floor entry).
    pub fn commits(&self) -> usize {
        self.history.len() - 1
    }

    /// Commit positions recorded so far (excluding the floor entry).
    pub fn commit_lps(&self) -> Vec<LogPosition> {
        self.history.iter().skip(1).map(|(lp, _)| *lp).collect()
    }
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(i64, i64)]) -> Model {
        pairs.iter().copied().collect()
    }

    #[test]
    fn rewind_restores_historical_state() {
        let mut o = Oracle::new();
        o.record_commit(100, m(&[(1, 1)]));
        o.record_commit(200, m(&[(1, 1), (2, 2)]));
        o.record_commit(300, m(&[(2, 2)]));
        assert_eq!(o.state_at(250), &m(&[(1, 1), (2, 2)]));
        assert_eq!(o.state_at(50), &m(&[]));
        o.rewind_to(210);
        assert_eq!(o.model, m(&[(1, 1), (2, 2)]));
        assert_eq!(o.commits(), 2);
    }

    #[test]
    fn ack_tracks_largest_covered_commit() {
        let mut o = Oracle::new();
        o.record_commit(100, m(&[(1, 1)]));
        o.record_commit(200, m(&[(2, 2)]));
        o.ack_up_to(150);
        assert_eq!(o.acked_lp, 100);
        o.ack_up_to(90); // monotonic: never regresses
        assert_eq!(o.acked_lp, 100);
        o.ack_up_to(500);
        assert_eq!(o.acked_lp, 200);
    }
}
