//! Blob-outage drill: a seed-driven scenario exercising the resilience
//! layer end to end — circuit breaker, parked uploads, fail-fast cold
//! reads, shipping pause/resume — against the paper's availability contract
//! (§3, §3.1): the blob store is *off the commit path*, so commits must
//! keep acknowledging while it is down, and everything that does talk to it
//! must degrade within a bounded budget instead of hanging.
//!
//! Phases, each drawn from the seed:
//!
//! 1. **Warmup** (healthy): commits, flushes, shipping; a probe file is
//!    uploaded and its local copy dropped so later phases have a guaranteed
//!    cold-read target.
//! 2. **Transient burst**: `blob.put` / `blob.get` fail with seeded
//!    probability on every thread; commits must be untouched and uploads
//!    retry through.
//! 3. **Sustained outage**: the store rejects 100% of traffic. Checked:
//!    commits still acknowledge, the breaker reaches `Outage`, the upload
//!    backlog grows but stays pinned locally, cold reads fail fast within
//!    their deadline budget, and local reads (rowstore + cached segments)
//!    still serve the full, correct state.
//! 4. **Latency spike**: the store recovers but every op is slow; cold
//!    reads must come back as the breaker probes shut.
//! 5. **Recovery**: the backlog (including budget-exhausted resubmissions)
//!    must fully drain, pinned bytes drop to zero, blob and local state
//!    converge (verified by a full restore-from-blob diffed against the
//!    oracle), and health returns to `Healthy`.
//!
//! Like the crash scenarios, a failing seed replays its decision trace —
//! the trace records only main-thread RNG decisions (worker-thread
//! injection counts are timing-dependent and excluded).

use std::collections::btree_map::Entry;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2_blob::{
    BlobHealth, BreakerConfig, FaultyStore, MemoryStore, ObjectStore, ResilientStore, StoreHealth,
    UploaderConfig,
};
use s2_cluster::{restore_from_blob, BlobBackedFileStore, StorageConfig, StorageService};
use s2_common::fault::FaultHook;
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Error, Row, Schema, TableOptions, Value};
use s2_core::{DataFileStore, Partition};
use s2_wal::Log;

use crate::oracle::Oracle;
use crate::plan::FaultPlan;
use crate::scenario::{engine_state, harness_lock, install_quiet_panic_hook, Violation};
use crate::storage::BlobReadFileStore;

/// Partition name used by every outage drill.
pub const OUTAGE_PARTITION: &str = "sim_outage";

/// Cold-read probe object (never referenced by the engine's log).
const PROBE_KEY: &str = "probe/cold";

/// Outcome of a clean (violation-free) outage drill.
#[derive(Debug)]
pub struct OutageReport {
    /// Seed that produced this drill.
    pub seed: u64,
    /// Total transactions committed and acknowledged.
    pub commits: u64,
    /// Commits acknowledged while the store rejected 100% of traffic.
    pub commits_during_outage: u64,
    /// Largest upload backlog observed (queued + deferred + in flight).
    pub backlog_peak: u64,
    /// Slowest fail-fast cold read observed during the outage (ms).
    pub cold_read_fail_ms: u64,
    /// Wall-clock from store recovery to a fully drained backlog (ms).
    pub drain_ms: u64,
    /// Main-thread decision trace (replayable: same seed, same trace).
    pub trace: Vec<String>,
}

/// Run one outage drill. `Err` carries the violation and its trace.
pub fn run_outage_scenario(seed: u64) -> Result<OutageReport, Violation> {
    let _guard = harness_lock();
    install_quiet_panic_hook();
    let mut trace: Vec<String> = Vec::new();
    match drive(seed, &mut trace) {
        Ok(report) => Ok(report),
        Err(message) => Err(Violation { seed, message, trace }),
    }
}

/// Engine handles shared by every phase.
struct Drill {
    master: Arc<Partition>,
    files: Arc<BlobBackedFileStore>,
    /// The raw store (outage / latency control happens here).
    faulty: Arc<FaultyStore<MemoryStore>>,
    /// Breaker-guarded view used for chunk/snapshot shipping.
    ship: Arc<dyn ObjectStore>,
    health: Arc<BlobHealth>,
    cfg: StorageConfig,
    last_snap: Arc<AtomicU64>,
    table: u32,
    key_space: i64,
    commits: u64,
    backlog_peak: u64,
}

impl Drill {
    /// One shipping pass; `Unavailable` (outage / injected) is tolerated,
    /// anything else is a violation.
    fn pass_tolerant(&self) -> Result<(), String> {
        match StorageService::pass(&self.master, &self.ship, &self.cfg, &self.last_snap) {
            Ok(()) => Ok(()),
            Err(Error::Unavailable(_)) => Ok(()),
            Err(e) => Err(format!("storage pass failed: {e}")),
        }
    }

    fn note_backlog(&mut self) {
        self.backlog_peak = self.backlog_peak.max(self.files.pending_uploads());
    }
}

/// Clears the global fault hook even on an error path, so a violation in
/// the burst phase can't leak injection into the next drill.
struct HookGuard;

impl Drop for HookGuard {
    fn drop(&mut self) {
        s2_common::fault::clear();
    }
}

fn drive(seed: u64, trace: &mut Vec<String>) -> Result<OutageReport, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4f55_5441_4745_5631);
    let key_space: i64 = rng.random_range(8..32);
    let cfg = StorageConfig {
        chunk_bytes: rng.random_range(64..512_usize),
        snapshot_interval_bytes: rng.random_range(200..500_u64),
        tick: Duration::from_millis(1),
        require_replicated: false,
    };

    // Fast breaker/uploader tuning so the drill's outage arcs play out in
    // milliseconds; semantics are identical to the production defaults.
    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    let blob: Arc<dyn ObjectStore> = Arc::clone(&faulty) as Arc<dyn ObjectStore>;
    let health = BlobHealth::with_config(
        format!("outage-drill#{seed:x}"),
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(20),
            max_cooldown: Duration::from_millis(100),
            probe_successes: 1,
            degraded_window: Duration::from_millis(150),
        },
    );
    let files = BlobBackedFileStore::with_tuning(
        Arc::clone(&blob),
        256 * 1024,
        UploaderConfig {
            threads: 2,
            capacity: 64,
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        Arc::clone(&health),
        Duration::from_millis(300),
    );
    let ship: Arc<dyn ObjectStore> = Arc::new(ResilientStore::new(
        Arc::clone(&blob),
        Arc::clone(&health),
        s2_common::RetryPolicy::blob_default(),
    ));
    let master = Partition::new(
        OUTAGE_PARTITION,
        Arc::new(Log::in_memory()),
        Arc::clone(&files) as Arc<dyn DataFileStore>,
    );
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int64),
        ColumnDef::new("v", DataType::Int64),
    ])
    .map_err(|e| format!("schema: {e}"))?;
    let options = TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_flush_threshold(rng.random_range(4..12_usize))
        .with_segment_rows(rng.random_range(4..16_usize));
    let table =
        master.create_table("t", schema, options).map_err(|e| format!("create_table: {e}"))?;
    master.log.sync().map_err(|e| format!("setup sync: {e}"))?;

    let mut d = Drill {
        master,
        files,
        faulty,
        ship,
        health,
        cfg,
        last_snap: Arc::new(AtomicU64::new(0)),
        table,
        key_space,
        commits: 0,
        backlog_peak: 0,
    };
    let mut oracle = Oracle::new();
    oracle.ack_up_to(d.master.log.durable_lp());

    // ---------------------------------------------------- phase 1: warmup
    let n_warm: u32 = rng.random_range(8..14);
    for i in 0..n_warm {
        commit_txn(&mut d, &mut oracle, &mut rng)?;
        if i % 3 == 2 {
            d.master.flush_table(d.table, true).map_err(|e| format!("warmup flush: {e}"))?;
        }
        d.pass_tolerant()?;
    }
    trace.push(format!("phase:warmup commits={n_warm}"));

    // Seed the cold-read probe: uploaded, then the local copy dropped so a
    // read must go to the blob store.
    d.files
        .write_file(PROBE_KEY, Arc::new(vec![0xAB; 64]))
        .map_err(|e| format!("probe write: {e}"))?;
    d.files.drain_uploads();
    if !d.files.uploaded_keys().iter().any(|k| k == PROBE_KEY) {
        return Err("probe file did not upload while healthy".to_string());
    }
    d.files.delete_file(PROBE_KEY).map_err(|e| format!("probe delete: {e}"))?;
    match d.files.read_file(PROBE_KEY) {
        Ok(b) if b.len() == 64 => trace.push("probe:cold-read-healthy ok".to_string()),
        Ok(b) => return Err(format!("healthy cold read returned {} bytes, expected 64", b.len())),
        Err(e) => return Err(format!("healthy cold read failed: {e}")),
    }

    // --------------------------------------- phase 2: transient burst
    let put_p: f64 = rng.random_range(0.25..0.55);
    let get_p: f64 = rng.random_range(0.10..0.30);
    let n_burst: u32 = rng.random_range(6..12);
    {
        let mut plan = FaultPlan::new(seed);
        plan.site_any_thread("blob.put", put_p, 0.0);
        plan.site_any_thread("blob.get", get_p, 0.0);
        s2_common::fault::install(Arc::new(plan) as Arc<dyn FaultHook>);
        let _hook = HookGuard;
        for i in 0..n_burst {
            commit_txn(&mut d, &mut oracle, &mut rng)?;
            if i % 3 == 1 {
                d.master.flush_table(d.table, true).map_err(|e| format!("burst flush: {e}"))?;
            }
            d.pass_tolerant()?;
            d.note_backlog();
        }
    }
    trace.push(format!("phase:burst commits={n_burst} put_p={put_p:.2} get_p={get_p:.2}"));

    // --------------------------------------- phase 3: sustained outage
    d.faulty.set_unavailable(true);
    let n_outage: u32 = rng.random_range(8..14);
    for i in 0..n_outage {
        // The whole point: every commit acknowledges from the local WAL
        // while the blob store rejects 100% of traffic.
        commit_txn(&mut d, &mut oracle, &mut rng)
            .map_err(|e| format!("commit path touched the dead blob store: {e}"))?;
        if i % 2 == 1 {
            d.master.flush_table(d.table, true).map_err(|e| format!("outage flush: {e}"))?;
        }
        if i % 3 == 2 {
            d.pass_tolerant()?;
        }
        d.note_backlog();
    }
    let commits_during_outage = u64::from(n_outage);

    // Ballast: one guaranteed insert + flush so the backlog provably holds
    // at least one file that cannot upload.
    {
        let mut scratch = oracle.model.clone();
        let mut txn = d.master.begin();
        let k = d.key_space + 1;
        txn.insert(d.table, Row::new(vec![Value::Int(k), Value::Int(-1)]))
            .map_err(|e| format!("ballast insert: {e}"))?;
        scratch.insert(k, -1);
        let (_ts, end_lp) = txn.commit().map_err(|e| format!("ballast commit: {e}"))?;
        oracle.record_commit(end_lp, scratch);
        let durable = d.master.log.sync().map_err(|e| format!("ballast sync: {e}"))?;
        oracle.ack_up_to(durable);
        d.commits += 1;
        d.master.flush_table(d.table, true).map_err(|e| format!("ballast flush: {e}"))?;
    }
    d.note_backlog();
    if d.files.pending_uploads() == 0 {
        return Err("upload backlog empty during a total outage (uploads are landing?)".into());
    }

    // The breaker must observe the outage: keep feeding it failures (pass
    // attempts) until it reports one.
    // s2-lint: allow(wall-clock, outage drills time real breaker cooldowns and retry deadlines)
    let t0 = Instant::now();
    while d.health.health() != StoreHealth::Outage {
        if t0.elapsed() > Duration::from_secs(3) {
            return Err(format!(
                "breaker never reached Outage during a 100% outage (health {:?})",
                d.health.health()
            ));
        }
        d.pass_tolerant()?;
        std::thread::sleep(Duration::from_millis(5));
    }

    // Cold reads fail fast — bounded by the retry deadline, not the outage.
    let mut cold_read_fail_ms = 0u64;
    for _ in 0..2 {
        d.files.delete_file(PROBE_KEY).map_err(|e| format!("probe delete: {e}"))?;
        // s2-lint: allow(wall-clock, outage drills time real breaker cooldowns and retry deadlines)
        let t = Instant::now();
        match d.files.read_file(PROBE_KEY) {
            Ok(_) => return Err("cold read succeeded against a dead store".to_string()),
            Err(Error::Unavailable(_)) | Err(Error::Io(_)) => {}
            Err(e) => return Err(format!("cold read failed with unexpected class: {e}")),
        }
        let ms = t.elapsed().as_millis() as u64;
        cold_read_fail_ms = cold_read_fail_ms.max(ms);
        if ms > 1500 {
            return Err(format!("cold read blocked {ms}ms during outage (budget ~800ms)"));
        }
        trace.push("probe:cold-read-outage fail-fast".to_string());
    }

    // Local reads still serve the full committed state: everything written
    // during the outage is pinned in the cache (the only copy).
    let (state, _) = engine_state(&d.master, d.table)?;
    if state != oracle.model {
        return Err(format!(
            "local reads diverged during outage: {} engine keys vs {} model",
            state.len(),
            oracle.model.len()
        ));
    }
    trace.push(format!("phase:outage commits={n_outage} local-reads ok"));

    // ---------------------------------------- phase 4: latency spike
    d.faulty.set_unavailable(false);
    d.faulty.set_extra_latency(Duration::from_millis(2));
    let n_spike: u32 = rng.random_range(3..6);
    for _ in 0..n_spike {
        commit_txn(&mut d, &mut oracle, &mut rng)?;
        d.note_backlog();
    }
    // The store answers again (slowly): cold reads must come back as the
    // breaker probes shut. The first tries may still hit the open window.
    // s2-lint: allow(wall-clock, outage drills time real breaker cooldowns and retry deadlines)
    let t0 = Instant::now();
    loop {
        d.files.delete_file(PROBE_KEY).map_err(|e| format!("probe delete: {e}"))?;
        match d.files.read_file(PROBE_KEY) {
            Ok(_) => break,
            Err(_) if t0.elapsed() < Duration::from_secs(3) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("cold reads never recovered after outage: {e}")),
        }
    }
    d.faulty.set_extra_latency(Duration::ZERO);
    trace.push(format!("phase:spike commits={n_spike}"));

    // -------------------------------------------- phase 5: recovery
    // s2-lint: allow(wall-clock, outage drills time real breaker cooldowns and retry deadlines)
    let recovery_start = Instant::now();
    let end_lp = d.master.log.end_lp();
    let snapshot_required = end_lp >= d.cfg.snapshot_interval_bytes;
    loop {
        d.pass_tolerant()?;
        d.files.resubmit_failed();
        d.note_backlog();
        // Drained = nothing queued with the uploader *and* nothing waiting
        // on a maintenance resubmit (budget-exhausted or deferred because
        // the backlog was full during the outage).
        let drained = d.files.pending_uploads() == 0
            && d.files.failed_count() == 0
            && d.master.log.uploaded_lp() == d.master.log.end_lp()
            && (!snapshot_required || d.last_snap.load(std::sync::atomic::Ordering::Acquire) > 0);
        if drained {
            break;
        }
        if recovery_start.elapsed() > Duration::from_secs(10) {
            return Err(format!(
                "backlog failed to drain after recovery: {} pending, {} awaiting resubmit, \
                 log {}/{} uploaded",
                d.files.pending_uploads(),
                d.files.failed_count(),
                d.master.log.uploaded_lp(),
                d.master.log.end_lp()
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    d.files.drain_uploads();
    let drain_ms = recovery_start.elapsed().as_millis() as u64;

    // Convergence: nothing left pinned, every uploaded object readable.
    if d.files.pinned_bytes() != 0 {
        return Err(format!("{} bytes still pinned after full drain", d.files.pinned_bytes()));
    }
    for key in d.files.uploaded_keys() {
        blob.get(&key).map_err(|e| format!("uploaded key {key} unreadable in blob: {e}"))?;
    }

    // Blob and local state converge: a full restore from blob alone must
    // reproduce the oracle model.
    let end = d.master.log.end_lp();
    oracle.ack_up_to(end);
    let fs: Arc<dyn DataFileStore> = Arc::new(BlobReadFileStore::new(Arc::clone(&blob)));
    let restored = restore_from_blob(&blob, OUTAGE_PARTITION, fs, None)
        .map_err(|e| format!("restore after recovery failed: {e}"))?;
    let (restored_state, _) = engine_state(&restored, d.table)?;
    if restored_state != oracle.model {
        return Err(format!(
            "blob/local divergence after recovery: restored {} keys, model {}",
            restored_state.len(),
            oracle.model.len()
        ));
    }

    // Health returns to Healthy once the degraded window ages out.
    // s2-lint: allow(wall-clock, outage drills time real breaker cooldowns and retry deadlines)
    let t0 = Instant::now();
    while d.health.health() != StoreHealth::Healthy {
        if t0.elapsed() > Duration::from_secs(3) {
            return Err(format!("health stuck at {:?} after recovery", d.health.health()));
        }
        let _ = d.ship.get(PROBE_KEY);
        std::thread::sleep(Duration::from_millis(20));
    }

    // A missing object is still answered within the deadline budget — the
    // NotFound retry window is bounded, not a hang.
    // s2-lint: allow(wall-clock, outage drills time real breaker cooldowns and retry deadlines)
    let t = Instant::now();
    match d.files.read_file("probe/never-existed") {
        Err(Error::NotFound(_)) => {}
        Err(e) => return Err(format!("missing-object read failed oddly: {e}")),
        Ok(_) => return Err("read of a never-written object succeeded".to_string()),
    }
    if t.elapsed() > Duration::from_secs(2) {
        return Err(format!("missing-object read blocked {:?} (budget 300ms)", t.elapsed()));
    }
    trace.push("probe:missing-notfound bounded".to_string());

    // Final local state check.
    let (final_state, _) = engine_state(&d.master, d.table)?;
    if final_state != oracle.model {
        return Err("final local state diverges from model".to_string());
    }
    trace.push(format!("finale commits={} ok", d.commits));

    Ok(OutageReport {
        seed,
        commits: d.commits,
        commits_during_outage,
        backlog_peak: d.backlog_peak,
        cold_read_fail_ms,
        drain_ms,
        trace: trace.clone(),
    })
}

/// One committed-and-acknowledged transaction (1–3 ops). Commit *and* the
/// durability ack must succeed in every phase — that is the contract under
/// test.
fn commit_txn(d: &mut Drill, o: &mut Oracle, rng: &mut StdRng) -> Result<(), String> {
    let mut scratch = o.model.clone();
    let mut txn = d.master.begin();
    let nops: usize = rng.random_range(1..=3);
    for _ in 0..nops {
        let k: i64 = rng.random_range(0..d.key_space);
        let key = [Value::Int(k)];
        match scratch.entry(k) {
            Entry::Occupied(mut slot) => {
                if rng.random_bool(0.25) {
                    let deleted = txn
                        .delete_unique(d.table, &key)
                        .map_err(|e| format!("delete_unique({k}): {e}"))?;
                    if !deleted {
                        return Err(format!("delete_unique missed present key {k}"));
                    }
                    slot.remove();
                } else {
                    let v: i64 = rng.random_range(-1000..1000);
                    let updated = txn
                        .update_unique(d.table, &key, Row::new(vec![Value::Int(k), Value::Int(v)]))
                        .map_err(|e| format!("update_unique({k}): {e}"))?;
                    if !updated {
                        return Err(format!("update_unique missed present key {k}"));
                    }
                    slot.insert(v);
                }
            }
            Entry::Vacant(slot) => {
                let v: i64 = rng.random_range(-1000..1000);
                txn.insert(d.table, Row::new(vec![Value::Int(k), Value::Int(v)]))
                    .map_err(|e| format!("insert({k}): {e}"))?;
                slot.insert(v);
            }
        }
    }
    let (_ts, end_lp) = txn.commit().map_err(|e| format!("commit failed: {e}"))?;
    o.record_commit(end_lp, scratch);
    let durable = d.master.log.sync().map_err(|e| format!("durability ack failed: {e}"))?;
    o.ack_up_to(durable);
    d.commits += 1;
    Ok(())
}

/// Aggregate over a seed sweep of outage drills.
#[derive(Debug)]
pub struct OutageSummary {
    /// Drills run.
    pub scenarios: usize,
    /// Total commits acknowledged.
    pub commits: u64,
    /// Commits acknowledged while the store was fully down.
    pub commits_during_outage: u64,
    /// Largest backlog across all drills.
    pub backlog_peak: u64,
    /// Slowest fail-fast cold read across all drills (ms).
    pub cold_read_fail_ms: u64,
    /// Violations (empty on success).
    pub failures: Vec<Violation>,
}

impl OutageSummary {
    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{} outage drills: {} commits ({} during total outage), backlog peak {}, \
             slowest fail-fast cold read {}ms, {} violations",
            self.scenarios,
            self.commits,
            self.commits_during_outage,
            self.backlog_peak,
            self.cold_read_fail_ms,
            self.failures.len()
        )
    }
}

/// Run `count` outage drills starting at `base_seed`.
pub fn run_outage_many(base_seed: u64, count: usize, verbose: bool) -> OutageSummary {
    let mut summary = OutageSummary {
        scenarios: count,
        commits: 0,
        commits_during_outage: 0,
        backlog_peak: 0,
        cold_read_fail_ms: 0,
        failures: Vec::new(),
    };
    for i in 0..count {
        let seed = base_seed.wrapping_add(i as u64);
        match run_outage_scenario(seed) {
            Ok(r) => {
                if verbose {
                    println!(
                        "seed {seed}: {} commits ({} in outage), backlog peak {}, \
                         cold-read fail {}ms, drain {}ms",
                        r.commits,
                        r.commits_during_outage,
                        r.backlog_peak,
                        r.cold_read_fail_ms,
                        r.drain_ms
                    );
                }
                summary.commits += r.commits;
                summary.commits_during_outage += r.commits_during_outage;
                summary.backlog_peak = summary.backlog_peak.max(r.backlog_peak);
                summary.cold_read_fail_ms = summary.cold_read_fail_ms.max(r.cold_read_fail_ms);
            }
            Err(v) => {
                println!("{v}");
                summary.failures.push(v);
            }
        }
    }
    summary
}
