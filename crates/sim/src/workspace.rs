//! Workspace-fleet drill: a seed-driven scenario exercising elastic
//! workspaces (paper §3.2) under faults — concurrent provision/detach churn
//! with kill points, transient blob fault bursts, a total blob outage and
//! recovery — against the availability contract: the blob store is off the
//! commit path, attached workspaces degrade to growing lag (never to
//! errors), provisioning pauses during an outage and resumes after it, and
//! every surviving workspace converges byte-for-byte to the primary.
//!
//! Phases, each drawn from the seed:
//!
//! 1. **Warmup** (healthy): committed writes on the cluster, a flush, and a
//!    full `sync_to_blob` so provisioning has a snapshot to restore.
//! 2. **Churn with kills**: seeded provision/detach churn under live
//!    writes, with crash injection at the `workspace.provision`,
//!    `pitr.restore` and `workspace.detach` kill points. Oracle: a killed
//!    provision never leaves a half-attached workspace; a killed detach
//!    leaves the workspace fully attached; the registry always matches the
//!    drill's own fleet model.
//! 3. **Transient burst**: `blob.put` / `blob.get` fail with seeded
//!    probability on every thread; commits must be untouched and
//!    provisioning may only fail with transient error classes.
//! 4. **Total outage**: the store rejects 100% of traffic. Commits keep
//!    acknowledging, provisioning pauses and then gives up `Unavailable`
//!    within its bounded budget, attached workspaces keep answering
//!    queries from local state.
//! 5. **Recovery**: the breaker closes, provisioning resumes and succeeds,
//!    the whole fleet catches up to zero lag, and every workspace's
//!    per-partition engine state equals the primary's, which equals the
//!    drill's committed model.

use std::collections::btree_map::Entry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2_blob::{BreakerConfig, FaultyStore, MemoryStore, ObjectStore, StoreHealth, UploaderConfig};
use s2_cluster::{Cluster, ClusterConfig, StorageConfig, WorkspaceManager, WorkspaceManagerConfig};
use s2_common::fault::FaultHook;
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Error, Row, Schema, TableOptions, Value};
use s2_core::Partition;

use crate::oracle::Model;
use crate::plan::FaultPlan;
use crate::scenario::{engine_state, harness_lock, install_quiet_panic_hook, Violation};

/// Database name used by every workspace drill.
pub const WORKSPACE_DB: &str = "sim_ws";

/// Outcome of a clean (violation-free) workspace drill.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// Seed that produced this drill.
    pub seed: u64,
    /// Total cluster transactions committed and acknowledged.
    pub commits: u64,
    /// Workspaces successfully provisioned (including re-provisions).
    pub provisions: u64,
    /// Workspaces successfully detached.
    pub detaches: u64,
    /// Injected crashes survived at provision/restore/detach kill points.
    pub kills: u64,
    /// Provisioning attempts correctly refused (`Unavailable`) during the
    /// total outage.
    pub paused_provisions: u64,
    /// Fleet size at convergence check.
    pub fleet: usize,
    /// Main-thread decision trace (replayable: same seed, same trace).
    pub trace: Vec<String>,
}

/// Run one workspace drill. `Err` carries the violation and its trace.
pub fn run_workspace_scenario(seed: u64) -> Result<WorkspaceReport, Violation> {
    let _guard = harness_lock();
    install_quiet_panic_hook();
    let mut trace: Vec<String> = Vec::new();
    match drive(seed, &mut trace) {
        Ok(report) => Ok(report),
        Err(message) => Err(Violation { seed, message, trace }),
    }
}

/// Clears the global fault hook even on an error path, so a violation in a
/// churn phase can't leak injection into the next drill.
struct HookGuard;

impl Drop for HookGuard {
    fn drop(&mut self) {
        s2_common::fault::clear();
    }
}

fn transient(e: &Error) -> bool {
    matches!(e, Error::Unavailable(_) | Error::NotFound(_) | Error::Io(_))
}

struct Drill {
    cluster: Arc<Cluster>,
    mgr: WorkspaceManager,
    faulty: Arc<FaultyStore<MemoryStore>>,
    model: Model,
    key_space: i64,
    commits: u64,
    provisions: u64,
    detaches: u64,
    kills: u64,
    /// Names the drill believes are attached (diffed against the registry).
    fleet: Vec<String>,
    next_ws: u64,
}

impl Drill {
    /// One committed-and-acknowledged cluster transaction (1–3 ops).
    /// Commit must succeed in every phase — that is the contract.
    fn commit_txn(&mut self, rng: &mut StdRng) -> Result<(), String> {
        let mut scratch = self.model.clone();
        let mut txn = self.cluster.begin();
        let nops: usize = rng.random_range(1..=3);
        for _ in 0..nops {
            let k: i64 = rng.random_range(0..self.key_space);
            let key = [Value::Int(k)];
            match scratch.entry(k) {
                Entry::Occupied(mut slot) => {
                    if rng.random_bool(0.25) {
                        txn.delete_unique("t", &key)
                            .map_err(|e| format!("delete_unique({k}): {e}"))?;
                        slot.remove();
                    } else {
                        let v: i64 = rng.random_range(-1000..1000);
                        txn.update_unique_with("t", &key, |_| {
                            Row::new(vec![Value::Int(k), Value::Int(v)])
                        })
                        .map_err(|e| format!("update_unique({k}): {e}"))?;
                        slot.insert(v);
                    }
                }
                Entry::Vacant(slot) => {
                    let v: i64 = rng.random_range(-1000..1000);
                    txn.insert("t", Row::new(vec![Value::Int(k), Value::Int(v)]))
                        .map_err(|e| format!("insert({k}): {e}"))?;
                    slot.insert(v);
                }
            }
        }
        txn.commit().map_err(|e| format!("commit failed: {e}"))?;
        self.model = scratch;
        self.commits += 1;
        Ok(())
    }

    /// Registry-vs-model consistency: the manager tracks exactly the
    /// workspaces the drill believes are attached.
    fn check_registry(&self) -> Result<(), String> {
        let mut expect = self.fleet.clone();
        expect.sort();
        let got = self.mgr.names();
        if got != expect {
            return Err(format!("registry {got:?} diverged from fleet model {expect:?}"));
        }
        Ok(())
    }
}

fn drive(seed: u64, trace: &mut Vec<String>) -> Result<WorkspaceReport, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x574f_524b_5350_4143);
    let key_space: i64 = rng.random_range(16..48);
    let partitions = rng.random_range(1..=2usize);

    let faulty = Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    let blob: Arc<dyn ObjectStore> = Arc::clone(&faulty) as Arc<dyn ObjectStore>;
    let cluster = Cluster::new(
        WORKSPACE_DB,
        ClusterConfig {
            partitions,
            ha_replicas: 0,
            sync_replication: true,
            blob: Some(blob),
            cache_bytes: 256 * 1024,
            storage: StorageConfig {
                chunk_bytes: rng.random_range(64..512_usize),
                snapshot_interval_bytes: rng.random_range(200..500_u64),
                tick: Duration::from_millis(1),
                require_replicated: false,
            },
            // Fast breaker so the outage arc plays out in milliseconds;
            // semantics are identical to the production defaults.
            breaker: Some(BreakerConfig {
                failure_threshold: 3,
                open_cooldown: Duration::from_millis(20),
                max_cooldown: Duration::from_millis(100),
                probe_successes: 1,
                degraded_window: Duration::from_millis(150),
            }),
        },
    )
    .map_err(|e| format!("cluster: {e}"))?;
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int64),
        ColumnDef::new("v", DataType::Int64),
    ])
    .map_err(|e| format!("schema: {e}"))?;
    let options = TableOptions::new()
        .with_sort_key(vec![0])
        .with_shard_key(vec![0])
        .with_unique("pk", vec![0])
        .with_flush_threshold(rng.random_range(4..12_usize))
        .with_segment_rows(rng.random_range(4..16_usize));
    cluster.create_table("t", schema, options).map_err(|e| format!("create_table: {e}"))?;
    let mgr = WorkspaceManager::new(
        &cluster,
        WorkspaceManagerConfig {
            cache_bytes: 256 * 1024,
            read_budget: Duration::from_millis(300),
            uploader: UploaderConfig {
                threads: 2,
                capacity: 64,
                max_attempts: 3,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(20),
            },
            provision_wait: Duration::from_millis(250),
        },
    )
    .map_err(|e| format!("manager: {e}"))?;

    let mut d = Drill {
        cluster,
        mgr,
        faulty,
        model: Model::new(),
        key_space,
        commits: 0,
        provisions: 0,
        detaches: 0,
        kills: 0,
        fleet: Vec::new(),
        next_ws: 0,
    };

    // ---------------------------------------------------- phase 1: warmup
    let n_warm: u32 = rng.random_range(8..14);
    for i in 0..n_warm {
        d.commit_txn(&mut rng)?;
        if i % 3 == 2 {
            d.cluster.flush_table("t").map_err(|e| format!("warmup flush: {e}"))?;
        }
    }
    d.cluster.sync_to_blob().map_err(|e| format!("warmup sync_to_blob: {e}"))?;
    trace.push(format!("phase:warmup commits={n_warm} partitions={partitions}"));

    // ------------------------------------- phase 2: churn with kill points
    let crash_p: f64 = rng.random_range(0.15..0.45);
    let n_churn: u32 = rng.random_range(8..14);
    {
        let mut plan = FaultPlan::new(seed);
        plan.site("workspace.provision", 0.0, crash_p);
        plan.site("pitr.restore", 0.0, crash_p * 0.5);
        plan.site("workspace.detach", 0.0, crash_p);
        let plan = Arc::new(plan);
        s2_common::fault::install(Arc::clone(&plan) as Arc<dyn FaultHook>);
        let _hook = HookGuard;
        for _ in 0..n_churn {
            d.commit_txn(&mut rng)?;
            let provision = d.fleet.len() < 2 || rng.random_bool(0.6);
            if provision {
                let name = format!("ws{}", d.next_ws);
                d.next_ws += 1;
                match catch_unwind(AssertUnwindSafe(|| d.mgr.provision(&name))) {
                    Ok(Ok(_)) => {
                        d.provisions += 1;
                        d.fleet.push(name);
                    }
                    Ok(Err(e)) => return Err(format!("healthy provision {name} failed: {e}")),
                    Err(_) => {
                        // Killed mid-provision: must be all-or-nothing.
                        d.kills += 1;
                        if d.mgr.get(&name).is_some() {
                            return Err(format!(
                                "workspace {name} attached despite a crash mid-provision"
                            ));
                        }
                    }
                }
            } else {
                let idx = rng.random_range(0..d.fleet.len());
                let name = d.fleet[idx].clone();
                match catch_unwind(AssertUnwindSafe(|| d.mgr.detach(&name))) {
                    Ok(Ok(())) => {
                        d.detaches += 1;
                        d.fleet.remove(idx);
                    }
                    Ok(Err(e)) => return Err(format!("detach {name} failed: {e}")),
                    Err(_) => {
                        // Killed mid-detach: the workspace must still be
                        // attached and serving.
                        d.kills += 1;
                        if d.mgr.get(&name).is_none() {
                            return Err(format!(
                                "workspace {name} vanished after a crash mid-detach"
                            ));
                        }
                    }
                }
            }
            d.check_registry()?;
        }
    }
    trace.push(format!(
        "phase:churn rounds={n_churn} crash_p={crash_p:.2} kills={} fleet={}",
        d.kills,
        d.fleet.len()
    ));

    // --------------------------------------- phase 3: transient burst
    let put_p: f64 = rng.random_range(0.25..0.55);
    let get_p: f64 = rng.random_range(0.10..0.30);
    let n_burst: u32 = rng.random_range(5..10);
    {
        let mut plan = FaultPlan::new(seed.wrapping_add(1));
        plan.site_any_thread("blob.put", put_p, 0.0);
        plan.site_any_thread("blob.get", get_p, 0.0);
        let plan = Arc::new(plan);
        s2_common::fault::install(plan as Arc<dyn FaultHook>);
        let _hook = HookGuard;
        for _ in 0..n_burst {
            d.commit_txn(&mut rng)
                .map_err(|e| format!("commit path touched faulted blob traffic: {e}"))?;
        }
        // Provisioning under transient faults: success or a transient error
        // class; anything else (or a hang) is a violation.
        let name = format!("ws{}", d.next_ws);
        d.next_ws += 1;
        match d.mgr.provision(&name) {
            Ok(_) => {
                d.provisions += 1;
                d.fleet.push(name.clone());
                trace.push(format!("burst:provision {name} ok"));
            }
            Err(e) if transient(&e) => trace.push(format!("burst:provision {name} transient")),
            Err(e) => return Err(format!("burst provision failed non-transiently: {e}")),
        }
        d.check_registry()?;
    }
    trace.push(format!("phase:burst commits={n_burst} put_p={put_p:.2} get_p={get_p:.2}"));

    // Make sure at least one workspace rides through the outage.
    if d.fleet.is_empty() {
        let name = format!("ws{}", d.next_ws);
        d.next_ws += 1;
        d.mgr.provision(&name).map_err(|e| format!("pre-outage provision: {e}"))?;
        d.provisions += 1;
        d.fleet.push(name);
    }
    // Warm each workspace to parity so outage-time reads have local state.
    if !d.mgr.catch_up_all(Duration::from_secs(10)) {
        return Err("fleet failed to catch up before the outage".to_string());
    }

    // --------------------------------------- phase 4: total outage
    d.faulty.set_unavailable(true);
    let health = Arc::clone(d.cluster.blob_health().ok_or("cluster has no blob health")?);
    // s2-lint: allow(wall-clock, workspace drills time real breaker cooldowns and wait budgets)
    let t0 = Instant::now();
    while health.health() != StoreHealth::Outage {
        if t0.elapsed() > Duration::from_secs(3) {
            return Err(format!(
                "breaker never reached Outage during a 100% outage (health {:?})",
                health.health()
            ));
        }
        // The cluster's own storage ticks feed the breaker failures as long
        // as commits keep producing chunks to ship.
        d.commit_txn(&mut rng).map_err(|e| format!("commit blocked during blob outage: {e}"))?;
        std::thread::sleep(Duration::from_millis(2));
    }

    // Provisioning pauses, then gives up Unavailable within its budget.
    let mut paused_provisions = 0u64;
    {
        let name = format!("ws{}", d.next_ws);
        d.next_ws += 1;
        // s2-lint: allow(wall-clock, workspace drills time real breaker cooldowns and wait budgets)
        let t = Instant::now();
        match d.mgr.provision(&name) {
            Err(Error::Unavailable(_)) => paused_provisions += 1,
            Err(e) => return Err(format!("outage provision failed with wrong class: {e}")),
            Ok(_) => return Err("provision succeeded against a dead blob store".to_string()),
        }
        let waited = t.elapsed();
        if waited > Duration::from_secs(2) {
            return Err(format!("paused provision blocked {waited:?} (budget ~250ms)"));
        }
        if d.mgr.get(&name).is_some() {
            return Err(format!("refused workspace {name} left attached"));
        }
    }

    // Attached workspaces keep serving reads from local state, and the
    // primary keeps acknowledging commits.
    let n_outage: u32 = rng.random_range(5..10);
    for _ in 0..n_outage {
        d.commit_txn(&mut rng)
            .map_err(|e| format!("commit path touched the dead blob store: {e}"))?;
    }
    for name in &d.fleet {
        let ws = d.mgr.get(name).ok_or_else(|| format!("{name} missing from registry"))?;
        for pid in 0..partitions {
            let t_id = table_id(&d.cluster.set(pid).master())?;
            engine_state(ws.replica_partition(pid), t_id)
                .map_err(|e| format!("workspace {name} stopped serving during outage: {e}"))?;
        }
    }
    trace.push(format!("phase:outage commits={} paused_provisions={paused_provisions}", n_outage));

    // -------------------------------------------- phase 5: recovery
    d.faulty.set_unavailable(false);
    // s2-lint: allow(wall-clock, workspace drills time real breaker cooldowns and wait budgets)
    let t0 = Instant::now();
    while health.health() == StoreHealth::Outage {
        if t0.elapsed() > Duration::from_secs(5) {
            return Err(format!("breaker stuck at Outage after recovery ({:?})", health.health()));
        }
        // Keep commits flowing so the storage service has probe traffic.
        d.commit_txn(&mut rng)?;
        std::thread::sleep(Duration::from_millis(2));
    }

    // Provisioning resumes: a post-recovery provision must succeed (the
    // breaker may still be probing shut — allow a bounded retry window).
    {
        let name = format!("ws{}", d.next_ws);
        d.next_ws += 1;
        // s2-lint: allow(wall-clock, workspace drills time real breaker cooldowns and wait budgets)
        let t = Instant::now();
        loop {
            match d.mgr.provision(&name) {
                Ok(_) => break,
                Err(e) if transient(&e) && t.elapsed() < Duration::from_secs(5) => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(format!("provisioning never resumed after recovery: {e}")),
            }
        }
        d.provisions += 1;
        d.fleet.push(name);
    }
    d.check_registry()?;

    // Convergence: zero lag, then every workspace's per-partition engine
    // state equals the primary's, and the primaries' union equals the model.
    if !d.mgr.catch_up_all(Duration::from_secs(10)) {
        return Err(format!(
            "fleet failed to catch up after recovery (max lag {} bytes)",
            d.mgr.max_lag_bytes()
        ));
    }
    let mut union = Model::new();
    for pid in 0..partitions {
        let master = d.cluster.set(pid).master();
        let t_id = table_id(&master)?;
        let (m_state, _) = engine_state(&master, t_id)?;
        for name in &d.fleet {
            let ws = d.mgr.get(name).ok_or_else(|| format!("{name} missing from registry"))?;
            let (w_state, _) = engine_state(ws.replica_partition(pid), t_id)?;
            if w_state != m_state {
                return Err(format!(
                    "workspace {name} diverged from primary on partition {pid}: \
                     {} keys vs {}",
                    w_state.len(),
                    m_state.len()
                ));
            }
        }
        union.extend(m_state);
    }
    if union != d.model {
        return Err(format!(
            "primaries diverged from committed model: {} keys vs {}",
            union.len(),
            d.model.len()
        ));
    }
    trace.push(format!("finale commits={} fleet={} ok", d.commits, d.fleet.len()));

    let fleet = d.fleet.len();
    d.mgr.detach_all();
    Ok(WorkspaceReport {
        seed,
        commits: d.commits,
        provisions: d.provisions,
        detaches: d.detaches,
        kills: d.kills,
        paused_provisions,
        fleet,
        trace: trace.clone(),
    })
}

fn table_id(master: &Arc<Partition>) -> Result<u32, String> {
    Ok(master.table_by_name("t").map_err(|e| format!("table lookup: {e}"))?.id)
}

/// Aggregate over a seed sweep of workspace drills.
#[derive(Debug)]
pub struct WorkspaceSummary {
    /// Drills run.
    pub scenarios: usize,
    /// Total commits acknowledged.
    pub commits: u64,
    /// Workspaces provisioned.
    pub provisions: u64,
    /// Workspaces detached.
    pub detaches: u64,
    /// Crashes survived at kill points.
    pub kills: u64,
    /// Provisions correctly refused during total outages.
    pub paused_provisions: u64,
    /// Violations (empty on success).
    pub failures: Vec<Violation>,
}

impl WorkspaceSummary {
    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{} workspace drills: {} commits, {} provisions / {} detaches, \
             {} kill-point crashes survived, {} outage-paused provisions, {} violations",
            self.scenarios,
            self.commits,
            self.provisions,
            self.detaches,
            self.kills,
            self.paused_provisions,
            self.failures.len()
        )
    }
}

/// Run `count` workspace drills starting at `base_seed`.
pub fn run_workspace_many(base_seed: u64, count: usize, verbose: bool) -> WorkspaceSummary {
    let mut summary = WorkspaceSummary {
        scenarios: count,
        commits: 0,
        provisions: 0,
        detaches: 0,
        kills: 0,
        paused_provisions: 0,
        failures: Vec::new(),
    };
    for i in 0..count {
        let seed = base_seed.wrapping_add(i as u64);
        match run_workspace_scenario(seed) {
            Ok(r) => {
                if verbose {
                    println!(
                        "seed {seed}: {} commits, {} provisions / {} detaches, {} kills, \
                         {} paused, fleet {}",
                        r.commits, r.provisions, r.detaches, r.kills, r.paused_provisions, r.fleet
                    );
                }
                summary.commits += r.commits;
                summary.provisions += r.provisions;
                summary.detaches += r.detaches;
                summary.kills += r.kills;
                summary.paused_provisions += r.paused_provisions;
            }
            Err(v) => {
                println!("{v}");
                summary.failures.push(v);
            }
        }
    }
    summary
}
