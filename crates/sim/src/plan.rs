//! Seed-driven fault plans.
//!
//! A [`FaultPlan`] implements [`s2_common::fault::FaultHook`]: every time the
//! engine passes a named injection site, the plan draws a deterministic
//! pseudo-random decision from `(seed, site, hit#)` and answers Continue,
//! Error, or Crash. Because the decision depends only on the seed and the
//! per-site hit counter — never on wall clock, thread timing, or memory
//! addresses — the same seed over the same workload reproduces the exact
//! same injection trace, byte for byte.

use s2_common::sync::{rank, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::ThreadId;

use s2_common::fault::{FaultAction, FaultHook};
use s2_common::Error;

/// Per-site injection probabilities.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteConfig {
    /// Probability of answering `Error(Unavailable)` at each hit.
    pub error_p: f64,
    /// Probability of answering `Crash` (panic-the-engine) at each hit.
    pub crash_p: f64,
    /// Sites on background threads (e.g. the blob uploader worker) must opt
    /// in; they receive error injection only — crashing a foreign thread
    /// would abort the process instead of unwinding into the harness.
    pub any_thread: bool,
}

#[derive(Default)]
struct PlanState {
    /// Monotonic per-site hit counters. These, not wall-clock retries, index
    /// the random stream — so a retry loop sees *fresh* draws each attempt
    /// and cannot livelock on a permanently-failing site.
    hits: HashMap<String, u64>,
    /// Every non-Continue decision, in order: `"site#hit:crash"` / `":error"`.
    trace: Vec<String>,
}

/// A deterministic fault-injection plan (see module docs).
pub struct FaultPlan {
    seed: u64,
    armed_thread: ThreadId,
    sites: HashMap<String, SiteConfig>,
    state: Mutex<PlanState>,
    /// While set, every site answers Continue and counters freeze. The
    /// harness uses this for phases that must make progress (final
    /// upload/verification) so they stay deterministic too.
    quiet: AtomicBool,
}

impl FaultPlan {
    /// A plan with no sites configured, armed for the calling thread.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            armed_thread: std::thread::current().id(),
            sites: HashMap::new(),
            state: Mutex::new(&rank::SIM_PLAN, PlanState::default()),
            quiet: AtomicBool::new(false),
        }
    }

    /// Configure a site with error/crash probabilities (same-thread only).
    pub fn site(&mut self, name: &str, error_p: f64, crash_p: f64) -> &mut Self {
        self.sites.insert(name.to_string(), SiteConfig { error_p, crash_p, any_thread: false });
        self
    }

    /// Configure a site that also fires on foreign threads (error-only there).
    pub fn site_any_thread(&mut self, name: &str, error_p: f64, crash_p: f64) -> &mut Self {
        self.sites.insert(name.to_string(), SiteConfig { error_p, crash_p, any_thread: true });
        self
    }

    /// Suspend (`true`) or resume (`false`) all injection.
    pub fn set_quiet(&self, quiet: bool) {
        self.quiet.store(quiet, Ordering::SeqCst);
    }

    /// The injection trace so far (cloned).
    pub fn trace(&self) -> Vec<String> {
        self.state.lock().trace.clone()
    }

    /// Number of Crash decisions issued.
    pub fn crash_count(&self) -> u64 {
        self.state.lock().trace.iter().filter(|t| t.ends_with(":crash")).count() as u64
    }

    /// Number of Error decisions issued.
    pub fn error_count(&self) -> u64 {
        self.state.lock().trace.iter().filter(|t| t.ends_with(":error")).count() as u64
    }
}

/// FNV-1a, used to fold the site name into the decision stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: one well-mixed draw per (seed, site, hit).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` for this (seed, site, hit) triple.
fn unit_draw(seed: u64, site: &str, hit: u64) -> f64 {
    let bits = mix(seed ^ fnv1a(site).rotate_left(17) ^ hit.wrapping_mul(0x2545_f491_4f6c_dd1d));
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultHook for FaultPlan {
    fn evaluate(&self, site: &str) -> FaultAction {
        if self.quiet.load(Ordering::SeqCst) {
            return FaultAction::Continue;
        }
        let Some(cfg) = self.sites.get(site) else { return FaultAction::Continue };
        let foreign = std::thread::current().id() != self.armed_thread;
        if foreign && !cfg.any_thread {
            return FaultAction::Continue;
        }
        let mut st = self.state.lock();
        let hit = st.hits.entry(site.to_string()).or_insert(0);
        let n = *hit;
        *hit += 1;
        let r = unit_draw(self.seed, site, n);
        if r < cfg.crash_p {
            if foreign {
                // Crash decisions never fire off the armed thread (an
                // unwinding worker would abort, not hand control back).
                return FaultAction::Continue;
            }
            st.trace.push(format!("{site}#{n}:crash"));
            s2_obs::counter!("sim.injected.crashes").inc();
            FaultAction::Crash
        } else if r < cfg.crash_p + cfg.error_p {
            st.trace.push(format!("{site}#{n}:error"));
            s2_obs::counter!("sim.injected.errors").inc();
            FaultAction::Error(Error::Unavailable(format!("injected fault at {site}")))
        } else {
            FaultAction::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let mk = || {
            let mut p = FaultPlan::new(7);
            p.site("a", 0.3, 0.1).site("b", 0.0, 0.5);
            p
        };
        let (p1, p2) = (mk(), mk());
        for _ in 0..200 {
            for s in ["a", "b"] {
                let a1 = matches!(p1.evaluate(s), FaultAction::Continue);
                let a2 = matches!(p2.evaluate(s), FaultAction::Continue);
                assert_eq!(a1, a2);
            }
        }
        assert_eq!(p1.trace(), p2.trace());
        assert!(!p1.trace().is_empty());
    }

    #[test]
    fn quiet_freezes_everything() {
        let mut p = FaultPlan::new(1);
        p.site("x", 1.0, 0.0);
        p.set_quiet(true);
        for _ in 0..10 {
            assert!(matches!(p.evaluate("x"), FaultAction::Continue));
        }
        assert!(p.trace().is_empty());
        p.set_quiet(false);
        assert!(matches!(p.evaluate("x"), FaultAction::Error(_)));
    }

    #[test]
    fn foreign_threads_never_crash() {
        let mut p = FaultPlan::new(3);
        p.site_any_thread("up", 0.0, 1.0); // crash-certain, but cross-thread
        let p = std::sync::Arc::new(p);
        let p2 = std::sync::Arc::clone(&p);
        std::thread::spawn(move || {
            for _ in 0..20 {
                // crash_p downgrades to Continue off-thread (error_p is 0).
                assert!(matches!(p2.evaluate("up"), FaultAction::Continue));
            }
        })
        .join()
        .unwrap();
        // On the armed thread the same site crashes.
        assert!(matches!(p.evaluate("up"), FaultAction::Crash));
    }

    #[test]
    fn unconfigured_sites_continue() {
        let p = FaultPlan::new(9);
        assert!(matches!(p.evaluate("nope"), FaultAction::Continue));
        assert!(p.trace().is_empty());
    }
}
