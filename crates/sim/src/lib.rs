//! s2-sim: deterministic crash-recovery and fault-injection harness for the
//! commit / upload / restore path.
//!
//! The paper's durability contract (§3, §3.1): a commit is durable once in
//! the local replicated WAL; blob uploads happen asynchronously and only
//! below the fully-durable-and-replicated position; the blob store doubles
//! as a continuous backup enabling point-in-time restore (§3.2). This crate
//! stress-tests those claims under adversity:
//!
//! - [`plan::FaultPlan`] drives the engine's named injection sites
//!   (`wal.append`, `wal.sync`, `core.commit.log`, `core.flush.*`,
//!   `core.merge.*`, `blob.put`, `blob.get`, `blob.uploader.attempt`,
//!   `storage.snapshot.put`, `pitr.restore`) from a seed: torn writes,
//!   dropped fsyncs, blob failures, and hard kill points.
//! - [`scenario::run_scenario`] executes a randomized workload (inserts,
//!   updates, deletes, unique-key reads) interleaved with crashes, reopens
//!   the engine over the surviving bytes, and checks invariants against a
//!   `BTreeMap` oracle — including replica failover convergence and PITR to
//!   every captured position.
//! - [`runner::run_many`] sweeps seed ranges; every failure prints the seed
//!   and kill-point trace, and the same seed replays the identical trace.
//! - [`outage::run_outage_scenario`] drills the blob-resilience layer:
//!   transient error bursts, a sustained 100% outage, and a latency spike,
//!   checking that commits keep acknowledging, cold reads fail fast within
//!   their budget, and the upload backlog fully drains (blob/local
//!   convergence) after recovery.
//!
//! Run it: `cargo run -p s2-sim -- --seed 42 --scenarios 200`, or
//! `cargo run -p s2-sim -- --scenario outage --seed 7 --scenarios 10`.

pub mod oracle;
pub mod outage;
pub mod plan;
pub mod runner;
pub mod scenario;
pub mod sqlgen;
pub mod storage;
pub mod workspace;

pub use oracle::{Model, Oracle};
pub use outage::{
    run_outage_many, run_outage_scenario, OutageReport, OutageSummary, OUTAGE_PARTITION,
};
pub use plan::{FaultPlan, SiteConfig};
pub use runner::{run_group_many, run_many, RunSummary};
pub use scenario::{
    harness_lock, install_quiet_panic_hook, run_group_scenario, run_scenario, GroupMode,
    ScenarioReport, Violation, PARTITION,
};
pub use sqlgen::{run_sql_many, SqlSummary};
pub use storage::{BlobReadFileStore, SimFileStore};
pub use workspace::{
    run_workspace_many, run_workspace_scenario, WorkspaceReport, WorkspaceSummary, WORKSPACE_DB,
};
