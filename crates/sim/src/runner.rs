//! Batch scenario runner: sweep a seed range, aggregate, report failures.

use crate::scenario::{run_group_scenario, run_scenario, ScenarioReport, Violation};

/// Aggregate results of a seed sweep.
#[derive(Debug, Default)]
pub struct RunSummary {
    /// Scenarios executed.
    pub scenarios: usize,
    /// Scenarios that ran with a synchronous replica (failover mode).
    pub replica_scenarios: usize,
    /// Scenarios whose commits went through the group-commit pipeline.
    pub group_scenarios: usize,
    /// Committed transactions across all scenarios.
    pub commits: u64,
    /// Injected crashes survived.
    pub crashes: u64,
    /// Crash recoveries performed.
    pub recoveries: u64,
    /// Injected (non-crash) errors observed.
    pub injected_errors: u64,
    /// PITR restores verified against the oracle.
    pub pitr_checks: u64,
    /// Invariant violations, with their replayable seeds and traces.
    pub failures: Vec<Violation>,
}

impl RunSummary {
    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{} scenarios ({} replicated, {} group-commit): {} commits, {} crashes, \
             {} recoveries, {} injected errors, {} PITR checks, {} violations",
            self.scenarios,
            self.replica_scenarios,
            self.group_scenarios,
            self.commits,
            self.crashes,
            self.recoveries,
            self.injected_errors,
            self.pitr_checks,
            self.failures.len()
        )
    }
}

/// Run `count` scenarios on seeds `base_seed..base_seed+count`.
pub fn run_many(base_seed: u64, count: usize, verbose: bool) -> RunSummary {
    sweep(base_seed, count, verbose, run_scenario)
}

/// Run `count` group-commit crash drills (pipeline forced on, `wal.group.*`
/// kill points boosted) on seeds `base_seed..base_seed+count`.
pub fn run_group_many(base_seed: u64, count: usize, verbose: bool) -> RunSummary {
    sweep(base_seed, count, verbose, run_group_scenario)
}

fn sweep(
    base_seed: u64,
    count: usize,
    verbose: bool,
    run: fn(u64) -> Result<ScenarioReport, Violation>,
) -> RunSummary {
    let mut sum = RunSummary::default();
    for i in 0..count {
        let seed = base_seed.wrapping_add(i as u64);
        sum.scenarios += 1;
        match run(seed) {
            Ok(r) => {
                sum.replica_scenarios += r.replica_mode as usize;
                sum.group_scenarios += r.group_commit as usize;
                sum.commits += r.commits;
                sum.crashes += r.crashes;
                sum.recoveries += r.recoveries;
                sum.injected_errors += r.injected_errors;
                sum.pitr_checks += r.pitr_checks;
                if verbose {
                    eprintln!(
                        "seed {seed}: ok ({} steps, {} commits, {} crashes, {} pitr, \
                         replica={}, group={})",
                        r.steps,
                        r.commits,
                        r.crashes,
                        r.pitr_checks,
                        r.replica_mode,
                        r.group_commit
                    );
                }
            }
            Err(v) => {
                eprintln!("VIOLATION: {v}");
                sum.failures.push(v);
            }
        }
    }
    sum
}
