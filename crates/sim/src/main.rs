//! CLI for the crash-recovery simulator.
//!
//! ```text
//! cargo run -p s2-sim -- --seed 42 --scenarios 200 [--verbose]
//! cargo run -p s2-sim -- --scenario outage --seed 7 --scenarios 10
//! ```
//!
//! `--scenario crash` (default) runs the crash-recovery sweep; `group`
//! forces the group-commit pipeline on with boosted `wal.group.*` kill
//! points; `outage` runs blob-outage drills against the resilience layer;
//! `workspace` drills elastic workspace fleets (provision/detach churn with
//! kill points, transient bursts, a total blob outage, convergence to the
//! primary); `sql` runs generated queries through the full s2-sql pipeline
//! against a plain-Rust oracle. Exit code 0 means every scenario upheld
//! every invariant; 1 means at least one violation (each printed with its
//! replayable seed and decision trace).

fn main() {
    let mut seed = 42u64;
    let mut scenarios = 200usize;
    let mut verbose = false;
    let mut scenario = "crash".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--scenarios" => {
                scenarios = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scenarios needs an integer"));
            }
            "--scenario" => {
                scenario = args
                    .next()
                    .unwrap_or_else(|| die("--scenario needs crash|group|outage|workspace|sql"));
                if scenario != "crash"
                    && scenario != "group"
                    && scenario != "outage"
                    && scenario != "workspace"
                    && scenario != "sql"
                {
                    die("--scenario needs crash|group|outage|workspace|sql");
                }
            }
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: s2-sim [--scenario crash|group|outage|workspace|sql] [--seed N] \
                     [--scenarios N] [--verbose]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    if scenario == "sql" {
        println!("s2-sim: {scenarios} sql drills from seed {seed}");
        let summary = s2_sim::run_sql_many(seed, scenarios, verbose);
        println!("{}", summary.summary_line());
        if !summary.failures.is_empty() {
            println!("\nreproduce with:");
            for v in &summary.failures {
                println!("  cargo run -p s2-sim -- --scenario sql --seed {} --scenarios 1", v.seed);
            }
            std::process::exit(1);
        }
        return;
    }

    if scenario == "group" {
        println!("s2-sim: {scenarios} group-commit crash drills from seed {seed}");
        let summary = s2_sim::run_group_many(seed, scenarios, verbose);
        println!("{}", summary.summary_line());
        if !summary.failures.is_empty() {
            println!("\nreproduce with:");
            for v in &summary.failures {
                println!(
                    "  cargo run -p s2-sim -- --scenario group --seed {} --scenarios 1",
                    v.seed
                );
            }
            std::process::exit(1);
        }
        return;
    }

    if scenario == "workspace" {
        println!("s2-sim: {scenarios} workspace drills from seed {seed}");
        let summary = s2_sim::run_workspace_many(seed, scenarios, verbose);
        println!("{}", summary.summary_line());
        if !summary.failures.is_empty() {
            println!("\nreproduce with:");
            for v in &summary.failures {
                println!(
                    "  cargo run -p s2-sim -- --scenario workspace --seed {} --scenarios 1",
                    v.seed
                );
            }
            std::process::exit(1);
        }
        return;
    }

    if scenario == "outage" {
        println!("s2-sim: {scenarios} outage drills from seed {seed}");
        let summary = s2_sim::run_outage_many(seed, scenarios, verbose);
        println!("{}", summary.summary_line());
        if !summary.failures.is_empty() {
            println!("\nreproduce with:");
            for v in &summary.failures {
                println!(
                    "  cargo run -p s2-sim -- --scenario outage --seed {} --scenarios 1",
                    v.seed
                );
            }
            std::process::exit(1);
        }
        return;
    }

    println!("s2-sim: {scenarios} scenarios from seed {seed}");
    let summary = s2_sim::run_many(seed, scenarios, verbose);
    println!("{}", summary.summary_line());
    if !summary.failures.is_empty() {
        println!("\nreproduce with:");
        for v in &summary.failures {
            println!("  cargo run -p s2-sim -- --seed {} --scenarios 1", v.seed);
        }
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("s2-sim: {msg}");
    std::process::exit(2);
}
