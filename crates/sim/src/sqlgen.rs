//! Randomized SQL scenario: generated queries against a seeded partition,
//! cross-checked against a plain-Rust oracle.
//!
//! Each drill builds a two-table partition (`t(k, grp, v, s)` joined to
//! `u(id, name)`) from the seed, mirrors every row into vectors, then runs a
//! batch of generated SELECTs through the full `s2-sql` pipeline (lex →
//! parse → plan → optimize → execute) and recomputes each result in plain
//! Rust. Any cell mismatch, row-count mismatch, or planner/executor error is
//! a violation with a replayable seed.
//!
//! Query values stay small integers so `SUM`/`AVG` (f64 accumulators) are
//! exact and order-independent, and every generated query carries an ORDER
//! BY over a unique key so both sides agree on row order. Deterministic by
//! construction: no wall-clock reads, everything derives from the seed.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_sql::SqlContext;
use s2_wal::Log;

use crate::scenario::Violation;

/// Per-drill oracle state: every row of both tables, in key order.
struct Data {
    /// `t` rows as (k, grp, v, s).
    t: Vec<(i64, i64, i64, &'static str)>,
    /// `u` rows as (id, name).
    u: Vec<(i64, String)>,
}

const STRINGS: &[&str] = &["amber", "blue", "green", "red", "violet"];

/// Build the seeded partition plus its oracle mirror.
fn build(seed: u64) -> Result<(Arc<Partition>, Data), String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0501);
    let p = Partition::new("sql", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));

    let t_schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int64),
        ColumnDef::new("grp", DataType::Int64),
        ColumnDef::new("v", DataType::Int64),
        ColumnDef::new("s", DataType::Str),
    ])
    .map_err(|e| e.to_string())?;
    let t_opts =
        TableOptions::new().with_sort_key(vec![0]).with_unique("pk", vec![0]).with_segment_rows(64);
    let t = p.create_table("t", t_schema, t_opts).map_err(|e| e.to_string())?;

    let u_schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("name", DataType::Str),
    ])
    .map_err(|e| e.to_string())?;
    let u_opts = TableOptions::new().with_sort_key(vec![0]).with_unique("pk", vec![0]);
    let u = p.create_table("u", u_schema, u_opts).map_err(|e| e.to_string())?;

    let groups = rng.random_range(3..10i64);
    let rows = rng.random_range(40..200usize);
    let mut data = Data { t: Vec::with_capacity(rows), u: Vec::new() };

    let mut txn = p.begin();
    for id in 0..groups {
        let name = format!("group-{id}");
        txn.insert(u, Row::new(vec![Value::Int(id), Value::str(name.clone())]))
            .map_err(|e| e.to_string())?;
        data.u.push((id, name));
    }
    for k in 0..rows as i64 {
        let grp = rng.random_range(0..groups);
        let v = rng.random_range(-100..100i64);
        let s = STRINGS[rng.random_range(0..STRINGS.len())];
        txn.insert(t, Row::new(vec![Value::Int(k), Value::Int(grp), Value::Int(v), Value::str(s)]))
            .map_err(|e| e.to_string())?;
        data.t.push((k, grp, v, s));
    }
    txn.commit().map_err(|e| e.to_string())?;

    // Sometimes flush to columnstore (and sometimes keep a rowstore tail) so
    // the generated queries cross both storage paths.
    if rng.random_bool(0.7) {
        p.flush_table(t, true).map_err(|e| e.to_string())?;
        p.flush_table(u, true).map_err(|e| e.to_string())?;
        if rng.random_bool(0.5) {
            let mut txn = p.begin();
            let extra = rng.random_range(5..30usize);
            for i in 0..extra as i64 {
                let k = rows as i64 + i;
                let grp = rng.random_range(0..groups);
                let v = rng.random_range(-100..100i64);
                let s = STRINGS[rng.random_range(0..STRINGS.len())];
                txn.insert(
                    t,
                    Row::new(vec![Value::Int(k), Value::Int(grp), Value::Int(v), Value::str(s)]),
                )
                .map_err(|e| e.to_string())?;
                data.t.push((k, grp, v, s));
            }
            txn.commit().map_err(|e| e.to_string())?;
        }
    }
    Ok((p, data))
}

/// One generated query: the SQL text plus the oracle's expected rows.
struct Case {
    sql: String,
    expect: Vec<Vec<Value>>,
}

fn sum_value(vals: &[i64]) -> Value {
    if vals.is_empty() {
        Value::Null
    } else {
        Value::Double(vals.iter().map(|&v| v as f64).sum())
    }
}

fn gen_case(rng: &mut StdRng, d: &Data) -> Case {
    match rng.random_range(0..7u32) {
        // Projection + conjunctive filter + sort direction + optional limit.
        0 => {
            let x = rng.random_range(-100..100i64);
            let y = rng.random_range(0..d.t.len() as i64 + 1);
            let desc = rng.random_bool(0.5);
            let limit =
                if rng.random_bool(0.5) { Some(rng.random_range(1..40usize)) } else { None };
            let mut rows: Vec<(i64, i64)> =
                d.t.iter().filter(|r| r.2 >= x && r.0 < y).map(|r| (r.0, r.2)).collect();
            rows.sort_by_key(|r| if desc { -r.0 } else { r.0 });
            if let Some(l) = limit {
                rows.truncate(l);
            }
            Case {
                sql: format!(
                    "SELECT k, v FROM t WHERE v >= {x} AND k < {y} ORDER BY k{}{}",
                    if desc { " DESC" } else { "" },
                    limit.map(|l| format!(" LIMIT {l}")).unwrap_or_default()
                ),
                expect: rows.into_iter().map(|(k, v)| vec![Value::Int(k), Value::Int(v)]).collect(),
            }
        }
        // Global aggregates over a (possibly empty) group slice.
        1 => {
            let g = rng.random_range(0..12i64);
            let vs: Vec<i64> = d.t.iter().filter(|r| r.1 == g).map(|r| r.2).collect();
            let min = vs.iter().min().map_or(Value::Null, |&v| Value::Int(v));
            let max = vs.iter().max().map_or(Value::Null, |&v| Value::Int(v));
            Case {
                sql: format!("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE grp = {g}"),
                expect: vec![vec![Value::Int(vs.len() as i64), sum_value(&vs), min, max]],
            }
        }
        // Group-by with count and sum, ordered by the group key.
        2 => {
            let mut gs: Vec<i64> = d.t.iter().map(|r| r.1).collect();
            gs.sort_unstable();
            gs.dedup();
            let expect = gs
                .into_iter()
                .map(|g| {
                    let vs: Vec<i64> = d.t.iter().filter(|r| r.1 == g).map(|r| r.2).collect();
                    vec![Value::Int(g), Value::Int(vs.len() as i64), sum_value(&vs)]
                })
                .collect();
            Case {
                sql: "SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp ORDER BY grp".into(),
                expect,
            }
        }
        // DISTINCT over the low-cardinality string column.
        3 => {
            let desc = rng.random_bool(0.5);
            let mut ss: Vec<&str> = d.t.iter().map(|r| r.3).collect();
            ss.sort_unstable();
            ss.dedup();
            if desc {
                ss.reverse();
            }
            Case {
                sql: format!(
                    "SELECT DISTINCT s FROM t ORDER BY s{}",
                    if desc { " DESC" } else { "" }
                ),
                expect: ss.into_iter().map(|s| vec![Value::str(s)]).collect(),
            }
        }
        // Join to the dimension table through the group key.
        4 => {
            let x = rng.random_range(-100..100i64);
            let mut rows: Vec<(i64, String)> =
                d.t.iter()
                    .filter(|r| r.2 > x)
                    .filter_map(|r| {
                        d.u.iter().find(|(id, _)| *id == r.1).map(|(_, n)| (r.0, n.clone()))
                    })
                    .collect();
            rows.sort_by_key(|r| r.0);
            Case {
                sql: format!("SELECT k, name FROM t JOIN u ON grp = id WHERE v > {x} ORDER BY k"),
                expect: rows.into_iter().map(|(k, n)| vec![Value::Int(k), Value::str(n)]).collect(),
            }
        }
        // HAVING over the grouped count.
        5 => {
            let h = rng.random_range(0..40i64);
            let mut gs: Vec<i64> = d.t.iter().map(|r| r.1).collect();
            gs.sort_unstable();
            gs.dedup();
            let expect = gs
                .into_iter()
                .filter_map(|g| {
                    let n = d.t.iter().filter(|r| r.1 == g).count() as i64;
                    (n > h).then(|| vec![Value::Int(g), Value::Int(n)])
                })
                .collect();
            Case {
                sql: format!(
                    "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp HAVING COUNT(*) > {h} \
                     ORDER BY grp"
                ),
                expect,
            }
        }
        // CASE expression in the projection.
        _ => {
            let lim = rng.random_range(5..60usize);
            let mut rows: Vec<(i64, i64)> =
                d.t.iter().map(|r| (r.0, i64::from(r.2 >= 0))).collect();
            rows.sort_by_key(|r| r.0);
            rows.truncate(lim);
            Case {
                sql: format!(
                    "SELECT k, CASE WHEN v >= 0 THEN 1 ELSE 0 END FROM t \
                     ORDER BY k LIMIT {lim}"
                ),
                expect: rows.into_iter().map(|(k, f)| vec![Value::Int(k), Value::Int(f)]).collect(),
            }
        }
    }
}

const QUERIES_PER_DRILL: usize = 24;

/// Run one SQL drill; `Err` carries the violation.
fn run_sql_scenario(seed: u64) -> Result<(usize, usize), Violation> {
    let fail = |message: String, trace: Vec<String>| Violation { seed, message, trace };
    let (p, data) = build(seed).map_err(|e| fail(format!("setup failed: {e}"), Vec::new()))?;
    let snap = p.read_snapshot();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DDC_A5E0);
    let mut rows_checked = 0usize;
    for qi in 0..QUERIES_PER_DRILL {
        let case = gen_case(&mut rng, &data);
        let trace = |msg: &str| vec![format!("query {qi}: {}", case.sql), msg.to_string()];
        let got = snap.query(&case.sql).map_err(|e| {
            fail(format!("query {qi} failed to plan/execute"), trace(&format!("error: {e}")))
        })?;
        if got.rows() != case.expect.len() {
            return Err(fail(
                format!("query {qi}: {} rows, oracle expects {}", got.rows(), case.expect.len()),
                trace(&format!("first expected rows: {:?}", case.expect.iter().take(3))),
            ));
        }
        for (ri, want) in case.expect.iter().enumerate() {
            if got.width() != want.len() {
                return Err(fail(
                    format!("query {qi}: width {} vs oracle {}", got.width(), want.len()),
                    trace(""),
                ));
            }
            for (ci, w) in want.iter().enumerate() {
                let g = got.value(ci, ri);
                if g != *w {
                    return Err(fail(
                        format!("query {qi}: cell ({ri},{ci}) = {g:?}, oracle expects {w:?}"),
                        trace(&format!("expected row: {want:?}")),
                    ));
                }
            }
            rows_checked += 1;
        }
    }
    Ok((QUERIES_PER_DRILL, rows_checked))
}

/// Aggregate over a seed sweep of SQL drills.
#[derive(Debug)]
pub struct SqlSummary {
    /// Drills run.
    pub scenarios: usize,
    /// Generated queries executed.
    pub queries: usize,
    /// Result rows compared cell-by-cell against the oracle.
    pub rows_checked: usize,
    /// Violations (empty on success).
    pub failures: Vec<Violation>,
}

impl SqlSummary {
    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{} sql drills: {} generated queries, {} result rows oracle-checked, {} violations",
            self.scenarios,
            self.queries,
            self.rows_checked,
            self.failures.len()
        )
    }
}

/// Run `count` SQL drills starting at `base_seed`.
pub fn run_sql_many(base_seed: u64, count: usize, verbose: bool) -> SqlSummary {
    let mut summary =
        SqlSummary { scenarios: count, queries: 0, rows_checked: 0, failures: Vec::new() };
    for i in 0..count {
        let seed = base_seed.wrapping_add(i as u64);
        match run_sql_scenario(seed) {
            Ok((queries, rows)) => {
                if verbose {
                    println!("seed {seed}: {queries} queries, {rows} rows checked");
                }
                summary.queries += queries;
                summary.rows_checked += rows;
            }
            Err(v) => {
                println!("{v}");
                summary.failures.push(v);
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_seeds_zero_violations() {
        let summary = run_sql_many(42, 10, false);
        assert!(summary.failures.is_empty(), "{:?}", summary.failures);
        assert_eq!(summary.queries, 10 * QUERIES_PER_DRILL);
        assert!(summary.rows_checked > 0);
    }
}
