//! Log record framing.
//!
//! The WAL is deliberately ignorant of record *semantics*: the storage engine
//! (s2-core) serializes its operations into opaque payloads and tags them
//! with a kind byte. This crate owns framing, checksums and positions.
//!
//! Frame layout: `magic u32 | kind u8 | len u32 | payload | crc32` where the
//! CRC covers kind, len and payload. A record's [`LogPosition`] is the byte
//! offset of its magic word in the partition's log stream.

use s2_common::crc::crc32;
use s2_common::{Error, LogPosition, Result};

/// Frame magic ("S2LG" little-endian).
pub const RECORD_MAGIC: u32 = 0x474C_3253;

/// Fixed framing overhead per record (magic + kind + len + crc).
pub const RECORD_OVERHEAD: usize = 4 + 1 + 4 + 4;

/// Append one framed record to `out`.
pub fn encode_record(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    let mut body = Vec::with_capacity(5 + payload.len());
    body.push(kind);
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Length of the longest prefix of `buf` made of whole, checksum-valid
/// frames. Recovery truncates the log here: anything past it is a torn tail
/// from a crash mid-append (or trailing garbage) and was never acknowledged —
/// acks only ever cover synced, CRC-complete prefixes.
pub fn valid_prefix_len(buf: &[u8]) -> usize {
    let mut it = RecordIter::new(buf, 0);
    for rec in it.by_ref() {
        if rec.is_err() {
            break;
        }
    }
    it.consumed_lp() as usize
}

/// One decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedRecord<'a> {
    /// Byte offset of the record's start in the log stream.
    pub lp: LogPosition,
    /// Byte offset just past the record (the next record's position).
    pub end_lp: LogPosition,
    /// Record kind tag (interpreted by s2-core).
    pub kind: u8,
    /// Opaque payload.
    pub payload: &'a [u8],
}

/// Iterator over framed records in a contiguous log byte range.
///
/// A *cleanly truncated* tail (fewer bytes than a full frame, or a frame whose
/// payload is cut off) ends iteration silently — that is the expected state
/// after a crash mid-append. A corrupt frame (bad magic or CRC in the middle
/// of otherwise-intact data) yields an error.
pub struct RecordIter<'a> {
    buf: &'a [u8],
    /// Log position of `buf[0]`.
    base_lp: LogPosition,
    pos: usize,
    failed: bool,
}

impl<'a> RecordIter<'a> {
    /// Iterate records in `buf`, which starts at log position `base_lp`.
    pub fn new(buf: &'a [u8], base_lp: LogPosition) -> RecordIter<'a> {
        RecordIter { buf, base_lp, pos: 0, failed: false }
    }

    /// Log position the iterator has consumed up to (end of last good record).
    pub fn consumed_lp(&self) -> LogPosition {
        self.base_lp + self.pos as u64
    }
}

/// Read a little-endian u32 at `at`; the caller has already verified the
/// slice is long enough, so a short slice is handled without panicking by
/// reading what would be an impossible length/magic (all-ones).
fn le_u32(buf: &[u8], at: usize) -> u32 {
    match buf.get(at..at + 4) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => u32::MAX,
    }
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = Result<DecodedRecord<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.buf.len() {
            return None;
        }
        let rest = &self.buf[self.pos..];
        if rest.len() < RECORD_OVERHEAD {
            return None; // truncated tail
        }
        let magic = le_u32(rest, 0);
        if magic != RECORD_MAGIC {
            self.failed = true;
            return Some(Err(Error::Corruption(format!(
                "bad record magic {magic:#x} at lp {}",
                self.consumed_lp()
            ))));
        }
        let kind = rest[4];
        let len = le_u32(rest, 5) as usize;
        let total = RECORD_OVERHEAD + len;
        if rest.len() < total {
            return None; // truncated tail
        }
        let payload = &rest[9..9 + len];
        let stored_crc = le_u32(rest, 9 + len);
        let actual = crc32(&rest[4..9 + len]);
        if stored_crc != actual {
            self.failed = true;
            return Some(Err(Error::Corruption(format!(
                "record crc mismatch at lp {}",
                self.consumed_lp()
            ))));
        }
        let lp = self.consumed_lp();
        self.pos += total;
        Some(Ok(DecodedRecord { lp, end_lp: self.base_lp + self.pos as u64, kind, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 1, b"hello");
        encode_record(&mut buf, 2, b"");
        encode_record(&mut buf, 3, &[0xAB; 1000]);
        let records: Vec<_> = RecordIter::new(&buf, 0).map(|r| r.unwrap()).collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, 1);
        assert_eq!(records[0].payload, b"hello");
        assert_eq!(records[0].lp, 0);
        assert_eq!(records[1].lp, records[0].end_lp);
        assert_eq!(records[2].payload.len(), 1000);
    }

    #[test]
    fn base_lp_offsets_positions() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 1, b"x");
        let recs: Vec<_> = RecordIter::new(&buf, 500).map(|r| r.unwrap()).collect();
        assert_eq!(recs[0].lp, 500);
        assert_eq!(recs[0].end_lp, 500 + buf.len() as u64);
    }

    #[test]
    fn truncated_tail_stops_silently() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 1, b"first");
        let good_len = buf.len();
        encode_record(&mut buf, 2, b"second-record");
        // Cut mid-way through the second record.
        let cut = &buf[..good_len + 6];
        let mut it = RecordIter::new(cut, 0);
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().is_none());
        assert_eq!(it.consumed_lp(), good_len as u64);
    }

    #[test]
    fn corrupt_crc_is_error() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 1, b"payload");
        let n = buf.len();
        buf[n - 6] ^= 0xFF; // flip a payload byte, CRC now mismatches
        let mut it = RecordIter::new(&buf, 0);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "iteration halts after corruption");
    }

    #[test]
    fn valid_prefix_stops_at_truncation_and_corruption() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 1, b"first");
        let b1 = buf.len();
        encode_record(&mut buf, 2, b"second");
        let b2 = buf.len();
        assert_eq!(valid_prefix_len(&buf), b2);
        assert_eq!(valid_prefix_len(&buf[..b2 - 3]), b1, "torn second frame");
        assert_eq!(valid_prefix_len(&buf[..b1 + 2]), b1, "tiny tail fragment");
        let mut corrupt = buf.clone();
        corrupt[b1 + 1] ^= 0xFF; // kind byte of second frame -> CRC mismatch
        assert_eq!(valid_prefix_len(&corrupt), b1);
        assert_eq!(valid_prefix_len(&[]), 0);
    }

    #[test]
    fn bad_magic_is_error() {
        let mut buf = Vec::new();
        encode_record(&mut buf, 1, b"payload");
        buf[0] = 0;
        let mut it = RecordIter::new(&buf, 0);
        assert!(it.next().unwrap().is_err());
    }
}
