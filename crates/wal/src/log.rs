//! The per-partition append-only log (paper §3, §3.1).
//!
//! "A log is created for each database partition, and it's persisted to disk
//! and replicated to guarantee the durability of writes." The log here is a
//! byte stream of framed records with three watermarks:
//!
//! - `durable_lp`   — synced to the local log file (async by default);
//! - `replicated_lp` — acknowledged in-memory by at least one replica (the
//!   default commit durability rule, paper §3);
//! - `uploaded_lp`  — sealed into chunks and shipped to blob storage. Only
//!   positions below "fully durable and replicated" may be uploaded
//!   (paper §3.1), and the caller supplies that safe position.
//!
//! Subscribers receive appended bytes immediately — *before* commit — which
//! is exactly the paper's "log pages can be replicated out-of-order and
//! replicated early without waiting for transaction commit" behaviour: a
//! commit is itself just a record, so shipping bytes eagerly never ships an
//! unredoable state.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use s2_common::sync::{rank, Condvar, Mutex};
use s2_common::{Error, LogPosition, Result};

use crate::record::encode_record;

/// A contiguous span of log bytes starting at `start_lp`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogChunk {
    /// Log position of `bytes[0]`.
    pub start_lp: LogPosition,
    /// Raw framed-record bytes.
    pub bytes: Arc<Vec<u8>>,
}

impl LogChunk {
    /// Position just past this chunk.
    pub fn end_lp(&self) -> LogPosition {
        self.start_lp + self.bytes.len() as u64
    }
}

struct LogInner {
    /// In-memory bytes from `mem_start_lp` to `end_lp`.
    mem: Vec<u8>,
    /// Log position of `mem[0]` (advances when prefixes are truncated after upload).
    mem_start_lp: LogPosition,
    /// Position past the last appended byte.
    end_lp: LogPosition,
    durable_lp: LogPosition,
    replicated_lp: LogPosition,
    uploaded_lp: LogPosition,
    file: Option<File>,
    file_path: Option<PathBuf>,
    subscribers: Vec<Sender<LogChunk>>,
}

/// A partition's write-ahead log.
pub struct Log {
    inner: Mutex<LogInner>,
    /// Signaled when `replicated_lp` advances; commit ack waits park here
    /// instead of spinning (one batched wait per group-commit batch).
    repl_cv: Condvar,
}

impl Log {
    /// Purely in-memory log (tests, replicas that reconstruct from streams).
    pub fn in_memory() -> Log {
        Log::in_memory_from(0)
    }

    /// In-memory log whose positions start at `start_lp` — used by replicas
    /// provisioned from a snapshot: their log tail mirrors the master's
    /// positions from the snapshot point onward.
    pub fn in_memory_from(start_lp: LogPosition) -> Log {
        Log {
            inner: Mutex::new(
                &rank::WAL_LOG,
                LogInner {
                    mem: Vec::new(),
                    mem_start_lp: start_lp,
                    end_lp: start_lp,
                    durable_lp: start_lp,
                    replicated_lp: 0,
                    uploaded_lp: start_lp,
                    file: None,
                    file_path: None,
                    subscribers: Vec::new(),
                },
            ),
            repl_cv: Condvar::new(),
        }
    }

    /// Log backed by a local file. If the file exists its contents are loaded
    /// (recovery reads through [`Log::read_range`] + `RecordIter`).
    ///
    /// A torn final frame — a crash mid-append persisted only a prefix of the
    /// last record, or garbage past the last sync — is truncated away at the
    /// longest checksum-valid prefix rather than surfaced as corruption.
    /// Nothing past that prefix was ever acknowledged: `durable_lp` (the
    /// position commits ack against) only advances over fully synced frames.
    pub fn open(path: impl AsRef<Path>) -> Result<Log> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        let mut mem = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut mem)?;
        let valid = crate::record::valid_prefix_len(&mem);
        if valid < mem.len() {
            s2_obs::counter!("wal.open.torn_tail_truncations").add(1);
            s2_obs::event(
                "wal.torn_tail",
                format!("dropped {} trailing bytes at lp {valid}", mem.len() - valid),
            );
            // Crash here models power loss mid-truncation: the next open
            // re-derives the same valid prefix and truncates again.
            s2_common::fault::crash_point("wal.open.truncate");
            file.set_len(valid as u64)?;
            mem.truncate(valid);
        }
        let end = mem.len() as u64;
        Ok(Log {
            inner: Mutex::new(
                &rank::WAL_LOG,
                LogInner {
                    mem,
                    mem_start_lp: 0,
                    end_lp: end,
                    durable_lp: end,
                    replicated_lp: 0,
                    uploaded_lp: 0,
                    file: Some(file),
                    file_path: Some(path),
                    subscribers: Vec::new(),
                },
            ),
            repl_cv: Condvar::new(),
        })
    }

    /// Append one framed record; returns (record start, record end) positions.
    pub fn append(&self, kind: u8, payload: &[u8]) -> (LogPosition, LogPosition) {
        self.append_group(&[(kind, payload)])
    }

    /// Append several records contiguously (group commit); returns the span.
    pub fn append_group(&self, records: &[(u8, &[u8])]) -> (LogPosition, LogPosition) {
        // Crash here models power loss before the record reached the log
        // buffer: the whole group is atomically absent from the stream.
        s2_common::fault::crash_point("wal.append");
        let mut chunk = Vec::new();
        for (kind, payload) in records {
            encode_record(&mut chunk, *kind, payload);
        }
        s2_obs::counter!("wal.append.records").add(records.len() as u64);
        s2_obs::counter!("wal.append.bytes").add(chunk.len() as u64);
        let mut inner = self.inner.lock();
        let start = inner.end_lp;
        inner.mem.extend_from_slice(&chunk);
        inner.end_lp += chunk.len() as u64;
        let end = inner.end_lp;
        if !inner.subscribers.is_empty() {
            let chunk = LogChunk { start_lp: start, bytes: Arc::new(chunk) };
            inner.subscribers.retain(|s| s.send(chunk.clone()).is_ok());
        }
        (start, end)
    }

    /// Append pre-framed record bytes verbatim (replication apply path: the
    /// replica's log must mirror the master's bytes and positions so the
    /// replica can be promoted and continue the stream).
    pub fn append_raw(&self, bytes: &[u8]) -> (LogPosition, LogPosition) {
        // Crash here models a replica losing power before mirrored bytes
        // reach its log buffer — the stream resumes from the last applied lp.
        s2_common::fault::crash_point("wal.append_raw");
        s2_obs::counter!("wal.append.bytes").add(bytes.len() as u64);
        let mut inner = self.inner.lock();
        let start = inner.end_lp;
        inner.mem.extend_from_slice(bytes);
        inner.end_lp += bytes.len() as u64;
        let end = inner.end_lp;
        if !inner.subscribers.is_empty() {
            let chunk = LogChunk { start_lp: start, bytes: Arc::new(bytes.to_vec()) };
            inner.subscribers.retain(|s| s.send(chunk.clone()).is_ok());
        }
        (start, end)
    }

    /// Position past the last appended byte.
    pub fn end_lp(&self) -> LogPosition {
        self.inner.lock().end_lp
    }

    /// Position synced to the local log file.
    pub fn durable_lp(&self) -> LogPosition {
        self.inner.lock().durable_lp
    }

    /// Position acknowledged by at least one replica.
    pub fn replicated_lp(&self) -> LogPosition {
        self.inner.lock().replicated_lp
    }

    /// Position already sealed and uploaded to blob storage.
    pub fn uploaded_lp(&self) -> LogPosition {
        self.inner.lock().uploaded_lp
    }

    /// Record a replica acknowledgement (monotonic); wakes ack waiters.
    pub fn set_replicated_lp(&self, lp: LogPosition) {
        let mut inner = self.inner.lock();
        if lp > inner.replicated_lp {
            inner.replicated_lp = lp;
            drop(inner);
            self.repl_cv.notify_all();
        }
    }

    /// Block until `replicated_lp >= lp` or the timeout elapses; true on
    /// success. One call on the batch-end position acknowledges every commit
    /// in a group-commit batch.
    pub fn wait_replicated(&self, lp: LogPosition, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        while inner.replicated_lp < lp {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self.repl_cv.wait_timeout(inner, deadline - now);
            inner = g;
        }
        true
    }

    /// Sync buffered bytes to the local log file. With no file this still
    /// advances `durable_lp` (an in-memory log is "as durable as it gets";
    /// the replication layer provides the real guarantee, paper §3).
    pub fn sync(&self) -> Result<LogPosition> {
        // A dropped/failed fsync must not advance `durable_lp`: the caller
        // may not ack commits past a position that never reached disk.
        s2_common::fault::failpoint("wal.sync")?;
        let mut inner = self.inner.lock();
        let end = inner.end_lp;
        let from = inner.durable_lp;
        if from < end {
            // Counted only when bytes actually move: `wal.fsync.calls` vs
            // `core.txn.commits` is how the TPC-C battery proves batching
            // (fsyncs-per-commit < 1 under contention).
            s2_obs::counter!("wal.fsync.calls").add(1);
            // Lag observed by this sync: bytes appended since the last one.
            s2_obs::gauge!("wal.fsync.lag_bytes").set((end - from) as i64);
            let timer = s2_obs::histogram!("wal.fsync.latency_us").start_timer();
            let start = (from - inner.mem_start_lp) as usize;
            let stop = (end - inner.mem_start_lp) as usize;
            // Split the borrows so the write can read `mem` while holding
            // the file mutably.
            let LogInner { file, mem, .. } = &mut *inner;
            if let Some(file) = file.as_mut() {
                file.write_all(&mem[start..stop])?;
                file.flush()?;
            }
            timer.stop();
            inner.durable_lp = end;
        }
        Ok(end)
    }

    /// Subscribe to the byte stream from `from_lp` onward. Returns the
    /// backlog (bytes already appended past `from_lp`) plus a live receiver.
    /// New appends are delivered immediately, pre-commit.
    pub fn subscribe(&self, from_lp: LogPosition) -> Result<(LogChunk, Receiver<LogChunk>)> {
        let mut inner = self.inner.lock();
        if from_lp < inner.mem_start_lp {
            return Err(Error::NotFound(format!(
                "log bytes at {from_lp} already truncated (memory starts at {})",
                inner.mem_start_lp
            )));
        }
        let start = (from_lp - inner.mem_start_lp) as usize;
        let backlog = LogChunk { start_lp: from_lp, bytes: Arc::new(inner.mem[start..].to_vec()) };
        let (tx, rx) = unbounded();
        inner.subscribers.push(tx);
        Ok((backlog, rx))
    }

    /// Read the byte range `[from_lp, to_lp)`, falling back to the log file
    /// for truncated prefixes.
    pub fn read_range(&self, from_lp: LogPosition, to_lp: LogPosition) -> Result<Vec<u8>> {
        let inner = self.inner.lock();
        if to_lp > inner.end_lp || from_lp > to_lp {
            return Err(Error::InvalidArgument(format!(
                "range [{from_lp}, {to_lp}) out of bounds (end {})",
                inner.end_lp
            )));
        }
        if from_lp >= inner.mem_start_lp {
            let s = (from_lp - inner.mem_start_lp) as usize;
            let e = (to_lp - inner.mem_start_lp) as usize;
            return Ok(inner.mem[s..e].to_vec());
        }
        match &inner.file_path {
            Some(path) => {
                let mut f = File::open(path)?;
                f.seek(SeekFrom::Start(from_lp))?;
                let mut buf = vec![0u8; (to_lp - from_lp) as usize];
                f.read_exact(&mut buf)?;
                Ok(buf)
            }
            None => Err(Error::NotFound(format!(
                "log bytes at {from_lp} truncated and no log file exists"
            ))),
        }
    }

    /// Seal the next chunk for blob upload: bytes in
    /// `[uploaded_lp, min(safe_lp, uploaded_lp + max_bytes))`.
    ///
    /// `safe_lp` must be a position known to contain only fully durable and
    /// replicated data (paper §3.1) — typically
    /// `min(durable_lp, replicated_lp)` when replicas exist. Returns `None`
    /// when there is nothing to seal. The caller marks success with
    /// [`Log::mark_uploaded`] after the blob put succeeds.
    pub fn seal_chunk(&self, safe_lp: LogPosition, max_bytes: usize) -> Option<LogChunk> {
        let inner = self.inner.lock();
        let from = inner.uploaded_lp;
        let to = safe_lp.min(inner.end_lp).min(from + max_bytes as u64);
        if to <= from {
            return None;
        }
        let s = (from - inner.mem_start_lp) as usize;
        let e = (to - inner.mem_start_lp) as usize;
        Some(LogChunk { start_lp: from, bytes: Arc::new(inner.mem[s..e].to_vec()) })
    }

    /// Record that all bytes below `lp` now live in blob storage.
    pub fn mark_uploaded(&self, lp: LogPosition) {
        let mut inner = self.inner.lock();
        inner.uploaded_lp = inner.uploaded_lp.max(lp);
    }

    /// Free in-memory bytes below `upto_lp`. Only allowed for uploaded
    /// prefixes (they remain readable from blob storage / the local file).
    pub fn truncate_prefix(&self, upto_lp: LogPosition) -> Result<()> {
        let mut inner = self.inner.lock();
        if upto_lp > inner.uploaded_lp {
            return Err(Error::InvalidArgument(format!(
                "cannot truncate to {upto_lp}: only uploaded up to {}",
                inner.uploaded_lp
            )));
        }
        if upto_lp <= inner.mem_start_lp {
            return Ok(());
        }
        let cut = (upto_lp - inner.mem_start_lp) as usize;
        inner.mem.drain(..cut);
        inner.mem_start_lp = upto_lp;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordIter;

    #[test]
    fn append_and_read_back() {
        let log = Log::in_memory();
        let (s1, e1) = log.append(1, b"one");
        let (s2, e2) = log.append(2, b"two");
        assert_eq!(s1, 0);
        assert_eq!(s2, e1);
        let bytes = log.read_range(0, e2).unwrap();
        let recs: Vec<_> = RecordIter::new(&bytes, 0).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].payload, b"one");
        assert_eq!(recs[1].kind, 2);
    }

    #[test]
    fn group_append_is_contiguous() {
        let log = Log::in_memory();
        let (s, e) = log.append_group(&[(1, b"a".as_slice()), (2, b"bb")]);
        let bytes = log.read_range(s, e).unwrap();
        let recs: Vec<_> = RecordIter::new(&bytes, s).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn subscribers_get_backlog_and_live_stream() {
        let log = Log::in_memory();
        log.append(1, b"early");
        let (backlog, rx) = log.subscribe(0).unwrap();
        assert!(!backlog.bytes.is_empty());
        log.append(2, b"late");
        let live = rx.try_recv().unwrap();
        assert_eq!(live.start_lp, backlog.end_lp());
        let recs: Vec<_> =
            RecordIter::new(&live.bytes, live.start_lp).map(|r| r.unwrap()).collect();
        assert_eq!(recs[0].payload, b"late");
    }

    #[test]
    fn file_backed_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("s2wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p0.log");
        let _ = std::fs::remove_file(&path);
        let end = {
            let log = Log::open(&path).unwrap();
            log.append(7, b"persisted");
            log.sync().unwrap()
        };
        let log2 = Log::open(&path).unwrap();
        assert_eq!(log2.end_lp(), end);
        let bytes = log2.read_range(0, end).unwrap();
        let recs: Vec<_> = RecordIter::new(&bytes, 0).map(|r| r.unwrap()).collect();
        assert_eq!(recs[0].payload, b"persisted");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_truncates_torn_final_frame() {
        let dir = std::env::temp_dir().join(format!("s2wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.log");
        let _ = std::fs::remove_file(&path);
        let good_end = {
            let log = Log::open(&path).unwrap();
            log.append(1, b"kept-record");
            let end = log.sync().unwrap();
            log.append(2, b"torn-record");
            log.sync().unwrap();
            end
        };
        // Simulate a crash that persisted only a prefix of the second frame.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..good_end as usize + 7]).unwrap();
        let log2 = Log::open(&path).unwrap();
        assert_eq!(log2.end_lp(), good_end, "torn tail truncated at last valid checksum");
        assert_eq!(log2.durable_lp(), good_end);
        let bytes = log2.read_range(0, good_end).unwrap();
        let recs: Vec<_> = RecordIter::new(&bytes, 0).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"kept-record");
        // Appends after recovery land at the truncated position on disk too.
        log2.append(3, b"after-recovery");
        let end2 = log2.sync().unwrap();
        drop(log2);
        let log3 = Log::open(&path).unwrap();
        assert_eq!(log3.end_lp(), end2);
        let bytes = log3.read_range(0, end2).unwrap();
        let recs: Vec<_> = RecordIter::new(&bytes, 0).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].payload, b"after-recovery");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seal_respects_safe_position() {
        let log = Log::in_memory();
        let (_, e1) = log.append(1, b"replicated-part");
        log.append(2, b"still-volatile");
        // Nothing replicated yet -> nothing to seal below safe position 0.
        assert!(log.seal_chunk(0, 1 << 20).is_none());
        let chunk = log.seal_chunk(e1, 1 << 20).unwrap();
        assert_eq!(chunk.start_lp, 0);
        assert_eq!(chunk.end_lp(), e1);
        log.mark_uploaded(chunk.end_lp());
        assert_eq!(log.uploaded_lp(), e1);
        // Next seal starts where the last ended.
        assert!(log.seal_chunk(e1, 1 << 20).is_none());
    }

    #[test]
    fn truncate_only_uploaded() {
        let log = Log::in_memory();
        let (_, e1) = log.append(1, b"aaa");
        let (_, e2) = log.append(1, b"bbb");
        assert!(log.truncate_prefix(e1).is_err(), "not uploaded yet");
        log.mark_uploaded(e1);
        log.truncate_prefix(e1).unwrap();
        // Truncated range unreadable in-memory, later range still fine.
        assert!(log.read_range(0, e1).is_err());
        assert!(log.read_range(e1, e2).is_ok());
        assert!(log.subscribe(0).is_err());
        assert!(log.subscribe(e1).is_ok());
    }

    #[test]
    fn replicated_watermark_monotonic() {
        let log = Log::in_memory();
        log.set_replicated_lp(100);
        log.set_replicated_lp(50);
        assert_eq!(log.replicated_lp(), 100);
    }

    #[test]
    fn wait_replicated_wakes_on_ack() {
        let log = Arc::new(Log::in_memory());
        let waiter = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_replicated(10, std::time::Duration::from_secs(30)))
        };
        log.set_replicated_lp(10);
        assert!(waiter.join().unwrap(), "ack wakes the waiter");
        // Position never reached -> bounded wait times out with false.
        assert!(!log.wait_replicated(11, std::time::Duration::from_millis(5)));
    }
}
