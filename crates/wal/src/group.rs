//! Group commit: per-partition commit batching with leader/follower handoff
//! (paper §3; ROADMAP open item 2).
//!
//! Committers `submit` their redo record under the partition commit lock and
//! then park in [`GroupCommit::wait_durable`] *outside* it. The first parked
//! waiter elects itself leader, drains the whole queue into one contiguous
//! [`Log::append_group`], releases the queue lock, performs a single
//! `Log::sync` for the batch, publishes the batch-end durable position, and
//! abdicates — waking every follower in the batch plus the next leader. One
//! fsync (and, in the cluster layer, one replication-ack wait on the batch
//! end position) amortizes over the whole batch, and because the fsync runs
//! with the queue lock released, the *next* batch accumulates — and its
//! commits resolve timestamps — while this one is being made durable.
//!
//! Ticket accounting is by monotonic record counters, not positions:
//! `submitted` (records queued), `appended` (records in the log buffer) and
//! `durable` (records covered by a completed sync). A committer's ticket is
//! its `submitted` value; once `durable >= ticket` its record — and the whole
//! batch containing it — is on disk, and `durable_lp` (the last synced batch
//! end) is the position replication must ack for it.
//!
//! Crash discipline (exercised by the `wal.group.append` / `wal.group.sync` /
//! `wal.group.handoff` crash points and the s2-sim `--scenario group` drill):
//! a crash anywhere before the sync completes leaves `durable` untouched, so
//! no committer ever observes a successful `wait_durable` for bytes that
//! could still be lost; and the leader section runs under `catch_unwind` so a
//! leader killed mid-batch always clears leadership and wakes the parked
//! followers on its way out of the world — they re-elect and finish the job.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use s2_common::sync::{rank, Condvar, Mutex};
use s2_common::{LogPosition, Result};

use crate::log::Log;

struct GroupState {
    /// Redo records waiting for a leader, in submission order.
    queue: Vec<(u8, Vec<u8>)>,
    /// Records ever submitted (a committer's ticket is its submit count).
    submitted: u64,
    /// Records moved from the queue into the log buffer.
    appended: u64,
    /// Records covered by a completed sync.
    durable: u64,
    /// End position of the last synced batch (what replication must ack).
    durable_lp: LogPosition,
    /// Whether some committer currently holds leadership.
    leader: bool,
}

/// Per-partition group-commit queue. See the module docs for the protocol.
pub struct GroupCommit {
    state: Mutex<GroupState>,
    wakeup: Condvar,
    enabled: AtomicBool,
    flush_window_us: AtomicU64,
}

impl Default for GroupCommit {
    fn default() -> GroupCommit {
        GroupCommit::new()
    }
}

impl GroupCommit {
    /// New queue. `S2_GROUP_COMMIT=0` selects the legacy per-commit append
    /// path (default on); `S2_GROUP_FLUSH_US` sets the leader flush window.
    pub fn new() -> GroupCommit {
        let enabled = std::env::var("S2_GROUP_COMMIT")
            .map(|v| !matches!(v.as_str(), "0" | "false" | "off"))
            .unwrap_or(true);
        let window =
            std::env::var("S2_GROUP_FLUSH_US").ok().and_then(|v| v.parse().ok()).unwrap_or(0u64);
        GroupCommit {
            state: Mutex::new(
                &rank::WAL_GROUP,
                GroupState {
                    queue: Vec::new(),
                    submitted: 0,
                    appended: 0,
                    durable: 0,
                    durable_lp: 0,
                    leader: false,
                },
            ),
            wakeup: Condvar::new(),
            enabled: AtomicBool::new(enabled),
            flush_window_us: AtomicU64::new(window),
        }
    }

    /// Whether the group-commit path is active.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Toggle the group-commit path at runtime (benches, tests, sim).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// How long a leader waits for its batch to grow before appending.
    /// 0 (the default) means append immediately — batching then comes only
    /// from committers that queued while the previous batch was syncing.
    pub fn set_flush_window_us(&self, us: u64) {
        self.flush_window_us.store(us, Ordering::Release);
    }

    /// Queue one redo record; returns the caller's durability ticket.
    ///
    /// Must be called with the partition commit lock held — submission order
    /// is commit-timestamp order, which keeps the redo stream replayable.
    pub fn submit(&self, kind: u8, payload: Vec<u8>) -> u64 {
        let mut g = self.state.lock();
        g.queue.push((kind, payload));
        g.submitted += 1;
        g.submitted
    }

    /// Append any queued records to the log *without* syncing.
    ///
    /// Barrier for direct appenders (flush/merge/move/create-table/snapshot
    /// records): they hold the partition commit lock, so no new submissions
    /// can race, and draining here guarantees every already-queued commit
    /// record precedes theirs in the byte stream — replay order matches
    /// commit order even when a leader hasn't drained the queue yet.
    pub fn flush_queued(&self, log: &Log) {
        let mut g = self.state.lock();
        if g.queue.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut g.queue);
        let refs: Vec<(u8, &[u8])> = batch.iter().map(|(k, p)| (*k, p.as_slice())).collect();
        log.append_group(&refs);
        g.appended += batch.len() as u64;
    }

    /// Park until the record behind `ticket` is durable; returns the batch
    /// end position (>= the record's own end, monotonic per partition) that
    /// replication must acknowledge.
    ///
    /// Must NOT be called with the partition commit lock held — the whole
    /// point is that the fsync happens outside the commit critical section.
    pub fn wait_durable(&self, log: &Log, ticket: u64) -> Result<LogPosition> {
        let wait_timer = s2_obs::histogram!("wal.group.wait_us").start_timer();
        let mut g = self.state.lock();
        loop {
            if g.durable >= ticket {
                let lp = g.durable_lp;
                drop(g);
                wait_timer.stop();
                return Ok(lp);
            }
            if g.leader {
                g = self.wakeup.wait(g);
                continue;
            }
            g.leader = true;
            drop(g);
            let led = self.lead(log);
            g = self.state.lock();
            if let Err(e) = led {
                if g.durable >= ticket {
                    // A batch led by someone else already covered us; the
                    // error belongs to a later batch's leader turn.
                    let lp = g.durable_lp;
                    drop(g);
                    wait_timer.stop();
                    return Ok(lp);
                }
                drop(g);
                wait_timer.cancel();
                return Err(e);
            }
        }
    }

    /// One leader turn, with abdication guaranteed even across a panic: the
    /// crash points inside the turn unwind through here, and a leader killed
    /// mid-handoff must never strand parked followers — clear leadership,
    /// wake everyone, then resume the unwind.
    fn lead(&self, log: &Log) -> Result<()> {
        match catch_unwind(AssertUnwindSafe(|| self.lead_inner(log))) {
            Ok(res) => res,
            Err(payload) => {
                self.abdicate();
                resume_unwind(payload);
            }
        }
    }

    fn abdicate(&self) {
        let mut g = self.state.lock();
        g.leader = false;
        drop(g);
        self.wakeup.notify_all();
    }

    fn lead_inner(&self, log: &Log) -> Result<()> {
        let flush_timer = s2_obs::histogram!("wal.group.flush_us").start_timer();
        let mut g = self.state.lock();
        let window = self.flush_window_us.load(Ordering::Acquire);
        if window > 0 {
            // Give the batch a chance to grow. One bounded wait, never
            // re-armed: worst-case added latency is exactly one window.
            let (g2, _) = self.wakeup.wait_timeout(g, Duration::from_micros(window));
            g = g2;
        }
        if !g.queue.is_empty() {
            // Crash here models a leader dying after draining responsibility
            // for the batch but before any byte reached the log buffer.
            s2_common::fault::crash_point("wal.group.append");
            let batch = std::mem::take(&mut g.queue);
            let refs: Vec<(u8, &[u8])> = batch.iter().map(|(k, p)| (*k, p.as_slice())).collect();
            // Append while holding the queue lock: the queue-drain and the
            // log append are atomic, which is what lets `flush_queued`
            // guarantee queued commits precede direct records in the stream.
            log.append_group(&refs);
            g.appended += batch.len() as u64;
            s2_obs::histogram!("wal.group.batch_size").record(batch.len() as u64);
        }
        let target = g.appended;
        drop(g);
        // Sync with the queue lock released: the next batch accumulates (and
        // its committers resolve timestamps) while this one hits disk.
        let durable_lp = loop {
            // Crash here = appended but not yet synced: `durable` has not
            // moved, so none of these records was ever acknowledged.
            s2_common::fault::crash_point("wal.group.sync");
            match log.sync() {
                Ok(lp) => break lp,
                Err(e) if e.is_retryable() => continue,
                Err(e) => {
                    // Permanent sync failure: abdicate so followers can
                    // re-elect and retry; our committer surfaces the error.
                    self.abdicate();
                    flush_timer.cancel();
                    return Err(e);
                }
            }
        };
        let mut g = self.state.lock();
        g.durable = g.durable.max(target);
        g.durable_lp = g.durable_lp.max(durable_lp);
        // Crash here = batch durable but leadership never handed off; the
        // catch_unwind in `lead` clears leadership and wakes followers, who
        // observe `durable` already advanced and return success.
        s2_common::fault::crash_point("wal.group.handoff");
        g.leader = false;
        drop(g);
        self.wakeup.notify_all();
        flush_timer.stop();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn single_committer_roundtrip() {
        let log = Log::in_memory();
        let gc = GroupCommit::new();
        let t = gc.submit(1, b"rec".to_vec());
        let lp = gc.wait_durable(&log, t).unwrap();
        assert_eq!(lp, log.end_lp());
        assert_eq!(log.durable_lp(), lp);
    }

    #[test]
    fn batch_covers_all_tickets() {
        let log = Log::in_memory();
        let gc = GroupCommit::new();
        let t1 = gc.submit(1, b"a".to_vec());
        let t2 = gc.submit(1, b"b".to_vec());
        let t3 = gc.submit(1, b"c".to_vec());
        // One leader turn drains the whole queue; later tickets are already
        // durable when their owners arrive.
        let lp1 = gc.wait_durable(&log, t1).unwrap();
        let lp2 = gc.wait_durable(&log, t2).unwrap();
        let lp3 = gc.wait_durable(&log, t3).unwrap();
        assert_eq!(lp1, lp2);
        assert_eq!(lp2, lp3);
        assert_eq!(lp3, log.durable_lp());
    }

    #[test]
    fn concurrent_committers_all_become_durable() {
        let log = Arc::new(Log::in_memory());
        let gc = Arc::new(GroupCommit::new());
        let mut handles = Vec::new();
        for i in 0..8u8 {
            let (log, gc) = (Arc::clone(&log), Arc::clone(&gc));
            handles.push(std::thread::spawn(move || {
                let mut lps = Vec::new();
                for j in 0..50u8 {
                    let t = gc.submit(1, vec![i, j]);
                    lps.push(gc.wait_durable(&log, t).unwrap());
                }
                lps
            }));
        }
        let mut max_lp = 0;
        for h in handles {
            for lp in h.join().unwrap() {
                max_lp = max_lp.max(lp);
            }
        }
        assert_eq!(log.durable_lp(), log.end_lp());
        assert_eq!(max_lp, log.durable_lp());
        // 8 threads x 50 records, all framed into the stream.
        let bytes = log.read_range(0, log.end_lp()).unwrap();
        let n = crate::record::RecordIter::new(&bytes, 0).count();
        assert_eq!(n, 400);
    }

    #[test]
    fn flush_queued_appends_without_sync() {
        let log = Log::in_memory();
        let gc = GroupCommit::new();
        gc.submit(1, b"queued".to_vec());
        assert_eq!(log.end_lp(), 0);
        gc.flush_queued(&log);
        assert!(log.end_lp() > 0, "record appended");
        assert_eq!(log.durable_lp(), 0, "but not synced");
        gc.flush_queued(&log); // idempotent on an empty queue
    }

    /// Crashes one specific site, once, on one specific thread — other
    /// threads (and other tests sharing the global registry) pass through.
    struct CrashOnce {
        site: &'static str,
        thread: std::thread::ThreadId,
        fired: std::sync::atomic::AtomicBool,
    }

    impl s2_common::fault::FaultHook for CrashOnce {
        fn evaluate(&self, site: &str) -> s2_common::fault::FaultAction {
            if site == self.site
                && std::thread::current().id() == self.thread
                && !self.fired.swap(true, Ordering::SeqCst)
            {
                s2_common::fault::FaultAction::Crash
            } else {
                s2_common::fault::FaultAction::Continue
            }
        }
    }

    #[test]
    fn leader_panic_does_not_strand_followers() {
        // Simulate a leader killed mid-handoff: the unwind path must clear
        // leadership so a follower can re-elect and finish the batch.
        let log = Arc::new(Log::in_memory());
        let gc = Arc::new(GroupCommit::new());
        let t = gc.submit(1, b"survivor".to_vec());
        {
            let (log, gc) = (Arc::clone(&log), Arc::clone(&gc));
            let crashed = std::thread::spawn(move || {
                s2_common::fault::install(Arc::new(CrashOnce {
                    site: "wal.group.handoff",
                    thread: std::thread::current().id(),
                    fired: std::sync::atomic::AtomicBool::new(false),
                }));
                let res = catch_unwind(AssertUnwindSafe(|| gc.wait_durable(&log, 1)));
                s2_common::fault::clear();
                assert!(res.is_err(), "crash point fired");
            });
            crashed.join().unwrap();
        }
        // The batch synced before the crash point; a fresh waiter sees it.
        let lp = gc.wait_durable(&log, t).unwrap();
        assert_eq!(lp, log.durable_lp());
        assert!(lp > 0);
    }
}
