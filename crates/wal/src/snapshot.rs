//! Rowstore snapshots (paper §2.1.1, §3.1).
//!
//! A snapshot captures the serialized state of a partition's in-memory
//! rowstore tables at a log position, letting recovery replay only the log
//! suffix after it. With separated storage, snapshots are taken only on
//! master partitions and written directly to blob storage (paper §3.1).
//! The payload is opaque to this crate (s2-core serializes table state).

use s2_common::crc::crc32;
use s2_common::io::{ByteReader, ByteWriter};
use s2_common::{Error, LogPosition, Result};

/// Snapshot file magic ("S2SN").
pub const SNAPSHOT_MAGIC: u32 = 0x4E53_3253;

/// A serialized snapshot: partition state at log position `lp`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Log position the snapshot covers: recovery replays records with
    /// `record.lp >= lp`.
    pub lp: LogPosition,
    /// Opaque partition state produced by the storage engine.
    pub data: Vec<u8>,
}

impl Snapshot {
    /// Serialize with magic, length framing and a CRC over the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.data.len() + 32);
        w.put_u32(SNAPSHOT_MAGIC);
        w.put_u64(self.lp);
        w.put_varint(self.data.len() as u64);
        w.put_u32(crc32(&self.data));
        w.put_raw(&self.data);
        w.into_bytes()
    }

    /// Parse and validate a serialized snapshot.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u32()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(Error::Corruption(format!("bad snapshot magic {magic:#x}")));
        }
        let lp = r.get_u64()?;
        let len = r.get_varint()? as usize;
        let crc = r.get_u32()?;
        let data = r.get_raw(len)?.to_vec();
        if crc32(&data) != crc {
            return Err(Error::Corruption("snapshot crc mismatch".into()));
        }
        Ok(Snapshot { lp, data })
    }

    /// Canonical object key for a snapshot of `partition` at `lp`. Zero-padded
    /// so lexicographic listing order equals log order.
    pub fn object_key(partition: &str, lp: LogPosition) -> String {
        format!("{partition}/snapshots/{lp:020}")
    }

    /// Parse the log position back out of an object key produced by
    /// [`Snapshot::object_key`].
    pub fn lp_from_key(key: &str) -> Option<LogPosition> {
        key.rsplit('/').next()?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = Snapshot { lp: 12345, data: vec![1, 2, 3, 4, 5] };
        let enc = s.encode();
        assert_eq!(Snapshot::decode(&enc).unwrap(), s);
    }

    #[test]
    fn corruption_detected() {
        let s = Snapshot { lp: 1, data: b"state".to_vec() };
        let mut enc = s.encode();
        let n = enc.len();
        enc[n - 1] ^= 0xFF;
        assert!(Snapshot::decode(&enc).is_err());
        assert!(Snapshot::decode(&enc[..4]).is_err());
    }

    #[test]
    fn key_ordering_matches_lp_ordering() {
        let a = Snapshot::object_key("db0_p0", 99);
        let b = Snapshot::object_key("db0_p0", 100);
        assert!(a < b);
        assert_eq!(Snapshot::lp_from_key(&b), Some(100));
    }
}
