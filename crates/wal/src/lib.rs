//! Per-partition write-ahead logging, snapshots and the replication byte
//! stream (paper §2.1.1, §3, §3.1).
//!
//! Layering: this crate owns *transport and durability* — record framing
//! with CRCs, log positions, the durable/replicated/uploaded watermarks,
//! chunk sealing for asynchronous blob upload, and snapshot framing. Record
//! *semantics* (what an upsert/flush/merge means) live in `s2-core`, which
//! serializes operations into opaque payloads.

pub mod group;
pub mod log;
pub mod record;
pub mod snapshot;

pub use group::GroupCommit;
pub use log::{Log, LogChunk};
pub use record::{
    encode_record, valid_prefix_len, DecodedRecord, RecordIter, RECORD_MAGIC, RECORD_OVERHEAD,
};
pub use snapshot::{Snapshot, SNAPSHOT_MAGIC};
