//! Parallel-scan equivalence and adaptive-decision-cache behaviour.
//!
//! The morsel executor must be invisible in results: any thread count
//! produces the identical batch (fragments reassemble in segment order) and
//! — once the decision cache is warm, so the sampled plan is shared — the
//! identical merged [`ScanStats`]. The cache itself must be observably hit
//! on a repeated scan and observably missed after a columnstore merge
//! rewrites segments under new ids, and after deletes change a segment's
//! visible row set.

use std::sync::Arc;

use proptest::prelude::*;
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_exec::expr::CmpOp;
use s2_exec::{scan, Batch, Expr, ScanOptions, ScanStats};
use s2_wal::Log;

/// Deterministic splitmix64 for seed-derived table shapes.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Build a partition with a multi-segment table derived from `seed`:
/// several flushed batches (small segments), randomized deletes, and a
/// rowstore tail that never hits the pool.
fn build_table(seed: u64) -> (Arc<Partition>, u32) {
    let mut rng = seed;
    let p = Partition::new("pp", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("grp", DataType::Str),
        ColumnDef::new("amount", DataType::Double),
    ])
    .unwrap();
    let opts = TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_index("by_grp", vec![1])
        .with_segment_rows(32 + (next(&mut rng) % 48) as usize);
    let t = p.create_table("rt", schema, opts).unwrap();
    let batches = 3 + (next(&mut rng) % 3) as i64; // 3..=5 flushed batches
    let per_batch = 40 + (next(&mut rng) % 60) as i64;
    let mut id = 0i64;
    for _ in 0..batches {
        let mut txn = p.begin();
        for _ in 0..per_batch {
            txn.insert(
                t,
                Row::new(vec![
                    Value::Int(id),
                    Value::str(["a", "b", "c", "d", "e"][(next(&mut rng) % 5) as usize]),
                    Value::Double((next(&mut rng) % 1000) as f64),
                ]),
            )
            .unwrap();
            id += 1;
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    // Randomized deletes across the flushed segments.
    let deletes = next(&mut rng) % (id as u64 / 4).max(1);
    let mut txn = p.begin();
    for _ in 0..deletes {
        let victim = (next(&mut rng) % id as u64) as i64;
        let _ = txn.delete_unique(t, &[Value::Int(victim)]).unwrap();
    }
    txn.commit().unwrap();
    // Rowstore tail (stays on the calling thread).
    let mut txn = p.begin();
    for _ in 0..(next(&mut rng) % 30) {
        txn.insert(
            t,
            Row::new(vec![
                Value::Int(id),
                Value::str("tail"),
                Value::Double((next(&mut rng) % 1000) as f64),
            ]),
        )
        .unwrap();
        id += 1;
    }
    txn.commit().unwrap();
    (p, t)
}

/// Render a batch as a sorted multiset of row strings.
fn sorted_rows(b: &Batch) -> Vec<String> {
    let mut rows: Vec<String> = (0..b.rows()).map(|i| format!("{:?}", b.row(i))).collect();
    rows.sort();
    rows
}

fn opts_with_threads(threads: usize) -> ScanOptions {
    ScanOptions { threads, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: `S2_SCAN_THREADS=1` and `=8` equivalents (explicit
    /// `threads` option) must produce identical sorted result sets and
    /// identical merged skip/filter counters on randomized multi-segment
    /// tables with deletes.
    #[test]
    fn one_and_eight_threads_agree(seed in any::<u64>()) {
        let (p, t) = build_table(seed);
        let snap = p.read_snapshot();
        let ts = snap.table(t).unwrap();
        let filters: Vec<Option<Expr>> = vec![
            None,
            Some(Expr::cmp(2, CmpOp::Lt, 500.0)),
            Some(Expr::eq(1, "b")),
            // Two non-selective clauses: exercises group-filter formation.
            Some(Expr::cmp(2, CmpOp::Ge, 1.0).and(Expr::cmp(0, CmpOp::Ge, 1i64))),
            // Index probe + residual.
            Some(Expr::eq(1, "c").and(Expr::cmp(2, CmpOp::Lt, 800.0))),
        ];
        for filter in &filters {
            // Warm the decision cache so serial and parallel runs replay the
            // same sampled plan (the sampling pass itself is timing-driven).
            scan(ts, &[0, 1, 2], filter.as_ref(), &opts_with_threads(1)).unwrap();
            let (b1, s1) = scan(ts, &[0, 1, 2], filter.as_ref(), &opts_with_threads(1)).unwrap();
            let (b8, s8) = scan(ts, &[0, 1, 2], filter.as_ref(), &opts_with_threads(8)).unwrap();
            // Parallel reassembly is in segment order: results are not just
            // set-equal but byte-identical.
            prop_assert_eq!(b1.rows(), b8.rows(), "filter {:?}", filter);
            for i in 0..b1.rows() {
                prop_assert_eq!(format!("{:?}", b1.row(i)), format!("{:?}", b8.row(i)));
            }
            prop_assert_eq!(sorted_rows(&b1), sorted_rows(&b8));
            let (mut m1, mut m8) = (ScanStats::default(), ScanStats::default());
            m1.merge(&s1);
            m8.merge(&s8);
            prop_assert_eq!(m1, m8, "filter {:?}", filter);
        }
    }
}

#[test]
fn thread_count_sweep_is_deterministic() {
    let (p, t) = build_table(0xfeed);
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    let f = Expr::cmp(2, CmpOp::Lt, 750.0);
    let baseline = scan(ts, &[0, 1, 2], Some(&f), &opts_with_threads(1)).unwrap().0;
    for threads in [2usize, 3, 4, 8, 16] {
        let (b, _) = scan(ts, &[0, 1, 2], Some(&f), &opts_with_threads(threads)).unwrap();
        assert_eq!(sorted_rows(&baseline), sorted_rows(&b), "threads={threads}");
    }
}

/// Satellite: cached clause order is used on the second scan (observable
/// via per-scan stats *and* the global obs counters) and invalidated after
/// a columnstore merge rewrites the segments.
#[test]
fn decision_cache_hits_then_merge_invalidates() {
    let p = Partition::new("pc", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("grp", DataType::Str),
        ColumnDef::new("amount", DataType::Double),
    ])
    .unwrap();
    let topts =
        TableOptions::new().with_sort_key(vec![0]).with_unique("pk", vec![0]).with_segment_rows(50);
    let t = p.create_table("ct", schema, topts).unwrap();
    // 5 flushed runs so the default merge policy (max_runs = 4) has work.
    for batch in 0..5i64 {
        let mut txn = p.begin();
        for i in 0..50i64 {
            let id = batch * 50 + i;
            txn.insert(
                t,
                Row::new(vec![
                    Value::Int(id),
                    Value::str(["x", "y"][(id % 2) as usize]),
                    Value::Double(id as f64),
                ]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    // A residual-only filter with literals unique to this test, so the cache
    // key cannot alias another test's entries.
    let f = Expr::cmp(2, CmpOp::Ge, 17.25).and(Expr::cmp(2, CmpOp::Lt, 231.75));
    let opts = opts_with_threads(1);
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();

    let obs_hits_before = s2_obs::global().snapshot().counter("exec.scan.decision_cache_hits");
    let (_, cold) = scan(ts, &[0, 2], Some(&f), &opts).unwrap();
    assert!(cold.decision_cache_misses > 0, "{cold:?}");
    assert_eq!(cold.decision_cache_hits, 0, "{cold:?}");

    let (_, warm) = scan(ts, &[0, 2], Some(&f), &opts).unwrap();
    assert_eq!(warm.decision_cache_misses, 0, "{warm:?}");
    assert_eq!(warm.decision_cache_hits, cold.decision_cache_misses, "{warm:?}");
    let obs_hits_after = s2_obs::global().snapshot().counter("exec.scan.decision_cache_hits");
    assert!(
        obs_hits_after >= obs_hits_before + warm.decision_cache_hits as u64,
        "global counter must reflect the hits: {obs_hits_before} -> {obs_hits_after}"
    );

    // Merge rewrites data into new segment ids -> the cached decisions can
    // no longer be reached.
    let mut merged = false;
    while p.merge_table(t).unwrap() {
        merged = true;
    }
    assert!(merged, "expected at least one merge with 5 runs");
    let snap2 = p.read_snapshot();
    let ts2 = snap2.table(t).unwrap();
    let (_, post) = scan(ts2, &[0, 2], Some(&f), &opts).unwrap();
    assert!(post.decision_cache_misses > 0, "merged segments must re-plan: {post:?}");
}

/// Deletes shift selectivities, so they invalidate the affected segment's
/// cached plan (delete-count mismatch) while untouched segments still hit.
#[test]
fn decision_cache_invalidated_by_deletes() {
    let (p, t) = build_table(0xdead_0001);
    let f = Expr::cmp(2, CmpOp::Ge, 3.125).and(Expr::cmp(0, CmpOp::Ge, 1i64));
    let opts = opts_with_threads(1);
    {
        let snap = p.read_snapshot();
        let ts = snap.table(t).unwrap();
        scan(ts, &[0], Some(&f), &opts).unwrap();
        let (_, warm) = scan(ts, &[0], Some(&f), &opts).unwrap();
        assert_eq!(warm.decision_cache_misses, 0, "{warm:?}");
        assert!(warm.decision_cache_hits > 0, "{warm:?}");
    }
    // Delete one row from the first flushed segment (id 0 is columnstore).
    let mut txn = p.begin();
    assert!(txn.delete_unique(t, &[Value::Int(0)]).unwrap());
    txn.commit().unwrap();
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    let (_, post) = scan(ts, &[0], Some(&f), &opts).unwrap();
    assert!(post.decision_cache_misses > 0, "deleted segment must re-plan: {post:?}");
    assert!(post.decision_cache_hits > 0, "untouched segments still hit: {post:?}");
}

/// The cache can be disabled per scan; every adaptive scan then re-samples.
#[test]
fn decision_cache_opt_out() {
    let (p, t) = build_table(0xdead_0002);
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    let f = Expr::cmp(2, CmpOp::Ge, 41.5).and(Expr::cmp(0, CmpOp::Ge, 2i64));
    let opts = ScanOptions { threads: 1, decision_cache: false, ..Default::default() };
    let (_, s1) = scan(ts, &[0], Some(&f), &opts).unwrap();
    let (_, s2) = scan(ts, &[0], Some(&f), &opts).unwrap();
    assert_eq!(s1.decision_cache_hits, 0);
    assert_eq!(s2.decision_cache_hits, 0);
    assert_eq!(s1.decision_cache_misses, 0, "opted out: not even counted");
    assert_eq!(s2.decision_cache_misses, 0);
}

/// Pool metrics advance when a parallel scan over a large table runs, and
/// small scans (at or below [`s2_exec::scan::SMALL_SCAN_INLINE_ROWS`]) stay
/// inline on the calling thread even at high thread counts.
#[test]
fn pool_metrics_advance() {
    // Small table: a few hundred rows across several segments -> inline.
    let (p_small, t_small) = build_table(0xdead_0003);
    let snap = p_small.read_snapshot();
    let ts_small = snap.table(t_small).unwrap();
    let f = Expr::cmp(2, CmpOp::Ge, 0.0);
    let before_small = s2_obs::global().snapshot().counter("exec.pool.morsels");
    scan(ts_small, &[0, 1, 2], Some(&f), &opts_with_threads(4)).unwrap();
    let after_small = s2_obs::global().snapshot().counter("exec.pool.morsels");
    assert_eq!(
        after_small, before_small,
        "sub-morsel scans must run inline, not on the pool: {before_small} -> {after_small}"
    );

    // Large table: well above the inline threshold -> pool morsels.
    let p = Partition::new("pm", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("grp", DataType::Str),
        ColumnDef::new("amount", DataType::Double),
    ])
    .unwrap();
    let topts = TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_segment_rows(2000);
    let t = p.create_table("big", schema, topts).unwrap();
    for batch in 0..3i64 {
        let mut txn = p.begin();
        for i in 0..2000i64 {
            let id = batch * 2000 + i;
            txn.insert(
                t,
                Row::new(vec![
                    Value::Int(id),
                    Value::str(["x", "y"][(id % 2) as usize]),
                    Value::Double(id as f64),
                ]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    let before = s2_obs::global().snapshot().counter("exec.pool.morsels");
    scan(ts, &[0, 1, 2], Some(&f), &opts_with_threads(4)).unwrap();
    let after = s2_obs::global().snapshot().counter("exec.pool.morsels");
    assert!(after > before, "parallel scan must execute morsels on the pool: {before} -> {after}");
}
