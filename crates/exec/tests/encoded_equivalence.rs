//! Encoded-domain execution equivalence (the PR's correctness contract):
//! `S2_ENCODED_EXEC=1` (compiled code-domain predicates, vectorized
//! evaluation, fused encoded aggregation) must be *byte-identical* to the
//! decode-first scalar path — same rows, same order, same `Debug`
//! rendering of every value — over randomized multi-segment tables that
//! hit every encoding (bit-packed ints, RLE runs, int and string
//! dictionaries, plain doubles/strings, LZ strings) with NULLs, deletes
//! and a rowstore tail.

use std::sync::Arc;

use proptest::prelude::*;
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_exec::expr::CmpOp;
use s2_exec::{hash_aggregate, scan, scan_aggregate, AggFunc, Aggregate, Batch, Expr, ScanOptions};
use s2_wal::Log;

/// Deterministic splitmix64 so failures replay from the proptest seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Table whose columns are shaped to land on every encoding the analyzer
/// can pick:
///   0 id      Int     sequential            -> BitPackInt (sort key, pk)
///   1 grp     Str     5 distinct, NULLs     -> DictStr
///   2 amount  Double  random, NULLs         -> PlainDouble
///   3 runs    Int     long runs, wide range -> RleInt
///   4 tag     Str     long unique strings   -> LzStr
///   5 nint    Int     random, many NULLs    -> BitPackInt + null bitmap
///   6 sparse  Int     4 huge distinct       -> DictInt
fn build_table(seed: u64) -> (Arc<Partition>, u32) {
    let mut rng = seed;
    let p = Partition::new("pe", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::nullable("grp", DataType::Str),
        ColumnDef::nullable("amount", DataType::Double),
        ColumnDef::new("runs", DataType::Int64),
        ColumnDef::new("tag", DataType::Str),
        ColumnDef::nullable("nint", DataType::Int64),
        ColumnDef::new("sparse", DataType::Int64),
    ])
    .unwrap();
    let opts = TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_index("by_grp", vec![1])
        .with_segment_rows(48 + (next(&mut rng) % 48) as usize);
    let t = p.create_table("enc", schema, opts).unwrap();
    let batches = 3 + (next(&mut rng) % 3) as i64;
    let per_batch = 60 + (next(&mut rng) % 80) as i64;
    let mut id = 0i64;
    let sparse_vals = [10_000_019i64, 77_000_003, 123_456_789, 500_000_029];
    for _ in 0..batches {
        let mut txn = p.begin();
        for _ in 0..per_batch {
            let grp = if next(&mut rng).is_multiple_of(7) {
                Value::Null
            } else {
                Value::str(["a", "b", "c", "d", "e"][(next(&mut rng) % 5) as usize])
            };
            let amount = if next(&mut rng).is_multiple_of(11) {
                Value::Null
            } else {
                Value::Double((next(&mut rng) % 1000) as f64 / 4.0)
            };
            let nint = if next(&mut rng).is_multiple_of(3) {
                Value::Null
            } else {
                Value::Int((next(&mut rng) % 100) as i64)
            };
            txn.insert(
                t,
                Row::new(vec![
                    Value::Int(id),
                    grp,
                    amount,
                    Value::Int((id / 17) * 1_000_003),
                    Value::str(format!("tag-padding-padding-{id}")),
                    nint,
                    Value::Int(sparse_vals[(next(&mut rng) % 4) as usize]),
                ]),
            )
            .unwrap();
            id += 1;
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    // Deletes scattered over the flushed segments.
    let mut txn = p.begin();
    for _ in 0..(next(&mut rng) % (id as u64 / 5).max(1)) {
        let victim = (next(&mut rng) % id as u64) as i64;
        let _ = txn.delete_unique(t, &[Value::Int(victim)]).unwrap();
    }
    txn.commit().unwrap();
    // Rowstore tail: unflushed rows take the legacy row loop in both modes.
    let mut txn = p.begin();
    for _ in 0..(next(&mut rng) % 40) {
        txn.insert(
            t,
            Row::new(vec![
                Value::Int(id),
                Value::str("tail"),
                Value::Double(id as f64),
                Value::Int(-1),
                Value::str("tag-tail"),
                Value::Null,
                Value::Int(sparse_vals[0]),
            ]),
        )
        .unwrap();
        id += 1;
    }
    txn.commit().unwrap();
    (p, t)
}

fn opts(encoded_exec: bool) -> ScanOptions {
    ScanOptions { threads: 1, encoded_exec, ..Default::default() }
}

/// Exact per-row `Debug` rendering — the byte-identity witness.
fn rows_dbg(b: &Batch) -> Vec<String> {
    (0..b.rows()).map(|i| format!("{:?}", b.row(i))).collect()
}

/// Filters spanning every clause strategy: compiled dict/RLE bitmaps,
/// vectorized regular clauses, group filters, per-row fallbacks (LIKE,
/// IN), null semantics, and index-probe interactions.
fn filter_suite() -> Vec<Option<Expr>> {
    vec![
        None,
        Some(Expr::eq(1, "b")),                        // DictStr bitmap
        Some(Expr::cmp(3, CmpOp::Lt, 3_000_009i64)),   // RLE bitmap
        Some(Expr::eq(6, 77_000_003i64)),              // DictInt bitmap
        Some(Expr::cmp(2, CmpOp::Lt, 125.0)),          // double, vectorized regular
        Some(Expr::cmp(0, CmpOp::Ge, 40i64)),          // bit-packed range
        Some(Expr::IsNull(Box::new(Expr::Column(5)))), // null bitmap
        Some(Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::Column(2)))))),
        Some(Expr::eq(1, "c").and(Expr::cmp(2, CmpOp::Lt, 200.0)).and(Expr::cmp(
            0,
            CmpOp::Ge,
            5i64,
        ))),
        Some(Expr::cmp(2, CmpOp::Ge, 1.0).and(Expr::cmp(0, CmpOp::Ge, 1i64))), // group filter
        Some(Expr::InList(
            Box::new(Expr::Column(1)),
            vec![Value::str("a"), Value::str("d"), Value::Null],
        )),
        Some(Expr::Like(Box::new(Expr::Column(4)), "%padding-1%".into())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Scans: encoded-domain filtering returns byte-identical batches to
    /// the decode-first path for every clause strategy.
    #[test]
    fn scan_encoded_matches_decoded(seed in any::<u64>()) {
        let (p, t) = build_table(seed);
        let snap = p.read_snapshot();
        let ts = snap.table(t).unwrap();
        let proj: Vec<usize> = (0..7).collect();
        for filter in &filter_suite() {
            let (off, _) = scan(ts, &proj, filter.as_ref(), &opts(false)).unwrap();
            let (on, _) = scan(ts, &proj, filter.as_ref(), &opts(true)).unwrap();
            prop_assert_eq!(rows_dbg(&off), rows_dbg(&on), "filter {:?}", filter);
        }
    }

    /// Aggregates: the fused encoded aggregation (dict-code groups, RLE
    /// run arithmetic, typed lanes, rowstore tail) is byte-identical to
    /// scan + hash_aggregate in both modes.
    #[test]
    fn aggregate_fused_matches_hash(seed in any::<u64>()) {
        let (p, t) = build_table(seed);
        let snap = p.read_snapshot();
        let ts = snap.table(t).unwrap();
        let proj: Vec<usize> = (0..7).collect();
        let revenue = Expr::Arith(
            s2_exec::ArithOp::Mul,
            Box::new(Expr::Column(2)),
            Box::new(Expr::Arith(
                s2_exec::ArithOp::Sub,
                Box::new(Expr::Literal(Value::Double(1.0))),
                Box::new(Expr::Column(2)),
            )),
        );
        let agg = |f: AggFunc, input: Expr| Aggregate { func: f, input };
        // (group_by over projection positions, aggregates, filter)
        let cases: Vec<(Vec<Expr>, Vec<Aggregate>, Option<Expr>)> = vec![
            // Global aggregates, every function, including RLE sums.
            (vec![], vec![
                agg(AggFunc::Count, Expr::Literal(Value::Int(1))),
                agg(AggFunc::Sum, Expr::Column(3)),
                agg(AggFunc::Sum, Expr::Column(2)),
                agg(AggFunc::Avg, Expr::Column(5)),
                agg(AggFunc::Min, Expr::Column(0)),
                agg(AggFunc::Max, Expr::Column(2)),
            ], None),
            // Dict-coded single group key (with NULL groups).
            (vec![Expr::Column(1)], vec![
                agg(AggFunc::Count, Expr::Literal(Value::Int(1))),
                agg(AggFunc::Sum, Expr::Column(2)),
                agg(AggFunc::Avg, revenue.clone()),
            ], None),
            // Code-tuple group: DictStr x DictInt.
            (vec![Expr::Column(1), Expr::Column(6)], vec![
                agg(AggFunc::Sum, Expr::Column(0)),
                agg(AggFunc::Count, Expr::Column(5)),
            ], None),
            // Non-dict group expression falls to the general path.
            (vec![Expr::Column(3)], vec![
                agg(AggFunc::Sum, Expr::Column(2)),
                agg(AggFunc::Min, Expr::Column(0)),
            ], Some(Expr::cmp(0, CmpOp::Ge, 10i64))),
            // Filtered + grouped, mixed clause strategies upstream.
            (vec![Expr::Column(1)], vec![
                agg(AggFunc::Sum, revenue),
                agg(AggFunc::Count, Expr::Literal(Value::Int(1))),
            ], Some(Expr::eq(6, 10_000_019i64).and(Expr::cmp(2, CmpOp::Ge, 50.0)))),
        ];
        for (group_by, aggregates, filter) in &cases {
            let (base, _) = scan(ts, &proj, filter.as_ref(), &opts(false)).unwrap();
            let legacy = hash_aggregate(&base, group_by, aggregates);
            let fused = scan_aggregate(
                std::slice::from_ref(ts),
                &proj,
                filter.as_ref(),
                group_by,
                aggregates,
                &opts(true),
            );
            match (&legacy, &fused) {
                (Ok(l), Ok((f, _))) => prop_assert_eq!(
                    rows_dbg(l),
                    rows_dbg(f),
                    "group {:?} filter {:?}",
                    group_by,
                    filter
                ),
                // Errors (e.g. a NULL first group key over a string column)
                // must match message-for-message.
                (Err(le), Err(fe)) => prop_assert_eq!(le.to_string(), fe.to_string()),
                _ => prop_assert!(
                    false,
                    "one path failed: legacy {:?} fused ok={:?} (group {:?} filter {:?})",
                    legacy.as_ref().err(),
                    fused.is_ok(),
                    group_by,
                    filter
                ),
            }
        }
    }
}

/// RLE sums whose exact-integer guard must reject (partials past 2^52):
/// the fused path falls back to per-row adds and stays identical.
#[test]
fn rle_sum_overflow_guard_falls_back() {
    let p = Partition::new("po", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("big", DataType::Int64),
    ])
    .unwrap();
    let topts =
        TableOptions::new().with_sort_key(vec![0]).with_unique("pk", vec![0]).with_segment_rows(64);
    let t = p.create_table("ov", schema, topts).unwrap();
    let mut txn = p.begin();
    for id in 0..128i64 {
        // Runs of 16 identical huge values: 3e15 * 16 rows blows through
        // the 2^52 (~4.5e15) exact-integer window mid-segment.
        txn.insert(
            t,
            Row::new(vec![Value::Int(id), Value::Int((id / 16) * 3_000_000_000_000_000)]),
        )
        .unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    let aggs = vec![Aggregate { func: AggFunc::Sum, input: Expr::Column(1) }];
    let (base, _) = scan(ts, &[0, 1], None, &opts(false)).unwrap();
    let legacy = hash_aggregate(&base, &[], &aggs).unwrap();
    let (fused, _) =
        scan_aggregate(std::slice::from_ref(ts), &[0, 1], None, &[], &aggs, &opts(true)).unwrap();
    assert_eq!(rows_dbg(&legacy), rows_dbg(&fused));
}

/// The new obs counters actually advance: compiled clause bitmaps, fused
/// aggregation rows, and decode skipping are all observable.
#[test]
fn encoded_stats_advance() {
    let (p, t) = build_table(0xec0ded);
    let snap = p.read_snapshot();
    let ts = snap.table(t).unwrap();
    let aggs = vec![Aggregate { func: AggFunc::Count, input: Expr::Literal(Value::Int(1)) }];
    // Filter the DictInt column: unlike `grp` it has no secondary index, so
    // the clause must reach the compiled-bitmap path instead of an index
    // probe.
    let filter = Expr::eq(6, 77_000_003i64);
    let (_, stats) = scan_aggregate(
        std::slice::from_ref(ts),
        &[0, 1, 2],
        Some(&filter),
        &[],
        &aggs,
        &opts(true),
    )
    .unwrap();
    assert!(stats.encoded_clause_total > 0, "dict filter must compile: {stats:?}");
    assert!(stats.encoded_agg_rows > 0, "fused aggregation must run: {stats:?}");
    assert!(stats.decode_skipped_rows > 0, "COUNT(1) needs no decode: {stats:?}");
}
