//! Encoded-domain fused scan+aggregate (paper §5.2's "operating directly
//! on encoded data", taken through the aggregation operator).
//!
//! [`scan_aggregate`] evaluates `GROUP BY` + aggregates directly over the
//! scan, without materializing the intermediate projection batch:
//!
//! - **Group keys on dictionary codes.** When every group key is a plain
//!   projected column stored dictionary-encoded, the per-row group id is
//!   computed from the columns' *codes* — the key columns are never
//!   decoded and no per-row `Value` key is built. A flat
//!   `code-space -> slot` table memoizes the (tiny) set of distinct code
//!   tuples; only a first-seen tuple pays the dictionary lookup that
//!   builds the output key.
//! - **RLE run arithmetic.** A global `SUM`/`AVG`/`COUNT` over a plain
//!   run-length-encoded integer column multiplies each run's value by its
//!   length instead of iterating rows — guarded by an exact-integer
//!   shadow computation so the result is bit-identical to sequential f64
//!   accumulation (any run that could round falls back to per-row adds).
//! - **Typed lanes.** Aggregate inputs are evaluated through the
//!   vectorized evaluator ([`crate::veval`]) and accumulated with
//!   per-function loops that touch only the fields the function's
//!   `finish` reads.
//! - **Late materialization to nothing.** Projected columns that no group
//!   key or aggregate references are never decoded
//!   ([`ScanStats::decode_skipped_rows`]).
//!
//! Byte-identity with the decode-first pipeline (`scan` +
//! [`crate::kernels::hash_aggregate`]) is load-bearing and test-enforced:
//! accumulators are *global* (never per-segment partials merged after the
//! fact, which would reorder non-associative f64 additions) and are
//! updated in exactly the legacy row order — snapshots in order, segments
//! in order, then rowstore rows. Reordering the per-row/per-aggregate
//! loop nest is safe because each (group, aggregate) accumulator still
//! sees its rows in the same ascending order either way.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use s2_common::{DataType, Result, Row, Schema, Value};
use s2_core::{SegmentSnap, TableSnapshot};
use s2_encoding::ColumnVector;

use crate::batch::Batch;
use crate::expr::Expr;
use crate::kernels::{assemble_aggregate_output, AggFunc, AggState, Aggregate};
use crate::scan::{self, ScanOptions, ScanStats};
use crate::veval::{self, EvalVec};

/// Largest flat code-space (product of per-column `dict_len + 1`) the
/// dictionary group path will allocate a slot table for; larger spaces fall
/// back to hash-keyed grouping.
const MAX_GID_SPACE: usize = 1 << 16;

/// Largest magnitude for which every integer partial sum is exactly
/// representable in f64 (with margin): run-multiplied sums must stay inside
/// this bound to be bit-identical to sequential accumulation.
const MAX_EXACT_SUM: i128 = 1 << 52;

/// Global grouping state shared across segments, partitions and the
/// rowstore: one accumulator row per distinct key, in first-seen order
/// (matching `hash_aggregate`'s insertion order).
struct GroupTable {
    groups: HashMap<Vec<Value>, u32>,
    order: Vec<Vec<Value>>,
    states: Vec<Vec<AggState>>,
    n_aggs: usize,
}

impl GroupTable {
    fn new(n_aggs: usize) -> GroupTable {
        GroupTable { groups: HashMap::new(), order: Vec::new(), states: Vec::new(), n_aggs }
    }

    fn slot_of(&mut self, key: Vec<Value>) -> u32 {
        match self.groups.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let slot = self.order.len() as u32;
                self.order.push(e.key().clone());
                self.states.push(vec![AggState::new(); self.n_aggs]);
                e.insert(slot);
                slot
            }
        }
    }
}

/// Per-row slot lookup: a global aggregate has one slot for every row, a
/// grouped one a per-row vector.
enum SlotMap {
    Uniform(u32),
    PerRow(Vec<u32>),
}

impl SlotMap {
    #[inline]
    fn get(&self, i: usize) -> usize {
        match self {
            SlotMap::Uniform(s) => *s as usize,
            SlotMap::PerRow(v) => v[i] as usize,
        }
    }
}

/// How one aggregate consumes one segment.
enum AggPlan {
    /// `COUNT(col)` over a no-null column with every row selected: just add
    /// the row count, decode nothing.
    AddCount(u64),
    /// Run-multiplied `SUM`/`AVG` over a no-null RLE integer column: the
    /// final sum was precomputed exactly (see [`MAX_EXACT_SUM`]).
    RunExact { sum: f64, count: u64 },
    /// Evaluate the input per row (vectorized) and accumulate with a typed
    /// lane.
    PerRow,
}

/// Fused scan+aggregate over `snapshots` (one per partition, processed in
/// order). Semantically identical — bit-for-bit, including group output
/// order and f64 rounding — to scanning each snapshot, concatenating, and
/// running [`crate::kernels::hash_aggregate`]; `group_by` and the aggregate
/// inputs are expressions over *projection positions*, `filter` over table
/// ordinals, exactly as in that pipeline.
pub fn scan_aggregate(
    snapshots: &[Arc<TableSnapshot>],
    projection: &[usize],
    filter: Option<&Expr>,
    group_by: &[Expr],
    aggregates: &[Aggregate],
    opts: &ScanOptions,
) -> Result<(Batch, ScanStats)> {
    let mut stats = ScanStats::default();
    let mut gt = GroupTable::new(aggregates.len());
    for snapshot in snapshots {
        stats.segments_total += snapshot.segments.len();
        let schema = snapshot.schema().clone();
        let proj_types: Vec<DataType> =
            projection.iter().map(|&c| schema.column(c).data_type).collect();
        let prep = scan::prepare_scan(snapshot, filter, opts, &mut stats)?;
        let table_key = Arc::as_ptr(&snapshot.table) as usize;
        for m in prep.morsels {
            let sel =
                scan::apply_clauses(&m.seg, &prep.residual, m.sel, opts, &mut stats, table_key)?;
            if sel.as_ref().is_some_and(Vec::is_empty) {
                continue;
            }
            aggregate_segment(
                &m.seg,
                sel,
                projection,
                &proj_types,
                group_by,
                aggregates,
                &mut gt,
                &mut stats,
            )?;
        }
        if !prep.rowstore_rows.is_empty() {
            aggregate_rowstore(
                &schema,
                &prep.rowstore_rows,
                &prep.residual,
                projection,
                group_by,
                aggregates,
                &mut gt,
                &mut stats,
            )?;
        }
    }
    let batch = assemble_aggregate_output(group_by.len(), gt.order, gt.states, aggregates)?;
    scan::record_scan_stats(&stats);
    Ok((batch, stats))
}

/// Accumulate one filtered segment into the global group table.
#[allow(clippy::too_many_arguments)]
fn aggregate_segment(
    seg: &SegmentSnap,
    sel: Option<Vec<u32>>,
    projection: &[usize],
    proj_types: &[DataType],
    group_by: &[Expr],
    aggregates: &[Aggregate],
    gt: &mut GroupTable,
    stats: &mut ScanStats,
) -> Result<()> {
    let seg_rows = seg.core.meta.row_count;
    let n = sel.as_ref().map_or(seg_rows, Vec::len);
    if n == 0 {
        return Ok(());
    }
    stats.rows_output += n;
    stats.encoded_agg_rows += n;
    let sel_ref = sel.as_deref();

    // A global aggregate's single group exists as soon as any row does
    // (matching hash_aggregate, which inserts the empty key at row one).
    let uniform_slot: Option<u32> =
        if group_by.is_empty() { Some(gt.slot_of(Vec::new())) } else { None };

    // Plan each aggregate's fast path before deciding what to decode.
    let plans: Vec<AggPlan> = aggregates
        .iter()
        .enumerate()
        .map(|(ai, a)| plan_fast_agg(seg, sel_ref, n, projection, a, uniform_slot, gt, ai))
        .collect::<Result<_>>()?;

    // Dictionary-code grouping (no decode of the key columns).
    let dict_slots: Option<Vec<u32>> = if uniform_slot.is_some() {
        None
    } else {
        dict_group_slots(seg, sel_ref, n, projection, group_by, gt)?
    };
    let general_group = uniform_slot.is_none() && dict_slots.is_none();

    // Decode only what the per-row work references.
    let mut need = vec![false; projection.len()];
    for (a, p) in aggregates.iter().zip(&plans) {
        if matches!(p, AggPlan::PerRow) {
            for c in a.input.referenced_columns() {
                need[c] = true;
            }
        }
    }
    if general_group {
        for g in group_by {
            for c in g.referenced_columns() {
                need[c] = true;
            }
        }
    }
    let cols: Vec<ColumnVector> = (0..projection.len())
        .map(|pos| {
            if need[pos] {
                seg.core.reader.column(projection[pos])?.decode_vector(sel_ref)
            } else {
                stats.decode_skipped_rows += n;
                Ok(ColumnVector::empty(proj_types[pos]))
            }
        })
        .collect::<Result<_>>()?;

    let slots: SlotMap = if let Some(s) = uniform_slot {
        SlotMap::Uniform(s)
    } else if let Some(v) = dict_slots {
        SlotMap::PerRow(v)
    } else {
        // General grouping: vectorized key evaluation, per-row hash lookup.
        let evs: Vec<EvalVec> =
            group_by.iter().map(|g| veval::eval_vector(&cols, n, g)).collect::<Result<_>>()?;
        let mut v = Vec::with_capacity(n);
        for i in 0..n {
            let key: Vec<Value> = evs.iter().map(|e| e.value_at(i)).collect();
            v.push(gt.slot_of(key));
        }
        SlotMap::PerRow(v)
    };

    for (ai, (a, plan)) in aggregates.iter().zip(&plans).enumerate() {
        match plan {
            AggPlan::AddCount(c) => {
                gt.states[slots.get(0)][ai].count += c;
            }
            AggPlan::RunExact { sum, count } => {
                let st = &mut gt.states[slots.get(0)][ai];
                st.sum = *sum;
                st.count += count;
            }
            AggPlan::PerRow => {
                let ev = veval::eval_vector(&cols, n, &a.input)?;
                update_per_row(&mut gt.states, ai, a.func, &ev, &slots, n);
            }
        }
    }
    Ok(())
}

/// Decide whether one aggregate can consume this segment without any
/// per-row work (see [`AggPlan`]). Requires a global aggregate with every
/// row selected, a plain no-null column input, and — for the run path — an
/// RLE column whose exact run-multiplied sum provably equals sequential
/// f64 accumulation.
#[allow(clippy::too_many_arguments)]
fn plan_fast_agg(
    seg: &SegmentSnap,
    sel: Option<&[u32]>,
    n: usize,
    projection: &[usize],
    a: &Aggregate,
    uniform_slot: Option<u32>,
    gt: &GroupTable,
    ai: usize,
) -> Result<AggPlan> {
    let Some(slot) = uniform_slot else { return Ok(AggPlan::PerRow) };
    if sel.is_some() {
        return Ok(AggPlan::PerRow);
    }
    let Expr::Column(pos) = &a.input else { return Ok(AggPlan::PerRow) };
    let reader = seg.core.reader.column(projection[*pos])?;
    if reader.nulls().is_some() {
        return Ok(AggPlan::PerRow);
    }
    match a.func {
        AggFunc::Count => Ok(AggPlan::AddCount(n as u64)),
        AggFunc::Sum | AggFunc::Avg => {
            let Some(runs) = reader.runs() else { return Ok(AggPlan::PerRow) };
            let cur = gt.states[slot as usize][ai].sum;
            // Sequential accumulation equals the exact integer result iff
            // every partial sum stays exactly representable. Partials move
            // monotonically within a run, so checking the accumulator at
            // each run boundary bounds every per-row partial.
            if cur.fract() != 0.0 || cur.abs() > MAX_EXACT_SUM as f64 {
                return Ok(AggPlan::PerRow);
            }
            let mut acc = cur as i128;
            for (v, start, end) in runs {
                acc += v as i128 * (end - start) as i128;
                if acc.abs() > MAX_EXACT_SUM {
                    return Ok(AggPlan::PerRow);
                }
            }
            Ok(AggPlan::RunExact { sum: acc as f64, count: n as u64 })
        }
        _ => Ok(AggPlan::PerRow),
    }
}

/// Compute per-row group slots from dictionary codes, or `None` when any
/// key column is not dictionary-encoded (or the combined code space is too
/// large to tabulate). Null rows use the extension code `dict_len`.
fn dict_group_slots(
    seg: &SegmentSnap,
    sel: Option<&[u32]>,
    n: usize,
    projection: &[usize],
    group_by: &[Expr],
    gt: &mut GroupTable,
) -> Result<Option<Vec<u32>>> {
    let mut readers = Vec::with_capacity(group_by.len());
    for g in group_by {
        let Expr::Column(pos) = g else { return Ok(None) };
        let reader = seg.core.reader.column(projection[*pos])?;
        if reader.dict_len().is_none() {
            return Ok(None);
        }
        readers.push(reader);
    }
    let dims: Vec<usize> = readers.iter().map(|r| r.dict_len().expect("checked") + 1).collect();
    let mut space = 1usize;
    for &d in &dims {
        space = space.saturating_mul(d);
        if space > MAX_GID_SPACE {
            return Ok(None);
        }
    }
    let mut code_cols: Vec<Vec<u32>> = Vec::with_capacity(readers.len());
    for r in &readers {
        match r.codes() {
            Some(c) => code_cols.push(c),
            None => return Ok(None),
        }
    }
    // Null rows carry a placeholder dictionary code; redirect them to the
    // extension code so they key as `Value::Null`.
    for (r, codes) in readers.iter().zip(&mut code_cols) {
        if let Some(nulls) = r.nulls() {
            let ext = r.dict_len().expect("checked") as u32;
            for i in nulls.iter_ones() {
                codes[i] = ext;
            }
        }
    }

    let mut slot_of_gid: Vec<u32> = vec![u32::MAX; space];
    let mut out = Vec::with_capacity(n);
    let mut slot_for_row = |row: usize, gt: &mut GroupTable| {
        let mut gid = 0usize;
        for (codes, &dim) in code_cols.iter().zip(&dims) {
            gid = gid * dim + codes[row] as usize;
        }
        let memo = slot_of_gid[gid];
        if memo != u32::MAX {
            return memo;
        }
        let key: Vec<Value> = readers
            .iter()
            .zip(&code_cols)
            .map(|(r, codes)| {
                let code = codes[row] as usize;
                if code == r.dict_len().expect("checked") {
                    Value::Null
                } else {
                    r.dict_value(code).expect("code within dictionary")
                }
            })
            .collect();
        let slot = gt.slot_of(key);
        slot_of_gid[gid] = slot;
        slot
    };
    match sel {
        Some(sel) => {
            for &row in sel {
                out.push(slot_for_row(row as usize, gt));
            }
        }
        None => {
            for row in 0..seg.core.meta.row_count {
                out.push(slot_for_row(row, gt));
            }
        }
    }
    Ok(Some(out))
}

/// Accumulate one aggregate over `n` rows with a per-function lane that
/// maintains only the fields its `finish` reads — updates are observably
/// identical to [`AggState::update`] in legacy row order, per group.
fn update_per_row(
    states: &mut [Vec<AggState>],
    ai: usize,
    func: AggFunc,
    ev: &EvalVec,
    slots: &SlotMap,
    n: usize,
) {
    use ColumnVector as CV;
    match (func, ev) {
        (AggFunc::Count, EvalVec::Scalar(v)) => {
            if !v.is_null() {
                for i in 0..n {
                    states[slots.get(i)][ai].count += 1;
                }
            }
        }
        (AggFunc::Count, ev) => {
            for i in 0..n {
                if !null_at(ev, i) {
                    states[slots.get(i)][ai].count += 1;
                }
            }
        }
        (AggFunc::Sum | AggFunc::Avg, EvalVec::Col(CV::Int { values, nulls }))
        | (AggFunc::Sum | AggFunc::Avg, EvalVec::Int(values, nulls)) => match nulls {
            None => {
                for i in 0..n {
                    let st = &mut states[slots.get(i)][ai];
                    st.count += 1;
                    st.sum += values[i] as f64;
                }
            }
            Some(b) => {
                for i in 0..n {
                    if !b.get(i) {
                        let st = &mut states[slots.get(i)][ai];
                        st.count += 1;
                        st.sum += values[i] as f64;
                    }
                }
            }
        },
        (AggFunc::Sum | AggFunc::Avg, EvalVec::Col(CV::Double { values, nulls }))
        | (AggFunc::Sum | AggFunc::Avg, EvalVec::Double(values, nulls)) => match nulls {
            None => {
                for i in 0..n {
                    let st = &mut states[slots.get(i)][ai];
                    st.count += 1;
                    st.sum += values[i];
                }
            }
            Some(b) => {
                for i in 0..n {
                    if !b.get(i) {
                        let st = &mut states[slots.get(i)][ai];
                        st.count += 1;
                        st.sum += values[i];
                    }
                }
            }
        },
        // Strings under SUM/AVG: count advances, the sum does not
        // (`Value::as_double` fails) — mirror that without building values.
        (AggFunc::Sum | AggFunc::Avg, EvalVec::Col(CV::Str { .. })) => {
            for i in 0..n {
                if !null_at(ev, i) {
                    states[slots.get(i)][ai].count += 1;
                }
            }
        }
        _ => {
            for i in 0..n {
                states[slots.get(i)][ai].update(&ev.value_at(i));
            }
        }
    }
}

/// Whether `ev`'s row `i` is NULL.
#[inline]
fn null_at(ev: &EvalVec, i: usize) -> bool {
    match ev {
        EvalVec::Scalar(v) => v.is_null(),
        EvalVec::Col(c) => c.is_null(i),
        EvalVec::Int(_, nulls) | EvalVec::Double(_, nulls) => {
            nulls.as_ref().is_some_and(|b| b.get(i))
        }
        EvalVec::Vals(v) => v[i].is_null(),
    }
}

/// Fold the rowstore (L0) rows in: replicate the scan's rowstore batch +
/// residual filtering, then run the literal `hash_aggregate` per-row update
/// over the filtered batch so OLTP rows take exactly the legacy path.
#[allow(clippy::too_many_arguments)]
fn aggregate_rowstore(
    schema: &Schema,
    rows: &[Row],
    residual: &[Expr],
    projection: &[usize],
    group_by: &[Expr],
    aggregates: &[Aggregate],
    gt: &mut GroupTable,
    stats: &mut ScanStats,
) -> Result<()> {
    let mut needed: Vec<usize> = projection.to_vec();
    for c in residual {
        needed.extend(c.referenced_columns());
    }
    needed.sort_unstable();
    needed.dedup();
    let types: Vec<DataType> = needed.iter().map(|&c| schema.column(c).data_type).collect();
    let batch = Batch::from_rows(rows, &needed, &types)?;
    let pos: HashMap<usize, usize> = needed.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut sel: Option<Vec<u32>> = None;
    for clause in residual {
        let remapped = clause.remap_columns(&|c| pos[&c]);
        sel = Some(batch.filter(&remapped, sel.as_deref())?);
        stats.regular_filters += 1;
    }
    let sel = match sel {
        Some(s) => s,
        None => (0..batch.rows() as u32).collect(),
    };
    if sel.is_empty() {
        return Ok(());
    }
    stats.rows_output += sel.len();
    let gathered = batch.gather(&sel);
    let cols: Vec<ColumnVector> =
        projection.iter().map(|c| gathered.columns[pos[c]].clone()).collect();
    let pbatch = Batch::new(cols);
    for ri in 0..pbatch.rows() {
        let get = |c: usize| pbatch.value(c, ri);
        let key: Vec<Value> = group_by.iter().map(|g| g.eval(&get)).collect::<Result<_>>()?;
        let slot = gt.slot_of(key) as usize;
        for (s, a) in gt.states[slot].iter_mut().zip(aggregates) {
            s.update(&a.input.eval(&get)?);
        }
    }
    Ok(())
}
