//! Per-segment adaptive-decision cache (paper §5.2, amortized).
//!
//! The adaptive scan prices every residual clause on a per-segment sample
//! each time it runs — the sampling pass is what buys the paper's "no query
//! optimizer statistics" claim, but for a repeated query it is pure
//! overhead: the segment is immutable, so the measured selectivities and
//! the chosen clause order cannot change. This cache remembers the outcome
//! of the §5.2 planning pass keyed by *(table instance, segment id, filter
//! fingerprint)* and replays it on the next scan of the same segment with
//! the same residual filter, skipping the sampling entirely.
//!
//! Invalidation:
//! - **Merges** rewrite data into *new* segment ids (ids are never reused),
//!   so a merged segment's entries can no longer be hit; they age out via
//!   the capacity sweep below.
//! - **Deletes** flip a segment's delete bits, which shifts selectivities.
//!   Each entry records the deleted-row count it was planned under and is
//!   treated as a miss (and replaced) when the count moved.
//! - **Capacity**: the cache holds at most [`CAPACITY`] entries; on
//!   overflow the oldest half (by insertion epoch) is evicted.
//!
//! A cached decision is a pure heuristic — replaying a stale one can only
//! cost time, never correctness, because every strategy evaluates the same
//! predicate exactly.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use s2_common::sync::{rank, Mutex};

use crate::expr::Expr;

/// Maximum cached decisions before an eviction sweep.
pub const CAPACITY: usize = 8192;

/// How one residual clause is evaluated against a segment (paper §5.2's
/// filter strategies, minus index filters which are consumed before
/// planning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseStrategy {
    /// Decode the clause's columns for the current selection, then
    /// evaluate the predicate on the decoded values.
    Regular,
    /// Evaluate on compressed data by probing each distinct domain value
    /// through the scalar predicate (legacy encoded filter).
    Encoded,
    /// Compile the predicate into a per-dictionary-entry accept bitmap
    /// once, then answer every row with a code lookup — no `Value` is
    /// ever built (encoded-domain execution, `S2_ENCODED_EXEC`).
    EncodedBitmap,
}

impl ClauseStrategy {
    /// True for both encoded variants (strategy choice, stats).
    pub fn is_encoded(self) -> bool {
        !matches!(self, ClauseStrategy::Regular)
    }
}

/// One planned residual clause: which conjunct, the chosen strategy, and
/// the sampled pass rate that drives group-filter formation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedClause {
    /// Index into the residual conjunct list.
    pub idx: usize,
    /// Chosen evaluation strategy.
    pub strategy: ClauseStrategy,
    /// Sampled fraction of rows passing this clause.
    pub selectivity: f64,
}

/// Cache key: the table's live `Arc` address disambiguates equal segment
/// ids across tables/partitions; a recycled address after a table drop can
/// at worst replay a valid-looking heuristic.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct Key {
    table: usize,
    segment: u64,
    fingerprint: u64,
}

struct Entry {
    plan: Vec<PlannedClause>,
    /// Deleted-row count the plan was sampled under.
    deleted: usize,
    /// Insertion order, for the eviction sweep.
    epoch: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    epoch: u64,
}

/// The process-wide decision cache.
pub struct DecisionCache {
    inner: Mutex<Inner>,
}

impl Default for DecisionCache {
    fn default() -> DecisionCache {
        DecisionCache { inner: Mutex::new(&rank::EXEC_DECISION_CACHE, Inner::default()) }
    }
}

/// The global cache used by [`crate::scan`].
pub fn global() -> &'static DecisionCache {
    static GLOBAL: std::sync::OnceLock<DecisionCache> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(DecisionCache::default)
}

/// Fingerprint a residual filter plus the planning-relevant options. Uses
/// the structural `Debug` form — stable within a process, which is the
/// cache's lifetime.
pub fn fingerprint(
    residual: &[Expr],
    use_encoded: bool,
    encoded_exec: bool,
    sample_rows: usize,
) -> u64 {
    let mut h = DefaultHasher::new();
    for clause in residual {
        format!("{clause:?}").hash(&mut h);
    }
    use_encoded.hash(&mut h);
    encoded_exec.hash(&mut h);
    sample_rows.hash(&mut h);
    h.finish()
}

impl DecisionCache {
    /// Look up the cached plan for `(table, segment, fingerprint)`. A hit
    /// requires the segment's deleted-row count to match what the plan was
    /// sampled under; entries that mismatch are dropped (the caller will
    /// re-plan and re-insert).
    pub fn get(
        &self,
        table: usize,
        segment: u64,
        fingerprint: u64,
        deleted: usize,
    ) -> Option<Vec<PlannedClause>> {
        let key = Key { table, segment, fingerprint };
        let mut inner = self.inner.lock();
        match inner.map.get(&key) {
            Some(e) if e.deleted == deleted => {
                s2_obs::counter!("exec.scan.decision_cache_hits").inc();
                Some(e.plan.clone())
            }
            Some(_) => {
                inner.map.remove(&key);
                s2_obs::counter!("exec.scan.decision_cache_invalidations").inc();
                s2_obs::counter!("exec.scan.decision_cache_misses").inc();
                None
            }
            None => {
                s2_obs::counter!("exec.scan.decision_cache_misses").inc();
                None
            }
        }
    }

    /// Insert a freshly sampled plan.
    pub fn put(
        &self,
        table: usize,
        segment: u64,
        fingerprint: u64,
        deleted: usize,
        plan: Vec<PlannedClause>,
    ) {
        let key = Key { table, segment, fingerprint };
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        let epoch = inner.epoch;
        inner.map.insert(key, Entry { plan, deleted, epoch });
        if inner.map.len() > CAPACITY {
            // Evict the older half so merged-away segments age out.
            let mut epochs: Vec<u64> = inner.map.values().map(|e| e.epoch).collect();
            epochs.sort_unstable();
            let cutoff = epochs[epochs.len() / 2];
            let before = inner.map.len();
            inner.map.retain(|_, e| e.epoch > cutoff);
            let evicted = (before - inner.map.len()) as u64;
            s2_obs::counter!("exec.scan.decision_cache_evictions").add(evicted);
        }
        s2_obs::gauge!("exec.scan.decision_cache_entries").set(inner.map.len() as i64);
    }

    /// Drop every entry for `table` (table drop / tests).
    pub fn invalidate_table(&self, table: usize) {
        let mut inner = self.inner.lock();
        inner.map.retain(|k, _| k.table != table);
    }

    /// Entry count (tests, metrics).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_matching_delete_count() {
        let c = DecisionCache::default();
        let plan =
            vec![PlannedClause { idx: 0, strategy: ClauseStrategy::Regular, selectivity: 0.5 }];
        c.put(1, 10, 99, 0, plan.clone());
        assert_eq!(c.get(1, 10, 99, 0), Some(plan));
        assert_eq!(c.get(1, 10, 99, 3), None, "delete-count change invalidates");
        assert_eq!(c.get(1, 10, 99, 0), None, "invalidation removed the entry");
    }

    #[test]
    fn keys_distinguish_table_segment_filter() {
        let c = DecisionCache::default();
        let plan =
            vec![PlannedClause { idx: 1, strategy: ClauseStrategy::Encoded, selectivity: 0.1 }];
        c.put(1, 10, 99, 0, plan.clone());
        assert!(c.get(2, 10, 99, 0).is_none());
        assert!(c.get(1, 11, 99, 0).is_none());
        assert!(c.get(1, 10, 98, 0).is_none());
        assert_eq!(c.get(1, 10, 99, 0), Some(plan));
    }

    #[test]
    fn capacity_sweep_evicts_oldest() {
        let c = DecisionCache::default();
        for i in 0..(CAPACITY as u64 + 1) {
            c.put(1, i, 0, 0, Vec::new());
        }
        assert!(c.len() <= CAPACITY / 2 + 1);
        // The newest entry survives the sweep.
        assert!(c.get(1, CAPACITY as u64, 0, 0).is_some());
    }

    #[test]
    fn fingerprint_distinguishes_filters() {
        let a = fingerprint(&[Expr::eq(0, 1i64)], true, true, 1024);
        let b = fingerprint(&[Expr::eq(0, 2i64)], true, true, 1024);
        let c = fingerprint(&[Expr::eq(0, 1i64)], false, true, 1024);
        let d = fingerprint(&[Expr::eq(0, 1i64)], true, false, 1024);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, fingerprint(&[Expr::eq(0, 1i64)], true, true, 1024));
    }
}
