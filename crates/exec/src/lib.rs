//! Vectorized, adaptive query execution over unified table storage
//! (paper §5): expressions, column batches, the morsel-parallel adaptive
//! table scan (segment skipping, filter-strategy selection, dynamic clause
//! reordering, cached per-segment decisions) and relational kernels
//! (hash join, aggregation, sort). Parallel work runs on the process-wide
//! work-stealing [`pool::ScanPool`].

pub mod batch;
pub mod cache;
pub mod encoded;
pub mod expr;
pub mod kernels;
pub mod scan;
pub mod veval;

pub use batch::Batch;
pub use cache::DecisionCache;
pub use encoded::scan_aggregate;
pub use expr::{like_match, ArithOp, CmpOp, Expr};
pub use kernels::{hash_aggregate, hash_join, sort_batch, AggFunc, Aggregate, JoinType, SortDir};
// The worker pool lives in the leaf crate `s2-pool` (so s2-core's parallel
// recovery can use it too); re-exported here to keep `s2_exec::pool::*`
// paths working.
pub use s2_pool as pool;
pub use s2_pool::{effective_threads, ScanPool};
pub use scan::{scan, ScanOptions, ScanStats};
pub use veval::{eval_vector, filter_mask, EvalVec};
