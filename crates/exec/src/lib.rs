//! Vectorized, adaptive query execution over unified table storage
//! (paper §5): expressions, column batches, the adaptive table scan
//! (segment skipping, filter-strategy selection, dynamic clause reordering)
//! and relational kernels (hash join, aggregation, sort).

pub mod batch;
pub mod expr;
pub mod kernels;
pub mod scan;

pub use batch::Batch;
pub use expr::{like_match, ArithOp, CmpOp, Expr};
pub use kernels::{hash_aggregate, hash_join, sort_batch, AggFunc, Aggregate, JoinType, SortDir};
pub use scan::{scan, ScanOptions, ScanStats};
