//! Column batches: the unit of data flowing between vectorized operators.

use s2_common::{DataType, Error, Result, Row, Value};
use s2_encoding::{ColumnVector, VectorBuilder};

use crate::expr::Expr;

/// A batch of rows in columnar form.
#[derive(Debug, Clone)]
pub struct Batch {
    /// One vector per output column.
    pub columns: Vec<ColumnVector>,
}

impl Batch {
    /// Build from vectors (all must have equal length).
    pub fn new(columns: Vec<ColumnVector>) -> Batch {
        debug_assert!(columns.windows(2).all(|w| w[0].len() == w[1].len()));
        Batch { columns }
    }

    /// Empty batch with the given column types.
    pub fn empty(types: &[DataType]) -> Batch {
        Batch { columns: types.iter().map(|&t| ColumnVector::empty(t)).collect() }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, ColumnVector::len)
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Build a batch from rows, projecting the given columns.
    pub fn from_rows(rows: &[Row], cols: &[usize], types: &[DataType]) -> Result<Batch> {
        let mut builders: Vec<VectorBuilder> =
            cols.iter().zip(types).map(|(_, &t)| VectorBuilder::new(t, rows.len())).collect();
        for row in rows {
            for (b, &c) in builders.iter_mut().zip(cols) {
                b.push(row.get(c))?;
            }
        }
        Ok(Batch { columns: builders.into_iter().map(VectorBuilder::finish).collect() })
    }

    /// Value at (column, row).
    pub fn value(&self, col: usize, row: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `i` as a [`Row`].
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Gather selected rows into a new batch.
    pub fn gather(&self, sel: &[u32]) -> Batch {
        Batch { columns: self.columns.iter().map(|c| c.gather(sel)).collect() }
    }

    /// Concatenate batches with identical schemas (bulk column appends —
    /// this sits on the scatter/gather hot path).
    pub fn concat(batches: &[Batch]) -> Result<Batch> {
        let Some(first) = batches.first() else {
            return Err(Error::InvalidArgument("concat of zero batches".into()));
        };
        if batches.len() == 1 {
            return Ok(first.clone());
        }
        if batches.iter().any(|b| b.width() != first.width()) {
            return Err(Error::InvalidArgument("concat width mismatch".into()));
        }
        let mut columns = Vec::with_capacity(first.width());
        for ci in 0..first.width() {
            columns.push(concat_column(batches, ci)?);
        }
        Ok(Batch { columns })
    }

    /// Evaluate `expr` (column refs = batch positions) for every row,
    /// producing a new vector of the given type.
    pub fn eval_expr(&self, expr: &Expr, out_type: DataType) -> Result<ColumnVector> {
        let mut b = VectorBuilder::new(out_type, self.rows());
        for ri in 0..self.rows() {
            let get = |c: usize| self.value(c, ri);
            let v = expr.eval(&get)?;
            b.push(&v)?;
        }
        Ok(b.finish())
    }

    /// Filter rows by `expr`, returning passing row indexes.
    pub fn filter(&self, expr: &Expr, sel: Option<&[u32]>) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        let mut consider = |ri: u32| -> Result<()> {
            let get = |c: usize| self.value(c, ri as usize);
            if expr.eval_bool(&get)? {
                out.push(ri);
            }
            Ok(())
        };
        match sel {
            None => {
                for ri in 0..self.rows() as u32 {
                    consider(ri)?;
                }
            }
            Some(sel) => {
                for &ri in sel {
                    consider(ri)?;
                }
            }
        }
        Ok(out)
    }
}

/// Bulk-append one column across batches.
fn concat_column(batches: &[Batch], ci: usize) -> Result<ColumnVector> {
    use s2_common::BitVec;
    let total: usize = batches.iter().map(Batch::rows).sum();
    let any_nulls = batches.iter().any(|b| match &b.columns[ci] {
        ColumnVector::Int { nulls, .. }
        | ColumnVector::Double { nulls, .. }
        | ColumnVector::Str { nulls, .. } => nulls.is_some(),
    });
    let mut nulls = if any_nulls { Some(BitVec::zeros(total)) } else { None };
    let mut base = 0usize;
    let fill_nulls = |col: &ColumnVector, rows: usize, nulls: &mut Option<BitVec>, base: usize| {
        if let Some(n) = nulls {
            for ri in 0..rows {
                if col.is_null(ri) {
                    n.set(base + ri);
                }
            }
        }
    };
    match &batches[0].columns[ci] {
        ColumnVector::Int { .. } => {
            let mut values = Vec::with_capacity(total);
            for b in batches {
                let col = &b.columns[ci];
                let ColumnVector::Int { values: v, .. } = col else {
                    return Err(Error::InvalidArgument("concat type mismatch".into()));
                };
                values.extend_from_slice(v);
                fill_nulls(col, v.len(), &mut nulls, base);
                base += v.len();
            }
            Ok(ColumnVector::Int { values, nulls })
        }
        ColumnVector::Double { .. } => {
            let mut values = Vec::with_capacity(total);
            for b in batches {
                let col = &b.columns[ci];
                let ColumnVector::Double { values: v, .. } = col else {
                    return Err(Error::InvalidArgument("concat type mismatch".into()));
                };
                values.extend_from_slice(v);
                fill_nulls(col, v.len(), &mut nulls, base);
                base += v.len();
            }
            Ok(ColumnVector::Double { values, nulls })
        }
        ColumnVector::Str { .. } => {
            let total_bytes: usize = batches
                .iter()
                .map(|b| match &b.columns[ci] {
                    ColumnVector::Str { bytes, .. } => bytes.len(),
                    _ => 0,
                })
                .sum();
            let mut offsets = Vec::with_capacity(total + 1);
            offsets.push(0u32);
            let mut bytes = Vec::with_capacity(total_bytes);
            for b in batches {
                let col = &b.columns[ci];
                let ColumnVector::Str { offsets: o, bytes: bs, .. } = col else {
                    return Err(Error::InvalidArgument("concat type mismatch".into()));
                };
                let shift = bytes.len() as u32;
                bytes.extend_from_slice(bs);
                offsets.extend(o.iter().skip(1).map(|&x| x + shift));
                fill_nulls(col, o.len() - 1, &mut nulls, base);
                base += o.len() - 1;
            }
            Ok(ColumnVector::Str { offsets, bytes, nulls })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn batch() -> Batch {
        let rows: Vec<Row> = (0..10)
            .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("s{}", i % 3))]))
            .collect();
        Batch::from_rows(&rows, &[0, 1], &[DataType::Int64, DataType::Str]).unwrap()
    }

    #[test]
    fn from_rows_and_access() {
        let b = batch();
        assert_eq!(b.rows(), 10);
        assert_eq!(b.value(0, 4), Value::Int(4));
        assert_eq!(b.value(1, 4), Value::str("s1"));
        assert_eq!(b.row(2).values().len(), 2);
    }

    #[test]
    fn filter_and_gather() {
        let b = batch();
        let sel = b.filter(&Expr::cmp(0, CmpOp::Ge, 7i64), None).unwrap();
        assert_eq!(sel, vec![7, 8, 9]);
        let g = b.gather(&sel);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.value(0, 0), Value::Int(7));
    }

    #[test]
    fn filter_with_input_selection() {
        let b = batch();
        let sel = b.filter(&Expr::eq(1, "s0"), Some(&[0, 1, 2])).unwrap();
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn concat() {
        let a = batch();
        let c = Batch::concat(&[a.clone(), a]).unwrap();
        assert_eq!(c.rows(), 20);
        assert_eq!(c.value(0, 15), Value::Int(5));
    }

    #[test]
    fn eval_expr_projection() {
        let b = batch();
        let doubled = b
            .eval_expr(
                &Expr::Arith(
                    crate::expr::ArithOp::Mul,
                    Box::new(Expr::Column(0)),
                    Box::new(Expr::Literal(Value::Int(2))),
                ),
                DataType::Int64,
            )
            .unwrap();
        assert_eq!(doubled.int_at(4), 8);
    }
}
