//! Vectorized expression evaluation over decoded column vectors.
//!
//! Mirrors [`Expr::eval`]'s scalar semantics exactly — same three-valued
//! logic, same Int→Double widening and `total_cmp` ordering, same error
//! values — but runs column-at-a-time: comparisons and arithmetic over
//! numeric lanes are tight loops over `&[i64]`/`&[f64]`, and boolean
//! combinators fold tri-state byte vectors instead of building a `Value`
//! per row. Nodes whose scalar semantics depend on per-row short-circuit
//! (CASE) or per-row conversions (LIKE, IN, YEAR, SUBSTR) fall back to the
//! scalar evaluator row-by-row, so results stay identical by construction.
//!
//! One deliberate divergence: `AND`/`OR` evaluate every operand over every
//! row (no per-row short-circuit), so an expression whose scalar evaluation
//! only avoids an error via short-circuit (e.g. a division by zero guarded
//! by an earlier conjunct) can error here. Successful evaluations are
//! byte-identical.

use s2_common::{BitVec, Error, Result, Value};
use s2_encoding::ColumnVector;

use crate::expr::{truthy, ArithOp, CmpOp, Expr};

const T_FALSE: u8 = 0;
const T_TRUE: u8 = 1;
const T_NULL: u8 = 2;

/// Result of a vectorized evaluation: a constant, a borrowed decoded
/// column, a typed lane, or per-row values.
#[derive(Debug)]
pub enum EvalVec<'a> {
    /// Every row evaluates to this value.
    Scalar(Value),
    /// The expression is a bare column reference.
    Col(&'a ColumnVector),
    /// Int lane (null rows hold 0, mirroring [`ColumnVector`]).
    Int(Vec<i64>, Option<BitVec>),
    /// Double lane (null rows hold 0.0).
    Double(Vec<f64>, Option<BitVec>),
    /// Generic per-row values (string producers, CASE results).
    Vals(Vec<Value>),
}

impl EvalVec<'_> {
    /// The value at `row`, as the scalar evaluator would produce it.
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            EvalVec::Scalar(v) => v.clone(),
            EvalVec::Col(c) => c.value(row),
            EvalVec::Int(v, nulls) => {
                if nulls.as_ref().is_some_and(|n| n.get(row)) {
                    Value::Null
                } else {
                    Value::Int(v[row])
                }
            }
            EvalVec::Double(v, nulls) => {
                if nulls.as_ref().is_some_and(|n| n.get(row)) {
                    Value::Null
                } else {
                    Value::Double(v[row])
                }
            }
            EvalVec::Vals(v) => v[row].clone(),
        }
    }
}

/// Internal evaluation result; `Bool` keeps predicates in tri-state form
/// (0 = false, 1 = true, 2 = null) until a consumer needs values.
enum EV<'a> {
    Scalar(Value),
    Col(&'a ColumnVector),
    Int(Vec<i64>, Option<BitVec>),
    Double(Vec<f64>, Option<BitVec>),
    Bool(Vec<u8>),
    Vals(Vec<Value>),
}

/// Evaluate `expr` over `rows` rows of `cols` (column ordinals index
/// `cols` directly — remap table ordinals before calling).
pub fn eval_vector<'a>(cols: &'a [ColumnVector], rows: usize, expr: &Expr) -> Result<EvalVec<'a>> {
    Ok(match eval(cols, rows, expr)? {
        EV::Scalar(v) => EvalVec::Scalar(v),
        EV::Col(c) => EvalVec::Col(c),
        EV::Int(v, n) => EvalVec::Int(v, n),
        EV::Double(v, n) => EvalVec::Double(v, n),
        EV::Vals(v) => EvalVec::Vals(v),
        EV::Bool(b) => {
            // Predicates surface as Int(0/1) with nulls, matching the
            // scalar evaluator's Value::Int / Value::Null outputs.
            let mut nulls = BitVec::zeros(rows);
            let mut any = false;
            let vals = b
                .iter()
                .enumerate()
                .map(|(r, &t)| {
                    if t == T_NULL {
                        nulls.set(r);
                        any = true;
                        0
                    } else {
                        t as i64
                    }
                })
                .collect();
            EvalVec::Int(vals, any.then_some(nulls))
        }
    })
}

/// Evaluate `expr` as a filter over `rows` rows: bit set where the
/// predicate is true (NULL rows drop, like [`Expr::eval_bool`]).
pub fn filter_mask(cols: &[ColumnVector], rows: usize, expr: &Expr) -> Result<BitVec> {
    let b = to_bool(eval(cols, rows, expr)?, rows);
    let mut mask = BitVec::zeros(rows);
    for (r, &t) in b.iter().enumerate() {
        if t == T_TRUE {
            mask.set(r);
        }
    }
    Ok(mask)
}

fn eval<'a>(cols: &'a [ColumnVector], n: usize, expr: &Expr) -> Result<EV<'a>> {
    Ok(match expr {
        Expr::Column(c) => EV::Col(&cols[*c]),
        Expr::Literal(v) => EV::Scalar(v.clone()),
        Expr::Cmp(op, a, b) => {
            let va = eval(cols, n, a)?;
            let vb = eval(cols, n, b)?;
            cmp_ev(*op, va, vb, n)
        }
        Expr::And(parts) | Expr::Or(parts) => {
            let is_and = matches!(expr, Expr::And(_));
            let mut out = vec![if is_and { T_TRUE } else { T_FALSE }; n];
            for p in parts {
                let b = to_bool(eval(cols, n, p)?, n);
                for r in 0..n {
                    match (is_and, b[r]) {
                        (true, T_FALSE) => out[r] = T_FALSE,
                        (true, T_NULL) if out[r] == T_TRUE => out[r] = T_NULL,
                        (false, T_TRUE) => out[r] = T_TRUE,
                        (false, T_NULL) if out[r] == T_FALSE => out[r] = T_NULL,
                        _ => {}
                    }
                }
            }
            EV::Bool(out)
        }
        Expr::Not(x) => {
            let mut b = to_bool(eval(cols, n, x)?, n);
            for t in &mut b {
                *t = match *t {
                    T_FALSE => T_TRUE,
                    T_TRUE => T_FALSE,
                    other => other,
                };
            }
            EV::Bool(b)
        }
        Expr::IsNull(x) => match eval(cols, n, x)? {
            EV::Scalar(v) => EV::Scalar(Value::Int(v.is_null() as i64)),
            EV::Col(c) => EV::Bool((0..n).map(|r| c.is_null(r) as u8).collect()),
            EV::Int(_, nulls) | EV::Double(_, nulls) => match nulls {
                Some(nu) => EV::Bool((0..n).map(|r| nu.get(r) as u8).collect()),
                None => EV::Bool(vec![T_FALSE; n]),
            },
            EV::Bool(b) => EV::Bool(b.iter().map(|&t| (t == T_NULL) as u8).collect()),
            EV::Vals(v) => EV::Bool(v.iter().map(|v| v.is_null() as u8).collect()),
        },
        Expr::Arith(op, a, b) => {
            let va = eval(cols, n, a)?;
            let vb = eval(cols, n, b)?;
            arith_ev(*op, va, vb, n)?
        }
        // Per-row fallbacks: these nodes' scalar semantics hinge on
        // per-row short-circuit (CASE) or conversions whose error
        // behavior must track row order exactly — delegate to the
        // scalar evaluator so results match by construction.
        Expr::InList(..) | Expr::Like(..) => {
            let mut out = vec![0u8; n];
            for (r, slot) in out.iter_mut().enumerate() {
                *slot = tri_of(&expr.eval(&|c| cols[c].value(r))?);
            }
            EV::Bool(out)
        }
        Expr::Case { .. } | Expr::Year(_) | Expr::Substr(..) => {
            let mut out = Vec::with_capacity(n);
            for r in 0..n {
                out.push(expr.eval(&|c| cols[c].value(r))?);
            }
            EV::Vals(out)
        }
    })
}

fn tri_of(v: &Value) -> u8 {
    match v {
        Value::Null => T_NULL,
        v if truthy(v) => T_TRUE,
        _ => T_FALSE,
    }
}

/// Collapse any representation to tri-state booleans.
fn to_bool(ev: EV<'_>, n: usize) -> Vec<u8> {
    match ev {
        EV::Bool(b) => b,
        EV::Scalar(v) => vec![tri_of(&v); n],
        EV::Int(v, nulls) => lane_bool(n, nulls.as_ref(), |r| v[r] != 0),
        EV::Double(v, nulls) => lane_bool(n, nulls.as_ref(), |r| v[r] != 0.0),
        EV::Col(c) => match c {
            ColumnVector::Int { values, nulls } => lane_bool(n, nulls.as_ref(), |r| values[r] != 0),
            ColumnVector::Double { values, nulls } => {
                lane_bool(n, nulls.as_ref(), |r| values[r] != 0.0)
            }
            ColumnVector::Str { nulls, .. } => {
                lane_bool(n, nulls.as_ref(), |r| !c.str_at(r).is_empty())
            }
        },
        EV::Vals(v) => v.iter().map(tri_of).collect(),
    }
}

fn lane_bool(n: usize, nulls: Option<&BitVec>, f: impl Fn(usize) -> bool) -> Vec<u8> {
    (0..n).map(|r| if nulls.is_some_and(|nu| nu.get(r)) { T_NULL } else { f(r) as u8 }).collect()
}

/// One side of a numeric comparison/arithmetic: a lane or a constant.
enum Num<'a> {
    I(&'a [i64], Option<&'a BitVec>),
    D(&'a [f64], Option<&'a BitVec>),
    CI(i64),
    CD(f64),
}

impl Num<'_> {
    fn is_int(&self) -> bool {
        matches!(self, Num::I(..) | Num::CI(_))
    }

    #[inline]
    fn null(&self, r: usize) -> bool {
        match self {
            Num::I(_, Some(nu)) | Num::D(_, Some(nu)) => nu.get(r),
            _ => false,
        }
    }

    #[inline]
    fn i(&self, r: usize) -> i64 {
        match self {
            Num::I(v, _) => v[r],
            Num::CI(c) => *c,
            _ => unreachable!("i() on a double lane"),
        }
    }

    /// Widens Int lanes with `as f64`, matching [`Value::total_cmp`] and
    /// `Value::as_double`.
    #[inline]
    fn d(&self, r: usize) -> f64 {
        match self {
            Num::I(v, _) => v[r] as f64,
            Num::D(v, _) => v[r],
            Num::CI(c) => *c as f64,
            Num::CD(c) => *c,
        }
    }
}

fn num_side<'a>(ev: &'a EV<'_>) -> Option<Num<'a>> {
    match ev {
        EV::Scalar(Value::Int(i)) => Some(Num::CI(*i)),
        EV::Scalar(Value::Double(d)) => Some(Num::CD(*d)),
        EV::Int(v, nulls) => Some(Num::I(v, nulls.as_ref())),
        EV::Double(v, nulls) => Some(Num::D(v, nulls.as_ref())),
        EV::Col(ColumnVector::Int { values, nulls }) => Some(Num::I(values, nulls.as_ref())),
        EV::Col(ColumnVector::Double { values, nulls }) => Some(Num::D(values, nulls.as_ref())),
        _ => None,
    }
}

enum StrSide<'a> {
    C(&'a str),
    V(&'a ColumnVector),
}

impl StrSide<'_> {
    #[inline]
    fn null(&self, r: usize) -> bool {
        match self {
            StrSide::C(_) => false,
            StrSide::V(c) => c.is_null(r),
        }
    }

    #[inline]
    fn s(&self, r: usize) -> &str {
        match self {
            StrSide::C(s) => s,
            StrSide::V(c) => c.str_at(r),
        }
    }
}

fn str_side<'a>(ev: &'a EV<'_>) -> Option<StrSide<'a>> {
    match ev {
        EV::Scalar(Value::Str(s)) => Some(StrSide::C(s.as_ref())),
        EV::Col(c @ ColumnVector::Str { .. }) => Some(StrSide::V(c)),
        _ => None,
    }
}

/// Rewrite tri-state booleans as an Int lane so comparison/arith sides
/// only deal with typed lanes.
fn normalize(ev: EV<'_>) -> EV<'_> {
    match ev {
        EV::Bool(b) => {
            let mut nulls = BitVec::zeros(b.len());
            let mut any = false;
            let vals = b
                .iter()
                .enumerate()
                .map(|(r, &t)| {
                    if t == T_NULL {
                        nulls.set(r);
                        any = true;
                        0
                    } else {
                        t as i64
                    }
                })
                .collect();
            EV::Int(vals, any.then_some(nulls))
        }
        other => other,
    }
}

fn cmp_res(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

fn value_of(ev: &EV<'_>, r: usize) -> Value {
    match ev {
        EV::Scalar(v) => v.clone(),
        EV::Col(c) => c.value(r),
        EV::Int(v, nulls) => {
            if nulls.as_ref().is_some_and(|nu| nu.get(r)) {
                Value::Null
            } else {
                Value::Int(v[r])
            }
        }
        EV::Double(v, nulls) => {
            if nulls.as_ref().is_some_and(|nu| nu.get(r)) {
                Value::Null
            } else {
                Value::Double(v[r])
            }
        }
        EV::Bool(b) => match b[r] {
            T_NULL => Value::Null,
            t => Value::Int(t as i64),
        },
        EV::Vals(v) => v[r].clone(),
    }
}

fn cmp_ev<'a>(op: CmpOp, a: EV<'a>, b: EV<'a>, n: usize) -> EV<'a> {
    // A null constant operand nulls every row before any comparison.
    if matches!(a, EV::Scalar(Value::Null)) || matches!(b, EV::Scalar(Value::Null)) {
        return EV::Bool(vec![T_NULL; n]);
    }
    if let (EV::Scalar(x), EV::Scalar(y)) = (&a, &b) {
        return EV::Scalar(Value::Int(cmp_res(op, x.total_cmp(y)) as i64));
    }
    let a = normalize(a);
    let b = normalize(b);
    let mut out = vec![0u8; n];
    if let (Some(x), Some(y)) = (num_side(&a), num_side(&b)) {
        let both_int = x.is_int() && y.is_int();
        for (r, slot) in out.iter_mut().enumerate() {
            if x.null(r) || y.null(r) {
                *slot = T_NULL;
            } else {
                let ord = if both_int { x.i(r).cmp(&y.i(r)) } else { x.d(r).total_cmp(&y.d(r)) };
                *slot = cmp_res(op, ord) as u8;
            }
        }
    } else if let (Some(x), Some(y)) = (str_side(&a), str_side(&b)) {
        for (r, slot) in out.iter_mut().enumerate() {
            *slot =
                if x.null(r) || y.null(r) { T_NULL } else { cmp_res(op, x.s(r).cmp(y.s(r))) as u8 };
        }
    } else {
        // Mixed-rank operands: fall back to Value::total_cmp per row.
        for (r, slot) in out.iter_mut().enumerate() {
            let (va, vb) = (value_of(&a, r), value_of(&b, r));
            *slot = if va.is_null() || vb.is_null() {
                T_NULL
            } else {
                cmp_res(op, va.total_cmp(&vb)) as u8
            };
        }
    }
    EV::Bool(out)
}

/// Scalar arithmetic core — the exact body of [`Expr::eval`]'s Arith arm.
fn scalar_arith(op: ArithOp, va: &Value, vb: &Value) -> Result<Value> {
    if va.is_null() || vb.is_null() {
        return Ok(Value::Null);
    }
    Ok(match (va, vb) {
        (Value::Int(x), Value::Int(y)) => match op {
            ArithOp::Add => Value::Int(x.wrapping_add(*y)),
            ArithOp::Sub => Value::Int(x.wrapping_sub(*y)),
            ArithOp::Mul => Value::Int(x.wrapping_mul(*y)),
            ArithOp::Div => {
                if *y == 0 {
                    return Err(Error::InvalidArgument("division by zero".into()));
                }
                Value::Int(x / y)
            }
        },
        _ => {
            let x = va.as_double()?;
            let y = vb.as_double()?;
            Value::Double(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
            })
        }
    })
}

fn arith_ev<'a>(op: ArithOp, a: EV<'a>, b: EV<'a>, n: usize) -> Result<EV<'a>> {
    // A null constant operand short-circuits every row to NULL (the
    // scalar evaluator null-checks before any conversion can error).
    if matches!(a, EV::Scalar(Value::Null)) || matches!(b, EV::Scalar(Value::Null)) {
        return Ok(EV::Scalar(Value::Null));
    }
    if let (EV::Scalar(x), EV::Scalar(y)) = (&a, &b) {
        return Ok(EV::Scalar(scalar_arith(op, x, y)?));
    }
    let a = normalize(a);
    let b = normalize(b);
    if let (Some(x), Some(y)) = (num_side(&a), num_side(&b)) {
        let mut nulls = BitVec::zeros(n);
        let mut any = false;
        if x.is_int() && y.is_int() {
            let mut out = vec![0i64; n];
            for (r, slot) in out.iter_mut().enumerate() {
                if x.null(r) || y.null(r) {
                    nulls.set(r);
                    any = true;
                    continue;
                }
                let (xi, yi) = (x.i(r), y.i(r));
                *slot = match op {
                    ArithOp::Add => xi.wrapping_add(yi),
                    ArithOp::Sub => xi.wrapping_sub(yi),
                    ArithOp::Mul => xi.wrapping_mul(yi),
                    ArithOp::Div => {
                        if yi == 0 {
                            return Err(Error::InvalidArgument("division by zero".into()));
                        }
                        xi / yi
                    }
                };
            }
            return Ok(EV::Int(out, any.then_some(nulls)));
        }
        let mut out = vec![0f64; n];
        for (r, slot) in out.iter_mut().enumerate() {
            if x.null(r) || y.null(r) {
                nulls.set(r);
                any = true;
                continue;
            }
            let (xd, yd) = (x.d(r), y.d(r));
            *slot = match op {
                ArithOp::Add => xd + yd,
                ArithOp::Sub => xd - yd,
                ArithOp::Mul => xd * yd,
                ArithOp::Div => xd / yd,
            };
        }
        return Ok(EV::Double(out, any.then_some(nulls)));
    }
    // A string operand (or mixed Vals): replicate scalar conversion errors
    // row by row.
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        out.push(scalar_arith(op, &value_of(&a, r), &value_of(&b, r))?);
    }
    Ok(EV::Vals(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::DataType;
    use s2_encoding::VectorBuilder;

    fn col(vals: &[Value], dt: DataType) -> ColumnVector {
        let mut b = VectorBuilder::new(dt, vals.len());
        for v in vals {
            if v.is_null() {
                b.push_null();
            } else {
                b.push(v).unwrap();
            }
        }
        b.finish()
    }

    /// Assert the vectorized result equals the scalar evaluator's, row by
    /// row, on both values and filter verdicts.
    fn check(cols: &[ColumnVector], rows: usize, e: &Expr) {
        let get_row = |r: usize| move |c: usize| cols[c].value(r);
        let vec_res = eval_vector(cols, rows, e);
        match vec_res {
            Ok(ev) => {
                for r in 0..rows {
                    let scalar = e.eval(&get_row(r)).unwrap();
                    assert_eq!(ev.value_at(r), scalar, "row {r} of {e:?}");
                }
                let mask = filter_mask(cols, rows, e).unwrap();
                for r in 0..rows {
                    assert_eq!(mask.get(r), e.eval_bool(&get_row(r)).unwrap(), "mask row {r}");
                }
            }
            Err(err) => {
                // The scalar path must also fail on some row with the
                // same message (order may differ under short-circuit).
                let scalar_errs: Vec<String> = (0..rows)
                    .filter_map(|r| e.eval(&get_row(r)).err().map(|e| e.to_string()))
                    .collect();
                assert!(
                    scalar_errs.contains(&err.to_string()),
                    "vector error {err} not produced by scalar path"
                );
            }
        }
    }

    fn test_cols() -> Vec<ColumnVector> {
        let n = 37;
        let ints: Vec<Value> = (0..n)
            .map(|i| if i % 7 == 0 { Value::Null } else { Value::Int(i as i64 % 9 - 4) })
            .collect();
        let doubles: Vec<Value> = (0..n)
            .map(|i| if i % 5 == 0 { Value::Null } else { Value::Double(i as f64 / 3.0 - 4.0) })
            .collect();
        let strs: Vec<Value> = (0..n)
            .map(|i| {
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::str(["", "air", "mail", "ship"][i % 4])
                }
            })
            .collect();
        vec![
            col(&ints, DataType::Int64),
            col(&doubles, DataType::Double),
            col(&strs, DataType::Str),
        ]
    }

    #[test]
    fn cmp_lanes_match_scalar() {
        let cols = test_cols();
        let n = cols[0].len();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            check(&cols, n, &Expr::cmp(0, op, 1i64)); // int vs int const
            check(&cols, n, &Expr::cmp(0, op, 0.5)); // int vs double const
            check(&cols, n, &Expr::cmp(1, op, -1.0)); // double vs double
            check(&cols, n, &Expr::cmp(2, op, "air")); // str vs str
                                                       // column vs column, including mixed ranks
            for (a, b) in [(0, 0), (0, 1), (1, 1), (2, 2), (0, 2)] {
                check(
                    &cols,
                    n,
                    &Expr::Cmp(op, Box::new(Expr::Column(a)), Box::new(Expr::Column(b))),
                );
            }
            check(
                &cols,
                n,
                &Expr::Cmp(op, Box::new(Expr::Column(0)), Box::new(Expr::Literal(Value::Null))),
            );
        }
    }

    #[test]
    fn bool_combinators_match_scalar() {
        let cols = test_cols();
        let n = cols[0].len();
        let c1 = Expr::cmp(0, CmpOp::Gt, 0i64);
        let c2 = Expr::cmp(1, CmpOp::Lt, 2.0);
        let c3 = Expr::eq(2, "mail");
        check(&cols, n, &Expr::And(vec![c1.clone(), c2.clone(), c3.clone()]));
        check(&cols, n, &Expr::Or(vec![c1.clone(), c2.clone(), c3.clone()]));
        check(&cols, n, &Expr::Not(Box::new(c1.clone())));
        check(&cols, n, &Expr::IsNull(Box::new(Expr::Column(0))));
        check(&cols, n, &Expr::IsNull(Box::new(c2.clone())));
        check(&cols, n, &Expr::And(vec![]));
        check(&cols, n, &Expr::Or(vec![]));
        check(&cols, n, &Expr::Or(vec![Expr::And(vec![c1, c3]), c2]));
    }

    #[test]
    fn arith_match_scalar() {
        let cols = test_cols();
        let n = cols[0].len();
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul] {
            check(&cols, n, &Expr::Arith(op, Box::new(Expr::Column(0)), Box::new(Expr::Column(0))));
            check(&cols, n, &Expr::Arith(op, Box::new(Expr::Column(0)), Box::new(Expr::Column(1))));
            check(
                &cols,
                n,
                &Expr::Arith(
                    op,
                    Box::new(Expr::Column(1)),
                    Box::new(Expr::Literal(Value::Double(2.5))),
                ),
            );
            check(
                &cols,
                n,
                &Expr::Arith(op, Box::new(Expr::Column(0)), Box::new(Expr::Literal(Value::Int(3)))),
            );
        }
        // Division by a nonzero constant, double division, null constant.
        check(
            &cols,
            n,
            &Expr::Arith(
                ArithOp::Div,
                Box::new(Expr::Column(0)),
                Box::new(Expr::Literal(Value::Int(2))),
            ),
        );
        check(
            &cols,
            n,
            &Expr::Arith(
                ArithOp::Div,
                Box::new(Expr::Column(1)),
                Box::new(Expr::Literal(Value::Double(0.0))),
            ),
        );
        check(
            &cols,
            n,
            &Expr::Arith(
                ArithOp::Mul,
                Box::new(Expr::Column(0)),
                Box::new(Expr::Literal(Value::Null)),
            ),
        );
        // Int division by zero errors identically.
        check(
            &cols,
            n,
            &Expr::Arith(
                ArithOp::Div,
                Box::new(Expr::Column(0)),
                Box::new(Expr::Literal(Value::Int(0))),
            ),
        );
        // String operand errors identically.
        check(
            &cols,
            n,
            &Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::Column(2)),
                Box::new(Expr::Literal(Value::Int(1))),
            ),
        );
    }

    #[test]
    fn rowwise_fallback_nodes_match_scalar() {
        let cols = test_cols();
        let n = cols[0].len();
        check(
            &cols,
            n,
            &Expr::InList(
                Box::new(Expr::Column(0)),
                vec![Value::Int(1), Value::Int(-2), Value::Double(0.0)],
            ),
        );
        check(
            &cols,
            n,
            &Expr::InList(Box::new(Expr::Column(2)), vec![Value::str("air"), Value::str("ship")]),
        );
        check(&cols, n, &Expr::Like(Box::new(Expr::Column(2)), "%ai%".into()));
        check(&cols, n, &Expr::Substr(Box::new(Expr::Column(2)), 2, 2));
        check(
            &cols,
            n,
            &Expr::Case {
                when: vec![
                    (Expr::eq(2, "air"), Expr::Literal(Value::Int(10))),
                    (Expr::cmp(0, CmpOp::Gt, 0i64), Expr::Column(1)),
                ],
                else_: Box::new(Expr::Literal(Value::Null)),
            },
        );
        check(&cols, n, &Expr::Year(Box::new(Expr::Column(0))));
    }

    #[test]
    fn randomized_trees_match_scalar() {
        // Small deterministic LCG so failures replay.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let cols = test_cols();
        let n = cols[0].len();
        for _ in 0..300 {
            let e = random_expr(&mut next, 3);
            check(&cols, n, &e);
        }
    }

    /// Random type-correct expression over the three test columns.
    /// Division and string-typed arith operands are excluded so scalar
    /// short-circuit cannot dodge errors the vectorized path hits.
    fn random_expr(next: &mut dyn FnMut() -> usize, depth: usize) -> Expr {
        let numeric = |next: &mut dyn FnMut() -> usize| match next() % 4 {
            0 => Expr::Column(0),
            1 => Expr::Column(1),
            2 => Expr::Literal(Value::Int(next() as i64 % 7 - 3)),
            _ => Expr::Literal(Value::Double(next() as f64 % 5.0 - 2.0)),
        };
        if depth == 0 {
            return Expr::cmp(next() % 2, CmpOp::Gt, next() as i64 % 5 - 2);
        }
        match next() % 8 {
            0 => Expr::Cmp(
                [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][next() % 6],
                Box::new(numeric(next)),
                Box::new(numeric(next)),
            ),
            1 => Expr::And((0..(next() % 3 + 1)).map(|_| random_expr(next, depth - 1)).collect()),
            2 => Expr::Or((0..(next() % 3 + 1)).map(|_| random_expr(next, depth - 1)).collect()),
            3 => Expr::Not(Box::new(random_expr(next, depth - 1))),
            4 => Expr::IsNull(Box::new(numeric(next))),
            5 => Expr::Cmp(
                [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge][next() % 3],
                Box::new(Expr::Column(2)),
                Box::new(Expr::Literal(Value::str(["", "air", "mail", "zzz"][next() % 4]))),
            ),
            6 => Expr::Cmp(
                CmpOp::Gt,
                Box::new(Expr::Arith(
                    [ArithOp::Add, ArithOp::Sub, ArithOp::Mul][next() % 3],
                    Box::new(numeric(next)),
                    Box::new(numeric(next)),
                )),
                Box::new(numeric(next)),
            ),
            _ => Expr::InList(
                Box::new(numeric(next)),
                vec![Value::Int(0), Value::Int(1), Value::Null, Value::Double(1.5)],
            ),
        }
    }
}
