//! The adaptive table scan (paper §5), morsel-parallel, encoded-domain
//! aware.
//!
//! Data access has three steps: (1) find the segments to read — global
//! secondary-index probes first, then min/max metadata elimination (§5.1);
//! (2) run filters to find the rows in each segment — choosing per segment
//! between index postings, encoded filters, regular filters and group
//! filters, and dynamically reordering clauses by `(1 - P) / cost` measured
//! on a sample (§5.2); (3) selectively decode only the projected columns for
//! the rows that survived (late materialization).
//!
//! Step (2) has two execution modes. With `S2_ENCODED_EXEC` on (the
//! default, [`ScanOptions::encoded_exec`]), clauses over dictionary/RLE
//! columns compile into the code domain once per segment — one accept bit
//! per dictionary entry or run ([`s2_encoding::CodePredicate`]) — and every
//! row is answered by a code lookup into that bitmap; remaining clauses run
//! through the vectorized evaluator ([`crate::veval`]) over typed column
//! lanes. With it off, the legacy paths run: per-distinct-value predicate
//! probes on encoded data and row-at-a-time `Expr::eval` on decoded data.
//! Both modes produce byte-identical selections. Aggregations directly over
//! a scan can additionally bypass materialization entirely via the fused
//! encoded-domain path in [`crate::encoded`].
//!
//! Parallelism: step (1) and the per-segment *skip* checks run on the
//! calling thread (they are cheap and their order defines the stats), then
//! each surviving segment becomes one morsel on the shared [`crate::pool`]
//! — filtered, decoded and materialized independently — and the fragments
//! are reassembled **in segment order**, so results are byte-identical at
//! every thread count. Scans whose candidate rows fit in a single morsel
//! ([`SMALL_SCAN_INLINE_ROWS`]) skip the pool and run inline: pool handoff
//! costs more than it saves on sub-morsel work. Rowstore (L0) rows are
//! always handled on the calling thread: OLTP point reads never touch the
//! pool. The §5.2 sampling pass is amortized by the per-segment
//! [`crate::cache`] of planning decisions.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use s2_common::{DataType, Result, Row, Value};
use s2_core::{SegmentSnap, TableSnapshot};
use s2_encoding::ColumnVector;

use crate::batch::Batch;
use crate::cache::{self, ClauseStrategy, PlannedClause};
use crate::expr::Expr;
use crate::pool::{self, ScanPool};

/// Scans whose total candidate rows are at or below this run inline on the
/// calling thread even when a pool is available: the handoff + wakeup cost
/// of a sub-morsel scan exceeds the scan itself (the `live_revenue` bench
/// point regressed 2.4× at threads≥2 before this gate).
pub const SMALL_SCAN_INLINE_ROWS: usize = 4096;

/// Knobs controlling the adaptive machinery — each maps to an ablation bench.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Use secondary indexes for equality/IN clauses.
    pub use_index: bool,
    /// Allow encoded execution (filters on compressed data).
    pub use_encoded: bool,
    /// Dynamically reorder filter clauses by `(1-P)/cost`.
    pub adaptive_reorder: bool,
    /// Rows sampled per segment for costing.
    pub sample_rows: usize,
    /// Index disabled when probe keys exceed `rows / index_key_divisor`
    /// (paper §5.1: "dynamically disables the use of a secondary index if
    /// the number of keys to look up is too high relative to the table size").
    pub index_key_divisor: usize,
    /// Executing threads for segment morsels and partition fan-out
    /// (0 = `S2_SCAN_THREADS` env, falling back to available parallelism;
    /// 1 = strictly serial on the calling thread).
    pub threads: usize,
    /// Reuse cached per-segment planning decisions (clause order + filter
    /// strategy) instead of re-sampling on every scan.
    pub decision_cache: bool,
    /// Encoded-domain execution: compile predicates into per-segment code
    /// bitmaps, evaluate remaining clauses through the vectorized
    /// evaluator, and let aggregates run fused over codes/lanes
    /// (`crate::encoded`). Defaults from `S2_ENCODED_EXEC` (unset/`1` =
    /// on, `0` = legacy decode-first evaluation). Results are
    /// byte-identical either way.
    pub encoded_exec: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            use_index: true,
            use_encoded: true,
            adaptive_reorder: true,
            sample_rows: 1024,
            index_key_divisor: 64,
            threads: 0,
            decision_cache: true,
            encoded_exec: encoded_exec_default(),
        }
    }
}

/// Read the `S2_ENCODED_EXEC` runtime switch (default on).
fn encoded_exec_default() -> bool {
    std::env::var("S2_ENCODED_EXEC").map_or(true, |v| v != "0")
}

/// Counters describing what a scan actually did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScanStats {
    /// Segments in the snapshot.
    pub segments_total: usize,
    /// Segments skipped by the secondary index.
    pub segments_skipped_index: usize,
    /// Segments skipped by min/max metadata.
    pub segments_skipped_minmax: usize,
    /// Clauses answered from index postings.
    pub index_filters: usize,
    /// Clause evaluations done on compressed data.
    pub encoded_filters: usize,
    /// Clause evaluations done on decoded data.
    pub regular_filters: usize,
    /// Clause *groups* evaluated together on decoded data (paper §5.2's
    /// group filter, chosen when every clause in the run is non-selective).
    pub group_filters: usize,
    /// Rows emitted.
    pub rows_output: usize,
    /// Segments whose §5.2 planning pass was answered from the decision
    /// cache (no sampling).
    pub decision_cache_hits: usize,
    /// Segments that had to run the sampling pass.
    pub decision_cache_misses: usize,
    /// Clauses answered from a compiled code-domain bitmap
    /// (`ClauseStrategy::EncodedBitmap`), a subset of `encoded_filters`.
    pub encoded_clause_total: usize,
    /// Rows aggregated by the fused encoded-domain path without building
    /// an intermediate batch (`crate::encoded`).
    pub encoded_agg_rows: usize,
    /// Row-decodes skipped by the fused path: projected columns that no
    /// group key or aggregate references are never decoded.
    pub decode_skipped_rows: usize,
}

impl ScanStats {
    /// Fold another stats block into this one (per-worker fragments, and
    /// per-scan aggregation in the query executor).
    pub fn merge(&mut self, other: &ScanStats) {
        self.segments_total += other.segments_total;
        self.segments_skipped_index += other.segments_skipped_index;
        self.segments_skipped_minmax += other.segments_skipped_minmax;
        self.index_filters += other.index_filters;
        self.encoded_filters += other.encoded_filters;
        self.regular_filters += other.regular_filters;
        self.group_filters += other.group_filters;
        self.rows_output += other.rows_output;
        self.decision_cache_hits += other.decision_cache_hits;
        self.decision_cache_misses += other.decision_cache_misses;
        self.encoded_clause_total += other.encoded_clause_total;
        self.encoded_agg_rows += other.encoded_agg_rows;
        self.decode_skipped_rows += other.decode_skipped_rows;
    }
}

/// One queued segment morsel: the segment (cheap `Arc` clones) plus the
/// initial selection the caller-side skip checks produced.
pub(crate) struct SegMorsel {
    pub(crate) seg: SegmentSnap,
    pub(crate) sel: Option<Vec<u32>>,
}

impl SegMorsel {
    /// Rows still under consideration.
    pub(crate) fn candidate_rows(&self) -> usize {
        self.sel.as_ref().map_or(self.seg.core.meta.row_count, Vec::len)
    }
}

/// The caller-thread front half of a scan: index probes, residual-clause
/// extraction, per-segment skip checks and rowstore row collection.
/// Shared by [`scan`] and the fused aggregation path (`crate::encoded`).
pub(crate) struct ScanPrep {
    /// Conjuncts not answered by the index probe.
    pub(crate) residual: Vec<Expr>,
    /// Surviving segments with their initial selections, in segment order.
    pub(crate) morsels: Vec<SegMorsel>,
    /// Live rowstore (L0) rows — probe-matched when a probe ran.
    pub(crate) rowstore_rows: Vec<Row>,
}

/// Conservative candidate-row estimate for a scan, from metadata only
/// (min/max range elimination plus deleted counts — no index probe, no
/// filter evaluation). The query layer uses this to keep small scans off
/// the partition fan-out path.
pub fn estimate_scan_rows(snapshot: &TableSnapshot, filter: Option<&Expr>) -> usize {
    let ranges: Vec<(usize, Option<Value>, Option<Value>)> = match filter {
        None => Vec::new(),
        Some(f) => f.clone().split_conjuncts().iter().filter_map(Expr::as_column_range).collect(),
    };
    let seg_rows: usize = snapshot
        .segments
        .iter()
        .filter(|seg| {
            let meta = &seg.core.meta;
            ranges.iter().all(|(c, lo, hi)| meta.may_overlap_range(*c, lo.as_ref(), hi.as_ref()))
        })
        .map(|seg| seg.core.meta.row_count - seg.deleted.count_ones())
        .sum();
    seg_rows + snapshot.rowstore_rows().len()
}

/// Scan `snapshot`, returning the projected columns of rows passing `filter`.
pub fn scan(
    snapshot: &TableSnapshot,
    projection: &[usize],
    filter: Option<&Expr>,
    opts: &ScanOptions,
) -> Result<(Batch, ScanStats)> {
    let mut stats = ScanStats { segments_total: snapshot.segments.len(), ..Default::default() };
    let schema = snapshot.schema().clone();
    let proj_types: Vec<DataType> =
        projection.iter().map(|&c| schema.column(c).data_type).collect();

    let ScanPrep { residual, morsels, rowstore_rows } =
        prepare_scan(snapshot, filter, opts, &mut stats)?;

    // ---- per-segment filtering + materialization (morsel-parallel) ------
    // The table's Arc address keys the decision cache (segment ids repeat
    // across tables).
    let table_key = Arc::as_ptr(&snapshot.table) as usize;
    let threads = pool::effective_threads(opts.threads);
    let candidate_rows: usize = morsels.iter().map(SegMorsel::candidate_rows).sum();
    let fragments: Vec<Result<(Option<Batch>, ScanStats)>> =
        if threads > 1 && morsels.len() > 1 && candidate_rows > SMALL_SCAN_INLINE_ROWS {
            let shared = Arc::new((residual.clone(), opts.clone(), projection.to_vec()));
            ScanPool::global().run(threads, morsels, move |m| {
                let (residual, opts, projection) = &*shared;
                scan_segment(&m.seg, m.sel, residual, opts, projection, table_key)
            })
        } else {
            morsels
                .into_iter()
                .map(|m| scan_segment(&m.seg, m.sel, &residual, opts, projection, table_key))
                .collect()
        };

    // Deterministic reassembly: fragments arrive in segment order.
    let mut out_batches: Vec<Batch> = Vec::new();
    for fragment in fragments {
        let (batch, frag_stats) = fragment?;
        stats.merge(&frag_stats);
        if let Some(batch) = batch {
            out_batches.push(batch);
        }
    }

    // ---- rowstore level (always on the calling thread) -------------------
    if !rowstore_rows.is_empty() {
        // Build a batch over projection + residual-filter columns.
        let mut needed: Vec<usize> = projection.to_vec();
        for c in &residual {
            needed.extend(c.referenced_columns());
        }
        needed.sort_unstable();
        needed.dedup();
        let types: Vec<DataType> = needed.iter().map(|&c| schema.column(c).data_type).collect();
        let batch = Batch::from_rows(&rowstore_rows, &needed, &types)?;
        let pos: HashMap<usize, usize> = needed.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut sel: Option<Vec<u32>> = None;
        for clause in &residual {
            let remapped = clause.remap_columns(&|c| pos[&c]);
            sel = Some(batch.filter(&remapped, sel.as_deref())?);
            stats.regular_filters += 1;
        }
        let sel = match sel {
            Some(s) => s,
            None => (0..batch.rows() as u32).collect(),
        };
        if !sel.is_empty() {
            stats.rows_output += sel.len();
            let gathered = batch.gather(&sel);
            let cols: Vec<ColumnVector> =
                projection.iter().map(|c| gathered.columns[pos[c]].clone()).collect();
            out_batches.push(Batch::new(cols));
        }
    }

    let result = if out_batches.is_empty() {
        Batch::empty(&proj_types)
    } else {
        Batch::concat(&out_batches)?
    };
    record_scan_stats(&stats);
    Ok((result, stats))
}

/// Run the caller-thread front half of a scan: split the filter, probe
/// secondary indexes, apply per-segment skip checks, and collect the live
/// rowstore rows. Counters for skips and index filters land in `stats`.
pub(crate) fn prepare_scan(
    snapshot: &TableSnapshot,
    filter: Option<&Expr>,
    opts: &ScanOptions,
    stats: &mut ScanStats,
) -> Result<ScanPrep> {
    let conjuncts: Vec<Expr> = match filter {
        None => Vec::new(),
        Some(f) => f.clone().split_conjuncts(),
    };

    // ---- step 1a: secondary-index probe --------------------------------
    let total_rows = snapshot.live_row_count().max(1);
    let key_budget = (total_rows / opts.index_key_divisor).max(4);
    let mut probe_result = None;
    let mut consumed: Vec<usize> = Vec::new(); // conjunct indices answered by the index
    if opts.use_index {
        // Collect single-column equality clauses on indexed columns.
        let mut eq_cols: Vec<usize> = Vec::new();
        let mut eq_vals: Vec<Value> = Vec::new();
        let mut eq_idx: Vec<usize> = Vec::new();
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some((col, v)) = c.as_eq_literal() {
                if snapshot.table.columns_indexed(&[col]) && !eq_cols.contains(&col) {
                    eq_cols.push(col);
                    eq_vals.push(v);
                    eq_idx.push(i);
                }
            }
        }
        if !eq_cols.is_empty() {
            if let Some(probe) = snapshot.index_probe(&eq_cols, &eq_vals)? {
                probe_result = Some(probe);
                consumed = eq_idx;
                stats.index_filters += eq_cols.len();
            }
        } else {
            // IN-list probe on one indexed column, subject to the key budget.
            for (i, c) in conjuncts.iter().enumerate() {
                if let Some((col, vals)) = c.as_in_list() {
                    if vals.len() <= key_budget && snapshot.table.columns_indexed(&[col]) {
                        let mut merged = ProbeAccum::default();
                        let mut all_found = true;
                        for v in vals {
                            match snapshot.index_probe(&[col], std::slice::from_ref(v))? {
                                Some(p) => merged.absorb(p),
                                None => {
                                    all_found = false;
                                    break;
                                }
                            }
                        }
                        if all_found {
                            probe_result = Some(merged.finish());
                            consumed = vec![i];
                            stats.index_filters += 1;
                            break;
                        }
                    }
                }
            }
        }
    }

    let residual: Vec<Expr> = conjuncts
        .iter()
        .enumerate()
        .filter(|(i, _)| !consumed.contains(i))
        .map(|(_, c)| c.clone())
        .collect();

    // Ranges for min/max elimination come from *all* conjuncts.
    let ranges: Vec<(usize, Option<Value>, Option<Value>)> =
        conjuncts.iter().filter_map(Expr::as_column_range).collect();

    // ---- per-segment skip checks (caller thread) ------------------------
    // Map segment id -> probed rows when an index probe ran.
    let probed_rows: Option<HashMap<u64, Vec<u32>>> = probe_result
        .as_ref()
        .map(|p| p.segments.iter().map(|(core, rows)| (core.meta.id, rows.clone())).collect());

    let mut morsels: Vec<SegMorsel> = Vec::new();
    for seg in &snapshot.segments {
        let meta = &seg.core.meta;
        // Index skipping: a probe that didn't return this segment rules it out.
        let initial_sel: Option<Vec<u32>> = match &probed_rows {
            Some(map) => match map.get(&meta.id) {
                Some(rows) => Some(rows.clone()),
                None => {
                    stats.segments_skipped_index += 1;
                    continue;
                }
            },
            None => None,
        };
        // Min/max elimination (§5.1: after the index check, which cheaply
        // reduced the candidate set).
        if ranges.iter().any(|(c, lo, hi)| !meta.may_overlap_range(*c, lo.as_ref(), hi.as_ref())) {
            stats.segments_skipped_minmax += 1;
            continue;
        }

        // Deleted-row filter (bit vector, not merge-on-read). `None` keeps
        // the "all rows" fast paths (e.g. RLE run-range emission) intact.
        let sel: Option<Vec<u32>> = match initial_sel {
            Some(s) => Some(s), // probe already applied the snapshot's bits
            None => {
                if seg.deleted.count_ones() == 0 {
                    None
                } else {
                    Some(
                        (0..meta.row_count as u32)
                            .filter(|&r| !seg.deleted.get(r as usize))
                            .collect(),
                    )
                }
            }
        };
        if sel.as_ref().is_some_and(Vec::is_empty) {
            continue;
        }
        morsels.push(SegMorsel { seg: seg.clone(), sel });
    }

    // Rowstore (L0) rows: probe-matched when a probe ran, else all live.
    let rowstore_rows: Vec<Row> = match &probe_result {
        Some(p) => p.rowstore.iter().map(|(_, r)| r.clone()).collect(),
        None => snapshot.rowstore_rows().iter().map(|(_, r)| r.clone()).collect(),
    };

    Ok(ScanPrep { residual, morsels, rowstore_rows })
}

/// Filter and materialize one segment morsel. Runs on any pool thread; all
/// state it touches is shared immutable (`Arc`) data.
fn scan_segment(
    seg: &SegmentSnap,
    sel: Option<Vec<u32>>,
    residual: &[Expr],
    opts: &ScanOptions,
    projection: &[usize],
    table_key: usize,
) -> Result<(Option<Batch>, ScanStats)> {
    let mut stats = ScanStats::default();
    let sel = apply_clauses(seg, residual, sel, opts, &mut stats, table_key)?;
    if sel.as_ref().is_some_and(Vec::is_empty) {
        return Ok((None, stats));
    }
    let n_out = sel.as_ref().map_or(seg.core.meta.row_count, Vec::len);
    stats.rows_output += n_out;

    // Step 3: late materialization of the projection.
    let mut cols = Vec::with_capacity(projection.len());
    for &c in projection {
        cols.push(seg.core.reader.column(c)?.decode_vector(sel.as_deref())?);
    }
    Ok((Some(Batch::new(cols)), stats))
}

/// Fold one scan's [`ScanStats`] into the global metrics registry, so
/// aggregate skip rates and filter-strategy choices are visible in a metrics
/// snapshot without threading per-query stats around. (Decision-cache
/// hit/miss counters are recorded at the cache itself.)
pub(crate) fn record_scan_stats(stats: &ScanStats) {
    s2_obs::counter!("exec.scan.scans").inc();
    s2_obs::counter!("exec.scan.segments_total").add(stats.segments_total as u64);
    s2_obs::counter!("exec.scan.segments_skipped_index").add(stats.segments_skipped_index as u64);
    s2_obs::counter!("exec.scan.segments_skipped_minmax").add(stats.segments_skipped_minmax as u64);
    s2_obs::counter!("exec.scan.index_filters").add(stats.index_filters as u64);
    s2_obs::counter!("exec.scan.encoded_filters").add(stats.encoded_filters as u64);
    s2_obs::counter!("exec.scan.regular_filters").add(stats.regular_filters as u64);
    s2_obs::counter!("exec.scan.group_filters").add(stats.group_filters as u64);
    s2_obs::counter!("exec.scan.rows_output").add(stats.rows_output as u64);
    s2_obs::counter!("exec.scan.encoded_clause_total").add(stats.encoded_clause_total as u64);
    s2_obs::counter!("exec.scan.encoded_agg_rows").add(stats.encoded_agg_rows as u64);
    s2_obs::counter!("exec.scan.decode_skipped_rows").add(stats.decode_skipped_rows as u64);
}

/// Accumulates several [`s2_core::IndexProbe`] results into one (used to
/// union the probes of an IN-list's values).
#[derive(Default)]
struct ProbeAccum {
    segments: HashMap<u64, (std::sync::Arc<s2_core::SegmentCore>, Vec<u32>)>,
    rowstore: Vec<(Vec<Value>, Row)>,
}

impl ProbeAccum {
    fn absorb(&mut self, p: s2_core::IndexProbe) {
        for (core, rows) in p.segments {
            self.segments.entry(core.meta.id).or_insert_with(|| (core, Vec::new())).1.extend(rows);
        }
        // Probe values are distinct, so rowstore matches cannot repeat.
        self.rowstore.extend(p.rowstore);
    }

    fn finish(self) -> s2_core::IndexProbe {
        let segments = self
            .segments
            .into_values()
            .map(|(core, mut rows)| {
                rows.sort_unstable();
                rows.dedup();
                (core, rows)
            })
            .collect();
        s2_core::IndexProbe { segments, rowstore: self.rowstore }
    }
}

/// Evaluate residual clauses over one segment with per-segment strategy
/// choice and adaptive ordering. The plan (clause order, per-clause
/// strategy, sampled selectivities) is remembered in the decision cache so
/// a repeated query skips the sampling pass.
pub(crate) fn apply_clauses(
    seg: &SegmentSnap,
    residual: &[Expr],
    mut sel: Option<Vec<u32>>,
    opts: &ScanOptions,
    stats: &mut ScanStats,
    table_key: usize,
) -> Result<Option<Vec<u32>>> {
    if residual.is_empty() {
        return Ok(sel);
    }
    let seg_rows = seg.core.meta.row_count;
    let sel_len = |sel: &Option<Vec<u32>>| sel.as_ref().map_or(seg_rows, Vec::len);

    // Cache lookup: only adaptive plans are cached (non-adaptive planning
    // does no sampling, so there is nothing worth remembering).
    let use_cache = opts.decision_cache && opts.adaptive_reorder;
    let fp = cache::fingerprint(residual, opts.use_encoded, opts.encoded_exec, opts.sample_rows);
    let deleted = seg.deleted.count_ones();
    let cached: Option<Vec<PlannedClause>> = if use_cache {
        cache::global().get(table_key, seg.core.meta.id, fp, deleted)
    } else {
        None
    };
    if use_cache {
        if cached.is_some() {
            stats.decision_cache_hits += 1;
        } else {
            stats.decision_cache_misses += 1;
        }
    }

    let planned: Vec<PlannedClause> = match cached {
        Some(plan) => plan,
        None => {
            // Plan: measure each clause on a sample of the current selection.
            struct Costed {
                clause: PlannedClause,
                priority: f64,
            }
            let mut costed: Vec<Costed> = Vec::with_capacity(residual.len());
            let sample: Vec<u32> = match &sel {
                Some(s) => s.iter().copied().take(opts.sample_rows.max(16)).collect(),
                None => (0..seg_rows.min(opts.sample_rows.max(16)) as u32).collect(),
            };
            for (idx, clause) in residual.iter().enumerate() {
                let cols = clause.referenced_columns();
                let single = cols.len() == 1;
                // Encoded execution pays a fixed cost proportional to the
                // compressed domain (dictionary entries / runs) and then
                // near-zero per row; it wins when the domain is small relative
                // to the rows under consideration (paper §5.2: "ideal with a
                // small set of possible values ... worse if the dictionary
                // size is greater than the number of rows that passed the
                // previous filters").
                let can_encode = opts.use_encoded && single && {
                    let reader = seg.core.reader.column(cols[0])?;
                    reader.encoding().supports_encoded_execution()
                        && reader
                            .encoded_domain_size()
                            .is_some_and(|domain| domain * 4 <= sel_len(&sel).max(1))
                };
                let strategy = strategy_for(can_encode, opts.encoded_exec);
                if !opts.adaptive_reorder {
                    costed.push(Costed {
                        clause: PlannedClause { idx, strategy, selectivity: 0.5 },
                        priority: 0.0,
                    });
                    continue;
                }
                // Time the chosen strategy on a prefix sample to estimate cost
                // and selectivity; clauses are then ordered by `(1-P)/cost`
                // (the paper's per-segment costing, §5.2). The cost in the
                // formula is the *projected full-selection* cost: a regular
                // filter scales linearly with rows, while an encoded filter's
                // cost is dominated by the fixed pass over its compressed
                // domain, which the sample already paid in full.
                let t0 = Instant::now();
                let mut scratch = ScanStats::default();
                let out = match strategy {
                    ClauseStrategy::EncodedBitmap => {
                        eval_encoded_bitmap(seg, clause, cols[0], Some(&sample), &mut scratch)?
                    }
                    ClauseStrategy::Encoded => eval_encoded(seg, clause, cols[0], Some(&sample))?,
                    ClauseStrategy::Regular => {
                        eval_regular(seg, clause, &cols, Some(&sample), opts.encoded_exec)?
                    }
                };
                let sample_cost = t0.elapsed().as_nanos() as f64;
                let scale = sel_len(&sel).max(1) as f64 / sample.len().max(1) as f64;
                let est_total_cost = if can_encode { sample_cost } else { sample_cost * scale };
                let selectivity = out.len() as f64 / sample.len().max(1) as f64;
                costed.push(Costed {
                    clause: PlannedClause { idx, strategy, selectivity },
                    priority: (1.0 - selectivity) / est_total_cost.max(1.0),
                });
            }
            if opts.adaptive_reorder {
                costed.sort_by(|a, b| b.priority.total_cmp(&a.priority));
            }
            let plan: Vec<PlannedClause> = costed.into_iter().map(|c| c.clause).collect();
            if use_cache {
                cache::global().put(table_key, seg.core.meta.id, fp, deleted, plan.clone());
            }
            plan
        }
    };

    // Group filter (paper §5.2's fourth strategy): when adjacent clauses in
    // the chosen order are all non-selective ("most rows pass each individual
    // filter clause"), evaluating them together on the decoded columns avoids
    // the cost of combining selection vectors clause by clause. Encoded
    // clauses are never grouped — running on compressed data beats grouping.
    const GROUP_PASS_RATE: f64 = 0.75;
    let mut i = 0usize;
    while i < planned.len() {
        if sel.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
        let p = &planned[i];
        if p.strategy.is_encoded() {
            let clause = &residual[p.idx];
            let col = clause.referenced_columns()[0];
            sel = Some(match p.strategy {
                ClauseStrategy::EncodedBitmap => {
                    eval_encoded_bitmap(seg, clause, col, sel.as_deref(), stats)?
                }
                _ => eval_encoded(seg, clause, col, sel.as_deref())?,
            });
            stats.encoded_filters += 1;
            i += 1;
            continue;
        }
        // Collect a run of groupable regular clauses.
        let mut group_end = i + 1;
        if opts.adaptive_reorder && p.selectivity >= GROUP_PASS_RATE {
            while group_end < planned.len()
                && !planned[group_end].strategy.is_encoded()
                && planned[group_end].selectivity >= GROUP_PASS_RATE
            {
                group_end += 1;
            }
        }
        if group_end - i >= 2 {
            let combined = planned[i..group_end]
                .iter()
                .map(|q| residual[q.idx].clone())
                .reduce(Expr::and)
                .expect("at least two clauses");
            let cols = combined.referenced_columns();
            sel = Some(eval_regular(seg, &combined, &cols, sel.as_deref(), opts.encoded_exec)?);
            stats.group_filters += 1;
        } else {
            let clause = &residual[p.idx];
            let cols = clause.referenced_columns();
            sel = Some(eval_regular(seg, clause, &cols, sel.as_deref(), opts.encoded_exec)?);
            stats.regular_filters += 1;
        }
        i = group_end;
    }
    Ok(sel)
}

/// Choose a clause's evaluation strategy from what the data allows
/// (`can_encode`) and the execution mode.
fn strategy_for(can_encode: bool, encoded_exec: bool) -> ClauseStrategy {
    match (can_encode, encoded_exec) {
        (true, true) => ClauseStrategy::EncodedBitmap,
        (true, false) => ClauseStrategy::Encoded,
        (false, _) => ClauseStrategy::Regular,
    }
}

/// Regular filter: decode the clause's columns for the selected rows, then
/// evaluate the predicate on the decoded values — row-at-a-time
/// (`Expr::eval` via `Batch::filter`) or through the vectorized evaluator
/// when encoded execution is on. Both produce the same selection.
fn eval_regular(
    seg: &SegmentSnap,
    clause: &Expr,
    cols: &[usize],
    sel: Option<&[u32]>,
    vectorized: bool,
) -> Result<Vec<u32>> {
    let mut vectors = Vec::with_capacity(cols.len());
    for &c in cols {
        vectors.push(seg.core.reader.column(c)?.decode_vector(sel)?);
    }
    let pos: HashMap<usize, usize> = cols.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let remapped = clause.remap_columns(&|c| pos[&c]);
    let local: Vec<u32> = if vectorized {
        let rows = sel.map_or(seg.core.meta.row_count, <[u32]>::len);
        let mask = crate::veval::filter_mask(&vectors, rows, &remapped)?;
        mask.iter_ones().map(|i| i as u32).collect()
    } else {
        let batch = Batch::new(vectors);
        batch.filter(&remapped, None)?
    };
    Ok(match sel {
        Some(sel) => local.into_iter().map(|i| sel[i as usize]).collect(),
        None => local,
    })
}

/// Encoded filter: evaluate the predicate on the compressed domain
/// (dictionary entries / runs) without decoding (paper §5.2).
fn eval_encoded(
    seg: &SegmentSnap,
    clause: &Expr,
    col: usize,
    sel: Option<&[u32]>,
) -> Result<Vec<u32>> {
    let reader = seg.core.reader.column(col)?;
    let mut pred = |v: &Value| {
        let get = |c: usize| {
            debug_assert_eq!(c, col);
            v.clone()
        };
        clause.eval_bool(&get).unwrap_or(false)
    };
    match reader.encoded_filter(&mut pred, sel)? {
        Some(rows) => Ok(rows),
        None => eval_regular(seg, clause, &[col], sel, false),
    }
}

/// Encoded-domain bitmap filter (`ClauseStrategy::EncodedBitmap`): compile
/// the predicate into one accept bit per dictionary entry / run value, then
/// answer every candidate row with a code lookup — no `Value` is built per
/// row. Falls back to the vectorized regular filter when the column's
/// encoding cannot compile (plain/bit-packed data).
fn eval_encoded_bitmap(
    seg: &SegmentSnap,
    clause: &Expr,
    col: usize,
    sel: Option<&[u32]>,
    stats: &mut ScanStats,
) -> Result<Vec<u32>> {
    let reader = seg.core.reader.column(col)?;
    let mut pred = |v: &Value| {
        let get = |c: usize| {
            debug_assert_eq!(c, col);
            v.clone()
        };
        clause.eval_bool(&get).unwrap_or(false)
    };
    match reader.compile_predicate(&mut pred) {
        Some(compiled) => {
            let mask = reader.predicate_mask(&compiled);
            stats.encoded_clause_total += 1;
            Ok(match sel {
                Some(sel) => sel.iter().copied().filter(|&r| mask.get(r as usize)).collect(),
                None => mask.iter_ones().map(|r| r as u32).collect(),
            })
        }
        None => eval_regular(seg, clause, &[col], sel, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::schema::ColumnDef;
    use s2_common::{Schema, TableOptions};
    use s2_core::{MemFileStore, Partition};
    use s2_wal::Log;
    use std::sync::Arc;

    fn setup() -> (Arc<Partition>, u32) {
        let p = Partition::new("p0", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::new("grp", DataType::Str),
            ColumnDef::new("amount", DataType::Double),
        ])
        .unwrap();
        let opts = TableOptions::new()
            .with_sort_key(vec![0])
            .with_unique("pk", vec![0])
            .with_index("by_grp", vec![1])
            .with_segment_rows(100);
        let t = p.create_table("tx", schema, opts).unwrap();
        // 3 segments of 100 rows, plus 25 rowstore rows.
        for batch in 0..3i64 {
            let mut txn = p.begin();
            for i in 0..100i64 {
                let id = batch * 100 + i;
                txn.insert(
                    t,
                    Row::new(vec![
                        Value::Int(id),
                        Value::str(["a", "b", "c", "d"][(id % 4) as usize]),
                        Value::Double(id as f64),
                    ]),
                )
                .unwrap();
            }
            txn.commit().unwrap();
            p.flush_table(t, true).unwrap();
        }
        let mut txn = p.begin();
        for id in 300..325i64 {
            txn.insert(
                t,
                Row::new(vec![
                    Value::Int(id),
                    Value::str(["a", "b", "c", "d"][(id % 4) as usize]),
                    Value::Double(id as f64),
                ]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
        (p, t)
    }

    #[test]
    fn full_scan_no_filter() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        let (batch, stats) =
            scan(snap.table(t).unwrap(), &[0, 2], None, &ScanOptions::default()).unwrap();
        assert_eq!(batch.rows(), 325);
        assert_eq!(stats.segments_total, 3);
    }

    #[test]
    fn minmax_segment_elimination() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        // ids 0..99 live in segment 1 only (sort key = id).
        let f = Expr::between(0, 10i64, 20i64);
        let (batch, stats) =
            scan(snap.table(t).unwrap(), &[0], Some(&f), &ScanOptions::default()).unwrap();
        assert_eq!(batch.rows(), 11);
        assert_eq!(stats.segments_skipped_minmax, 2);
    }

    #[test]
    fn index_probe_scan() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        let f = Expr::eq(0, 42i64);
        let (batch, stats) =
            scan(snap.table(t).unwrap(), &[0, 1], Some(&f), &ScanOptions::default()).unwrap();
        assert_eq!(batch.rows(), 1);
        assert_eq!(batch.value(0, 0), Value::Int(42));
        assert!(stats.index_filters >= 1);
        assert!(stats.segments_skipped_index >= 2);
    }

    #[test]
    fn index_disabled_falls_back() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        let f = Expr::eq(0, 42i64);
        let opts = ScanOptions { use_index: false, ..Default::default() };
        let (batch, stats) = scan(snap.table(t).unwrap(), &[0], Some(&f), &opts).unwrap();
        assert_eq!(batch.rows(), 1);
        assert_eq!(stats.index_filters, 0);
    }

    #[test]
    fn secondary_index_on_group_column() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        let f = Expr::eq(1, "b");
        let (batch, _) =
            scan(snap.table(t).unwrap(), &[0, 1], Some(&f), &ScanOptions::default()).unwrap();
        // ids where id % 4 == 1: 1, 5, ..., 321 -> 81 rows.
        assert_eq!(batch.rows(), 81);
        for i in 0..batch.rows() {
            assert_eq!(batch.value(1, i), Value::str("b"));
        }
    }

    #[test]
    fn conjunction_of_index_and_residual() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        let f = Expr::eq(1, "b").and(Expr::cmp(2, crate::expr::CmpOp::Lt, 50.0));
        let (batch, _) =
            scan(snap.table(t).unwrap(), &[0], Some(&f), &ScanOptions::default()).unwrap();
        // id % 4 == 1 and id < 50: 1,5,...,49 -> 13 rows.
        assert_eq!(batch.rows(), 13);
    }

    #[test]
    fn in_list_probe() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        let f = Expr::InList(
            Box::new(Expr::Column(0)),
            vec![Value::Int(3), Value::Int(150), Value::Int(310), Value::Int(9999)],
        );
        let (batch, _) =
            scan(snap.table(t).unwrap(), &[0], Some(&f), &ScanOptions::default()).unwrap();
        assert_eq!(batch.rows(), 3);
    }

    #[test]
    fn deleted_rows_filtered() {
        let (p, t) = setup();
        let mut txn = p.begin();
        assert!(txn.delete_unique(t, &[Value::Int(10)]).unwrap());
        assert!(txn.delete_unique(t, &[Value::Int(310)]).unwrap()); // rowstore row
        txn.commit().unwrap();
        let snap = p.read_snapshot();
        let (batch, _) = scan(snap.table(t).unwrap(), &[0], None, &ScanOptions::default()).unwrap();
        assert_eq!(batch.rows(), 323);
    }

    #[test]
    fn group_filter_fires_for_non_selective_clauses() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        // Both clauses pass almost every row -> grouped into one evaluation
        // per segment under the adaptive planner.
        let f = Expr::cmp(2, crate::expr::CmpOp::Ge, 1.0).and(Expr::cmp(
            0,
            crate::expr::CmpOp::Ge,
            1i64,
        ));
        let (batch, stats) =
            scan(snap.table(t).unwrap(), &[0], Some(&f), &ScanOptions::default()).unwrap();
        assert_eq!(batch.rows(), 324, "ids 1..=324");
        assert!(stats.group_filters > 0, "{stats:?}");
        // Same filter without adaptivity: evaluated clause by clause.
        let opts = ScanOptions { adaptive_reorder: false, ..Default::default() };
        let (batch2, stats2) = scan(snap.table(t).unwrap(), &[0], Some(&f), &opts).unwrap();
        assert_eq!(batch2.rows(), 324);
        assert_eq!(stats2.group_filters, 0);
    }

    #[test]
    fn all_option_combinations_agree() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        let f = Expr::eq(1, "c").and(Expr::between(0, 40i64, 290i64));
        let mut counts = Vec::new();
        for use_index in [false, true] {
            for use_encoded in [false, true] {
                for adaptive_reorder in [false, true] {
                    let opts = ScanOptions {
                        use_index,
                        use_encoded,
                        adaptive_reorder,
                        ..Default::default()
                    };
                    let (batch, _) = scan(snap.table(t).unwrap(), &[0], Some(&f), &opts).unwrap();
                    counts.push(batch.rows());
                }
            }
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn thread_counts_agree() {
        let (p, t) = setup();
        let snap = p.read_snapshot();
        let f = Expr::cmp(2, crate::expr::CmpOp::Lt, 260.0);
        let mut rendered = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let opts = ScanOptions { threads, ..Default::default() };
            let (batch, _) = scan(snap.table(t).unwrap(), &[0, 1, 2], Some(&f), &opts).unwrap();
            let rows: Vec<String> =
                (0..batch.rows()).map(|i| format!("{:?}", batch.row(i))).collect();
            rendered.push(rows);
        }
        assert!(rendered.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(rendered[0].len(), 260);
    }
}
