//! Scalar expressions: the predicate and projection language of the
//! execution engine. Column references are table ordinals; the scan binds
//! them to decoded vectors, other operators to batch positions.

use s2_common::{date, Error, Result, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (table ordinal or batch position, per context).
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Comparison (SQL three-valued: NULL operands yield NULL -> filters drop).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `IS NULL`.
    IsNull(Box<Expr>),
    /// Membership in a literal list.
    InList(Box<Expr>, Vec<Value>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like(Box<Expr>, String),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Searched CASE.
    Case {
        /// (condition, result) arms, first match wins.
        when: Vec<(Expr, Expr)>,
        /// ELSE result.
        else_: Box<Expr>,
    },
    /// EXTRACT(YEAR FROM date) over days-since-epoch ints.
    Year(Box<Expr>),
    /// SUBSTRING(expr, start (1-based), len).
    Substr(Box<Expr>, usize, usize),
}

impl Expr {
    /// `column = literal` shorthand.
    pub fn eq(col: usize, v: impl Into<Value>) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(Expr::Column(col)), Box::new(Expr::Literal(v.into())))
    }

    /// `column <op> literal` shorthand.
    pub fn cmp(col: usize, op: CmpOp, v: impl Into<Value>) -> Expr {
        Expr::Cmp(op, Box::new(Expr::Column(col)), Box::new(Expr::Literal(v.into())))
    }

    /// `lo <= column <= hi` shorthand.
    pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        Expr::And(vec![Expr::cmp(col, CmpOp::Ge, lo), Expr::cmp(col, CmpOp::Le, hi)])
    }

    /// Conjunction of two expressions, flattening nested ANDs.
    pub fn and(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::And(mut a), Expr::And(b)) => {
                a.extend(b);
                Expr::And(a)
            }
            (Expr::And(mut a), b) => {
                a.push(b);
                Expr::And(a)
            }
            (a, Expr::And(mut b)) => {
                b.insert(0, a);
                Expr::And(b)
            }
            (a, b) => Expr::And(vec![a, b]),
        }
    }

    /// Split an AND tree into its conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::And(parts) => parts.into_iter().flat_map(Expr::split_conjuncts).collect(),
            other => vec![other],
        }
    }

    /// All column ordinals referenced.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(c) => out.push(*c),
            Expr::Literal(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::And(xs) | Expr::Or(xs) => xs.iter().for_each(|x| x.collect_columns(out)),
            Expr::Not(x) | Expr::IsNull(x) | Expr::Year(x) | Expr::Substr(x, _, _) => {
                x.collect_columns(out)
            }
            Expr::InList(x, _) | Expr::Like(x, _) => x.collect_columns(out),
            Expr::Case { when, else_ } => {
                for (c, r) in when {
                    c.collect_columns(out);
                    r.collect_columns(out);
                }
                else_.collect_columns(out);
            }
        }
    }

    /// If this is `column = literal`, return (column, literal).
    pub fn as_eq_literal(&self) -> Option<(usize, Value)> {
        if let Expr::Cmp(CmpOp::Eq, a, b) = self {
            match (a.as_ref(), b.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                    return Some((*c, v.clone()));
                }
                _ => {}
            }
        }
        None
    }

    /// If this is `column IN (literals)`, return (column, values).
    pub fn as_in_list(&self) -> Option<(usize, &[Value])> {
        if let Expr::InList(e, vals) = self {
            if let Expr::Column(c) = e.as_ref() {
                return Some((*c, vals));
            }
        }
        None
    }

    /// If this clause bounds a single column by literals, return
    /// (column, lower, upper) — both bounds inclusive-ized for min/max
    /// segment elimination (which only needs a conservative answer).
    pub fn as_column_range(&self) -> Option<(usize, Option<Value>, Option<Value>)> {
        if let Some((c, v)) = self.as_eq_literal() {
            return Some((c, Some(v.clone()), Some(v)));
        }
        if let Expr::Cmp(op, a, b) = self {
            let (col, lit, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => (*c, v.clone(), *op),
                (Expr::Literal(v), Expr::Column(c)) => {
                    // Flip: lit OP col == col FLIP(OP) lit
                    let flipped = match op {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        other => *other,
                    };
                    (*c, v.clone(), flipped)
                }
                _ => return None,
            };
            return match op {
                CmpOp::Lt | CmpOp::Le => Some((col, None, Some(lit))),
                CmpOp::Gt | CmpOp::Ge => Some((col, Some(lit), None)),
                CmpOp::Eq => Some((col, Some(lit.clone()), Some(lit))),
                CmpOp::Ne => None,
            };
        }
        if let Expr::And(parts) = self {
            // Merge ranges over the same column (e.g. BETWEEN).
            let mut merged: Option<(usize, Option<Value>, Option<Value>)> = None;
            for p in parts {
                let (c, lo, hi) = p.as_column_range()?;
                match &mut merged {
                    None => merged = Some((c, lo, hi)),
                    Some((mc, mlo, mhi)) => {
                        if *mc != c {
                            return None;
                        }
                        if let Some(lo) = lo {
                            *mlo = Some(match mlo.take() {
                                Some(cur) => cur.max(lo),
                                None => lo,
                            });
                        }
                        if let Some(hi) = hi {
                            *mhi = Some(match mhi.take() {
                                Some(cur) => cur.min(hi),
                                None => hi,
                            });
                        }
                    }
                }
            }
            return merged;
        }
        None
    }

    /// Rewrite every column reference through `f` (e.g. table ordinals to
    /// batch positions).
    pub fn remap_columns(&self, f: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(c) => Expr::Column(f(*c)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::And(xs) => Expr::And(xs.iter().map(|x| x.remap_columns(f)).collect()),
            Expr::Or(xs) => Expr::Or(xs.iter().map(|x| x.remap_columns(f)).collect()),
            Expr::Not(x) => Expr::Not(Box::new(x.remap_columns(f))),
            Expr::IsNull(x) => Expr::IsNull(Box::new(x.remap_columns(f))),
            Expr::InList(x, vals) => Expr::InList(Box::new(x.remap_columns(f)), vals.clone()),
            Expr::Like(x, p) => Expr::Like(Box::new(x.remap_columns(f)), p.clone()),
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Case { when, else_ } => Expr::Case {
                when: when.iter().map(|(c, r)| (c.remap_columns(f), r.remap_columns(f))).collect(),
                else_: Box::new(else_.remap_columns(f)),
            },
            Expr::Year(x) => Expr::Year(Box::new(x.remap_columns(f))),
            Expr::Substr(x, a, b) => Expr::Substr(Box::new(x.remap_columns(f)), *a, *b),
        }
    }

    /// Evaluate with a column accessor. NULL propagates SQL-style.
    pub fn eval(&self, get: &dyn Fn(usize) -> Value) -> Result<Value> {
        Ok(match self {
            Expr::Column(c) => get(*c),
            Expr::Literal(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let va = a.eval(get)?;
                let vb = b.eval(get)?;
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                let ord = va.total_cmp(&vb);
                let res = match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                };
                Value::Int(res as i64)
            }
            Expr::And(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval(get)? {
                        Value::Null => saw_null = true,
                        v if truthy(&v) => {}
                        _ => return Ok(Value::Int(0)),
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Int(1)
                }
            }
            Expr::Or(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval(get)? {
                        Value::Null => saw_null = true,
                        v if truthy(&v) => return Ok(Value::Int(1)),
                        _ => {}
                    }
                }
                if saw_null {
                    Value::Null
                } else {
                    Value::Int(0)
                }
            }
            Expr::Not(x) => match x.eval(get)? {
                Value::Null => Value::Null,
                v => Value::Int(!truthy(&v) as i64),
            },
            Expr::IsNull(x) => Value::Int(x.eval(get)?.is_null() as i64),
            Expr::InList(x, vals) => {
                let v = x.eval(get)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                Value::Int(vals.contains(&v) as i64)
            }
            Expr::Like(x, pattern) => {
                let v = x.eval(get)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                Value::Int(like_match(v.as_str()?, pattern) as i64)
            }
            Expr::Arith(op, a, b) => {
                let va = a.eval(get)?;
                let vb = b.eval(get)?;
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                match (&va, &vb) {
                    (Value::Int(x), Value::Int(y)) => match op {
                        ArithOp::Add => Value::Int(x.wrapping_add(*y)),
                        ArithOp::Sub => Value::Int(x.wrapping_sub(*y)),
                        ArithOp::Mul => Value::Int(x.wrapping_mul(*y)),
                        ArithOp::Div => {
                            if *y == 0 {
                                return Err(Error::InvalidArgument("division by zero".into()));
                            }
                            Value::Int(x / y)
                        }
                    },
                    _ => {
                        let x = va.as_double()?;
                        let y = vb.as_double()?;
                        Value::Double(match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => x / y,
                        })
                    }
                }
            }
            Expr::Case { when, else_ } => {
                for (cond, result) in when {
                    if truthy(&cond.eval(get)?) {
                        return result.eval(get);
                    }
                }
                else_.eval(get)?
            }
            Expr::Year(x) => {
                let v = x.eval(get)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                Value::Int(i64::from(date::year_of(v.as_int()?)))
            }
            Expr::Substr(x, start, len) => {
                let v = x.eval(get)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let s = v.as_str()?;
                let start = start.saturating_sub(1); // SQL is 1-based
                let out: String = s.chars().skip(start).take(*len).collect();
                Value::str(out)
            }
        })
    }

    /// Evaluate as a filter predicate (NULL -> false).
    pub fn eval_bool(&self, get: &dyn Fn(usize) -> Value) -> Result<bool> {
        Ok(truthy(&self.eval(get)?))
    }
}

#[inline]
pub(crate) fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i != 0,
        Value::Double(d) => *d != 0.0,
        Value::Null => false,
        Value::Str(s) => !s.is_empty(),
    }
}

/// SQL LIKE matcher: `%` = any run, `_` = any single char. Iterative
/// two-pointer algorithm with backtracking to the last `%`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern pos after %, s pos)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            pi = sp;
            si = ss + 1;
            star = Some((sp, ss + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<Value>) -> impl Fn(usize) -> Value {
        move |i| vals[i].clone()
    }

    #[test]
    fn comparisons_and_nulls() {
        let get = row(vec![Value::Int(5), Value::Null]);
        assert!(Expr::cmp(0, CmpOp::Gt, 3i64).eval_bool(&get).unwrap());
        assert!(!Expr::cmp(0, CmpOp::Gt, 5i64).eval_bool(&get).unwrap());
        // NULL comparison -> NULL -> false as a filter.
        assert!(!Expr::cmp(1, CmpOp::Eq, 1i64).eval_bool(&get).unwrap());
        assert!(Expr::IsNull(Box::new(Expr::Column(1))).eval_bool(&get).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let get = row(vec![Value::Null, Value::Int(1)]);
        // NULL AND TRUE = NULL (false as filter); NULL OR TRUE = TRUE.
        let null_cmp = Expr::cmp(0, CmpOp::Eq, 1i64);
        let true_cmp = Expr::cmp(1, CmpOp::Eq, 1i64);
        assert!(!Expr::And(vec![null_cmp.clone(), true_cmp.clone()]).eval_bool(&get).unwrap());
        assert!(Expr::Or(vec![null_cmp.clone(), true_cmp]).eval_bool(&get).unwrap());
        // NULL OR FALSE = NULL -> false.
        let false_cmp = Expr::cmp(1, CmpOp::Eq, 2i64);
        assert!(!Expr::Or(vec![null_cmp, false_cmp]).eval_bool(&get).unwrap());
    }

    #[test]
    fn arithmetic() {
        let get = row(vec![Value::Int(10), Value::Double(2.5)]);
        let e = Expr::Arith(ArithOp::Mul, Box::new(Expr::Column(0)), Box::new(Expr::Column(1)));
        assert_eq!(e.eval(&get).unwrap(), Value::Double(25.0));
        let div0 = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Column(0)),
            Box::new(Expr::Literal(Value::Int(0))),
        );
        assert!(div0.eval(&get).is_err());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello world", "hello%"));
        assert!(like_match("hello world", "%world"));
        assert!(like_match("hello world", "%lo wo%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_llo_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%abc%%"));
        assert!(!like_match("special requests", "%special%deposits%"));
        assert!(like_match("special pending deposits", "%special%deposits%"));
    }

    #[test]
    fn case_and_year_and_substr() {
        let date = s2_common::date::days_from_ymd(1995, 6, 15);
        let get = row(vec![Value::Int(date), Value::str("BRAZIL")]);
        assert_eq!(Expr::Year(Box::new(Expr::Column(0))).eval(&get).unwrap(), Value::Int(1995));
        let case = Expr::Case {
            when: vec![(Expr::eq(1, "BRAZIL"), Expr::Literal(Value::Int(1)))],
            else_: Box::new(Expr::Literal(Value::Int(0))),
        };
        assert_eq!(case.eval(&get).unwrap(), Value::Int(1));
        assert_eq!(
            Expr::Substr(Box::new(Expr::Column(1)), 1, 3).eval(&get).unwrap(),
            Value::str("BRA")
        );
    }

    #[test]
    fn range_extraction() {
        let e = Expr::between(2, 10i64, 20i64);
        assert_eq!(e.as_column_range(), Some((2, Some(Value::Int(10)), Some(Value::Int(20)))));
        let e = Expr::cmp(1, CmpOp::Lt, 5i64);
        assert_eq!(e.as_column_range(), Some((1, None, Some(Value::Int(5)))));
        let e = Expr::eq(0, "x");
        assert_eq!(e.as_eq_literal(), Some((0, Value::str("x"))));
        // Mixed columns: no single range.
        let mixed = Expr::cmp(0, CmpOp::Lt, 1i64).and(Expr::cmp(1, CmpOp::Gt, 2i64));
        assert_eq!(mixed.as_column_range(), None);
    }

    #[test]
    fn conjunct_splitting_and_columns() {
        let e = Expr::eq(0, 1i64).and(Expr::eq(2, 2i64)).and(Expr::eq(5, 3i64));
        let parts = e.clone().split_conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(e.referenced_columns(), vec![0, 2, 5]);
    }
}
