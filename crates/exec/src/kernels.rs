//! Vectorized relational kernels: hash join, hash aggregation, sort and
//! limit. These are the building blocks the query layer (`s2-query`)
//! composes into physical plans.

use std::collections::HashMap;

use s2_common::hash::hash_values;
use s2_common::{DataType, Error, Result, Value};
use s2_encoding::{ColumnVector, VectorBuilder};

use crate::batch::Batch;
use crate::expr::Expr;

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with NULLs).
    Left,
    /// Left semi join (left rows with at least one match).
    Semi,
    /// Left anti join (left rows with no match).
    Anti,
}

fn key_of(batch: &Batch, cols: &[usize], row: usize) -> Vec<Value> {
    cols.iter().map(|&c| batch.value(c, row)).collect()
}

/// Hash join `left` and `right` on equality of the given key columns.
/// Output columns = all left columns followed by all right columns (for
/// Semi/Anti: left columns only). NULL keys never match (SQL semantics).
pub fn hash_join(
    left: &Batch,
    right: &Batch,
    left_keys: &[usize],
    right_keys: &[usize],
    join_type: JoinType,
    residual: Option<&Expr>,
) -> Result<Batch> {
    if left_keys.len() != right_keys.len() {
        return Err(Error::InvalidArgument("join key arity mismatch".into()));
    }
    // Build on the right side.
    let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
    for ri in 0..right.rows() {
        if right_keys.iter().any(|&c| right.columns[c].is_null(ri)) {
            continue;
        }
        let key = key_of(right, right_keys, ri);
        table.entry(hash_values(key.iter())).or_default().push(ri as u32);
    }

    let left_types: Vec<DataType> = left.columns.iter().map(ColumnVector::data_type).collect();
    let right_types: Vec<DataType> = right.columns.iter().map(ColumnVector::data_type).collect();
    let out_types: Vec<DataType> = match join_type {
        JoinType::Semi | JoinType::Anti => left_types.clone(),
        _ => left_types.iter().chain(&right_types).copied().collect(),
    };
    let mut builders: Vec<VectorBuilder> =
        out_types.iter().map(|&t| VectorBuilder::new(t, left.rows())).collect();

    let mut emit = |lrow: usize, rrow: Option<usize>| {
        for (ci, b) in builders.iter_mut().enumerate() {
            if ci < left.width() {
                push_from(b, &left.columns[ci], lrow);
            } else {
                match rrow {
                    Some(rr) => push_from(b, &right.columns[ci - left.width()], rr),
                    None => b.push_null(),
                }
            }
        }
    };

    for li in 0..left.rows() {
        let null_key = left_keys.iter().any(|&c| left.columns[c].is_null(li));
        let mut matched = false;
        if !null_key {
            let key = key_of(left, left_keys, li);
            if let Some(cands) = table.get(&hash_values(key.iter())) {
                for &ri in cands {
                    let ri = ri as usize;
                    // Verify actual equality (hash collisions).
                    if !left_keys
                        .iter()
                        .zip(right_keys)
                        .all(|(&lc, &rc)| left.value(lc, li) == right.value(rc, ri))
                    {
                        continue;
                    }
                    // Residual predicate over the combined row: columns
                    // 0..left.width() are left, then right.
                    if let Some(res) = residual {
                        let get = |c: usize| {
                            if c < left.width() {
                                left.value(c, li)
                            } else {
                                right.value(c - left.width(), ri)
                            }
                        };
                        if !res.eval_bool(&get)? {
                            continue;
                        }
                    }
                    matched = true;
                    match join_type {
                        JoinType::Inner | JoinType::Left => emit(li, Some(ri)),
                        JoinType::Semi => {
                            emit(li, None);
                            break;
                        }
                        JoinType::Anti => break,
                    }
                }
            }
        }
        match join_type {
            JoinType::Left if !matched => emit(li, None),
            JoinType::Anti if !matched => emit(li, None),
            _ => {}
        }
    }
    Ok(Batch::new(builders.into_iter().map(VectorBuilder::finish).collect()))
}

fn push_from(b: &mut VectorBuilder, col: &ColumnVector, row: usize) {
    if col.is_null(row) {
        b.push_null();
        return;
    }
    match col {
        ColumnVector::Int { values, .. } => b.push_int(values[row]),
        ColumnVector::Double { values, .. } => b.push_double(values[row]),
        ColumnVector::Str { .. } => b.push_str(col.str_at(row)),
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(expr) — non-null count; with `Expr::Literal(1)` ~ COUNT(*).
    Count,
    /// SUM(expr) as double.
    Sum,
    /// AVG(expr).
    Avg,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
}

/// One aggregate: function + input expression (batch positions).
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// Input expression.
    pub input: Expr,
}

#[derive(Clone)]
pub(crate) struct AggState {
    pub(crate) count: u64,
    pub(crate) sum: f64,
    pub(crate) min: Option<Value>,
    pub(crate) max: Option<Value>,
}

impl AggState {
    pub(crate) fn new() -> AggState {
        AggState { count: 0, sum: 0.0, min: None, max: None }
    }

    pub(crate) fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Ok(d) = v.as_double() {
            self.sum += d;
        }
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v < m => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v > m => self.max = Some(v.clone()),
            _ => {}
        }
    }

    pub(crate) fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Hash group-by aggregation. Output columns: group keys (in order) then one
/// column per aggregate. With no group keys, emits exactly one row (global
/// aggregate over zero input rows included, SQL-style).
pub fn hash_aggregate(batch: &Batch, group_by: &[Expr], aggregates: &[Aggregate]) -> Result<Batch> {
    // Evaluate group keys and aggregate inputs per row.
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new(); // stable first-seen order
    let mut states: Vec<Vec<AggState>> = Vec::new(); // parallel to `order`
    for ri in 0..batch.rows() {
        let get = |c: usize| batch.value(c, ri);
        let key: Vec<Value> = group_by.iter().map(|g| g.eval(&get)).collect::<Result<_>>()?;
        let slot = *groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            states.push(vec![AggState::new(); aggregates.len()]);
            states.len() - 1
        });
        for (s, a) in states[slot].iter_mut().zip(aggregates) {
            s.update(&a.input.eval(&get)?);
        }
    }
    assemble_aggregate_output(group_by.len(), order, states, aggregates)
}

/// Build the output batch of an aggregation from first-seen-ordered group
/// keys and their accumulator states. Shared by [`hash_aggregate`] and the
/// encoded-domain fused path (`crate::encoded`) so the SQL edge cases —
/// global aggregate over zero rows emits one row, grouped aggregate over
/// zero rows emits zero with default types, types inferred from the first
/// group — behave identically on both.
pub(crate) fn assemble_aggregate_output(
    group_by_len: usize,
    mut order: Vec<Vec<Value>>,
    mut states: Vec<Vec<AggState>>,
    aggregates: &[Aggregate],
) -> Result<Batch> {
    if group_by_len == 0 && order.is_empty() {
        order.push(Vec::new());
        states.push(vec![AggState::new(); aggregates.len()]);
    }
    if order.is_empty() {
        // Grouped aggregate over zero rows: zero groups. Types default to
        // Int64 keys / per-function aggregate types.
        let mut types = vec![DataType::Int64; group_by_len];
        for a in aggregates {
            types.push(match a.func {
                AggFunc::Count => DataType::Int64,
                _ => DataType::Double,
            });
        }
        return Ok(Batch::empty(&types));
    }

    // Infer output column types from the first group.
    let first = &order[0];
    let first_states = &states[0];
    let mut types: Vec<DataType> = Vec::new();
    for v in first {
        types.push(v.data_type().unwrap_or(DataType::Int64));
    }
    for (s, a) in first_states.iter().zip(aggregates) {
        types.push(s.finish(a.func).data_type().unwrap_or(match a.func {
            AggFunc::Count => DataType::Int64,
            _ => DataType::Double,
        }));
    }
    let mut builders: Vec<VectorBuilder> =
        types.iter().map(|&t| VectorBuilder::new(t, order.len())).collect();
    for (key, states) in order.iter().zip(&states) {
        for (ci, v) in key.iter().enumerate() {
            builders[ci].push(v)?;
        }
        for (i, (s, a)) in states.iter().zip(aggregates).enumerate() {
            builders[key.len() + i].push(&s.finish(a.func))?;
        }
    }
    Ok(Batch::new(builders.into_iter().map(VectorBuilder::finish).collect()))
}

/// Sort key direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending, NULLs first (total order of `Value`).
    Asc,
    /// Descending.
    Desc,
}

/// Sort a batch by the given (column, direction) keys; optional limit.
pub fn sort_batch(batch: &Batch, keys: &[(usize, SortDir)], limit: Option<usize>) -> Batch {
    let mut idx: Vec<u32> = (0..batch.rows() as u32).collect();
    idx.sort_by(|&a, &b| {
        for &(c, dir) in keys {
            let va = batch.value(c, a as usize);
            let vb = batch.value(c, b as usize);
            let o = va.total_cmp(&vb);
            if o != std::cmp::Ordering::Equal {
                return match dir {
                    SortDir::Asc => o,
                    SortDir::Desc => o.reverse(),
                };
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(l) = limit {
        idx.truncate(l);
    }
    batch.gather(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::Row;

    fn batch(rows: Vec<Vec<Value>>, types: &[DataType]) -> Batch {
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let cols: Vec<usize> = (0..types.len()).collect();
        Batch::from_rows(&rows, &cols, types).unwrap()
    }

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn inner_join_basic() {
        let left = batch(
            vec![ints(&[1, 10]), ints(&[2, 20]), ints(&[3, 30]), ints(&[2, 21])],
            &[DataType::Int64, DataType::Int64],
        );
        let right = batch(
            vec![ints(&[2, 200]), ints(&[3, 300]), ints(&[4, 400])],
            &[DataType::Int64, DataType::Int64],
        );
        let out = hash_join(&left, &right, &[0], &[0], JoinType::Inner, None).unwrap();
        assert_eq!(out.rows(), 3);
        assert_eq!(out.width(), 4);
        // Row with left key 3 joined right value 300.
        let found = (0..out.rows())
            .any(|r| out.value(0, r) == Value::Int(3) && out.value(3, r) == Value::Int(300));
        assert!(found);
    }

    #[test]
    fn left_join_pads_nulls() {
        let left = batch(vec![ints(&[1]), ints(&[2])], &[DataType::Int64]);
        let right = batch(vec![ints(&[2])], &[DataType::Int64]);
        let out = hash_join(&left, &right, &[0], &[0], JoinType::Left, None).unwrap();
        assert_eq!(out.rows(), 2);
        let nulls = (0..2).filter(|&r| out.columns[1].is_null(r)).count();
        assert_eq!(nulls, 1);
    }

    #[test]
    fn semi_and_anti() {
        let left = batch(vec![ints(&[1]), ints(&[2]), ints(&[3])], &[DataType::Int64]);
        let right = batch(vec![ints(&[2]), ints(&[2])], &[DataType::Int64]);
        let semi = hash_join(&left, &right, &[0], &[0], JoinType::Semi, None).unwrap();
        assert_eq!(semi.rows(), 1, "dup matches emit once");
        assert_eq!(semi.value(0, 0), Value::Int(2));
        let anti = hash_join(&left, &right, &[0], &[0], JoinType::Anti, None).unwrap();
        assert_eq!(anti.rows(), 2);
    }

    #[test]
    fn null_keys_never_match() {
        let left = batch(vec![vec![Value::Null], ints(&[1])], &[DataType::Int64]);
        let right = batch(vec![vec![Value::Null], ints(&[1])], &[DataType::Int64]);
        let out = hash_join(&left, &right, &[0], &[0], JoinType::Inner, None).unwrap();
        assert_eq!(out.rows(), 1);
    }

    #[test]
    fn join_residual_filter() {
        let left = batch(vec![ints(&[1, 5]), ints(&[1, 50])], &[DataType::Int64, DataType::Int64]);
        let right = batch(vec![ints(&[1, 10])], &[DataType::Int64, DataType::Int64]);
        // residual: left.col1 < right.col1  (positions: 0,1 left; 2,3 right)
        let res =
            Expr::Cmp(crate::expr::CmpOp::Lt, Box::new(Expr::Column(1)), Box::new(Expr::Column(3)));
        let out = hash_join(&left, &right, &[0], &[0], JoinType::Inner, Some(&res)).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.value(1, 0), Value::Int(5));
    }

    #[test]
    fn aggregate_grouped() {
        let b = batch(
            vec![
                vec![Value::str("a"), Value::Int(1)],
                vec![Value::str("b"), Value::Int(2)],
                vec![Value::str("a"), Value::Int(3)],
                vec![Value::str("a"), Value::Null],
            ],
            &[DataType::Str, DataType::Int64],
        );
        let out = hash_aggregate(
            &b,
            &[Expr::Column(0)],
            &[
                Aggregate { func: AggFunc::Count, input: Expr::Column(1) },
                Aggregate { func: AggFunc::Sum, input: Expr::Column(1) },
                Aggregate { func: AggFunc::Avg, input: Expr::Column(1) },
            ],
        )
        .unwrap();
        assert_eq!(out.rows(), 2);
        // Group "a": count 2 (null skipped), sum 4, avg 2.
        let a_row = (0..2).find(|&r| out.value(0, r) == Value::str("a")).unwrap();
        assert_eq!(out.value(1, a_row), Value::Int(2));
        assert_eq!(out.value(2, a_row), Value::Double(4.0));
        assert_eq!(out.value(3, a_row), Value::Double(2.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let b = Batch::empty(&[DataType::Int64]);
        let out =
            hash_aggregate(&b, &[], &[Aggregate { func: AggFunc::Count, input: Expr::Column(0) }])
                .unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.value(0, 0), Value::Int(0));
    }

    #[test]
    fn min_max_strings() {
        let b = batch(
            vec![vec![Value::str("m")], vec![Value::str("a")], vec![Value::str("z")]],
            &[DataType::Str],
        );
        let out = hash_aggregate(
            &b,
            &[],
            &[
                Aggregate { func: AggFunc::Min, input: Expr::Column(0) },
                Aggregate { func: AggFunc::Max, input: Expr::Column(0) },
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, 0), Value::str("a"));
        assert_eq!(out.value(1, 0), Value::str("z"));
    }

    #[test]
    fn sort_and_limit() {
        let b = batch(
            vec![ints(&[3, 1]), ints(&[1, 2]), ints(&[2, 3])],
            &[DataType::Int64, DataType::Int64],
        );
        let sorted = sort_batch(&b, &[(0, SortDir::Asc)], None);
        assert_eq!(sorted.value(0, 0), Value::Int(1));
        assert_eq!(sorted.value(0, 2), Value::Int(3));
        let top1 = sort_batch(&b, &[(0, SortDir::Desc)], Some(1));
        assert_eq!(top1.rows(), 1);
        assert_eq!(top1.value(0, 0), Value::Int(3));
    }
}
