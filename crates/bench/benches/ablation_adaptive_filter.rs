//! Ablation: dynamic `(1-P)/cost` clause reordering vs the written clause
//! order (paper §5.2). The filter is written worst-first: an expensive,
//! non-selective LIKE ahead of a cheap, highly selective integer compare.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_exec::{scan, CmpOp, Expr, ScanOptions};
use s2_wal::Log;

const ROWS: i64 = 120_000;

fn setup() -> (Arc<Partition>, u32) {
    let p = Partition::new("b", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("comment", DataType::Str),
        // Uncorrelated with row position, so the prefix sample used by the
        // costing sees the clause's true ~1% selectivity.
        ColumnDef::new("score", DataType::Int64),
    ])
    .unwrap();
    let opts = TableOptions::new().with_segment_rows(ROWS as usize);
    let t = p.create_table("t", schema, opts).unwrap();
    for chunk in 0..(ROWS / 10_000) {
        let mut txn = p.begin();
        for i in 0..10_000 {
            let id = chunk * 10_000 + i;
            txn.insert(
                t,
                Row::new(vec![
                    Value::Int(id),
                    Value::str(format!(
                        "comment number {id} with plenty of filler text to make LIKE expensive"
                    )),
                    Value::Int((id * 37) % 1000),
                ]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }
    p.flush_table(t, true).unwrap();
    while p.merge_table(t).unwrap() {}
    p.vacuum().unwrap();
    (p, t)
}

fn bench(c: &mut Criterion) {
    let (p, t) = setup();
    let snap = p.read_snapshot();
    let ts = Arc::clone(snap.table(t).unwrap());
    // Written order: expensive LIKE (passes almost everything) first, then a
    // cheap compare that keeps 1% of rows.
    let filter = Expr::Like(Box::new(Expr::Column(1)), "%filler%".into()).and(Expr::cmp(
        2,
        CmpOp::Lt,
        10i64,
    ));

    let mut group = c.benchmark_group("clause_ordering");
    group.sample_size(15);
    group.bench_function("adaptive_reorder", |b| {
        let opts = ScanOptions { adaptive_reorder: true, use_index: false, ..Default::default() };
        b.iter(|| {
            let (batch, _) = scan(&ts, &[0], Some(&filter), &opts).unwrap();
            assert_eq!(batch.rows() as i64, ROWS / 100);
        })
    });
    group.bench_function("static_order", |b| {
        let opts = ScanOptions { adaptive_reorder: false, use_index: false, ..Default::default() };
        b.iter(|| {
            let (batch, _) = scan(&ts, &[0], Some(&filter), &opts).unwrap();
            assert_eq!(batch.rows() as i64, ROWS / 100);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
