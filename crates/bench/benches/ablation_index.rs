//! Ablation: two-level secondary index vs per-segment-only probing vs full
//! scan for point lookups (paper §4.1's O(log N)-vs-O(N) argument).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_exec::{scan, Expr, ScanOptions};
use s2_wal::Log;

const SEGMENTS: usize = 24;
const ROWS_PER_SEGMENT: i64 = 4_000;

fn setup() -> (Arc<Partition>, u32) {
    let p = Partition::new("b", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("payload", DataType::Str),
    ])
    .unwrap();
    // No sort key: ids scatter across segments, the worst case for probing.
    let opts =
        TableOptions::new().with_unique("pk", vec![0]).with_segment_rows(ROWS_PER_SEGMENT as usize);
    let t = p.create_table("t", schema, opts).unwrap();
    for s in 0..SEGMENTS as i64 {
        let mut txn = p.begin();
        for i in 0..ROWS_PER_SEGMENT {
            // Interleave ids so every segment's [min, max] covers everything.
            let id = i * SEGMENTS as i64 + s;
            txn.insert(t, Row::new(vec![Value::Int(id), Value::str(format!("row{id}"))])).unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    p.vacuum().unwrap();
    (p, t)
}

fn bench(c: &mut Criterion) {
    let (p, t) = setup();
    let snap = p.read_snapshot();
    let table_snap = Arc::clone(snap.table(t).unwrap());
    let total = SEGMENTS as i64 * ROWS_PER_SEGMENT;
    let mut key = 0i64;
    let next_key = move || {
        key = (key + 7919) % total;
        key
    };

    let mut group = c.benchmark_group("point_lookup");
    // Two-level index: O(levels) global probes, then exact postings.
    group.bench_function("two_level_index", |b| {
        let mut nk = next_key;
        b.iter(|| {
            let probe = table_snap.index_probe(&[0], &[Value::Int(nk())]).unwrap().unwrap();
            assert_eq!(probe.row_count(), 1);
        })
    });
    // Per-segment-only: probe every segment's inverted index (the paper's
    // "checking the index or bloom filter per segment", O(N) in segments).
    group.bench_function("per_segment_probe", |b| {
        let mut nk = next_key;
        b.iter(|| {
            let key = Value::Int(nk());
            let mut found = 0;
            for seg in &table_snap.segments {
                let ix = &seg.core.inverted[&0];
                if let Some(mut postings) = ix.lookup(&key).unwrap() {
                    found += postings.collect_remaining().unwrap().len();
                }
            }
            assert_eq!(found, 1);
        })
    });
    // Full scan with the index disabled (min/max can't help: ids interleave).
    group.bench_function("full_scan", |b| {
        let opts = ScanOptions { use_index: false, ..Default::default() };
        let mut nk = next_key;
        b.iter(|| {
            let f = Expr::eq(0, nk());
            let (batch, _) = scan(&table_snap, &[0], Some(&f), &opts).unwrap();
            assert_eq!(batch.rows(), 1);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
