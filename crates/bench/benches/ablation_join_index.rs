//! Ablation: the adaptive join index filter vs a plain hash join
//! (paper §5.1: "it runs much faster (with a small joined table) by
//! performing index probes instead of a table scan").

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_exec::{CmpOp, Expr};
use s2_query::{execute, ExecOptions, Plan};
use s2_wal::Log;

const FACT_ROWS: i64 = 200_000;
const DIM_ROWS: i64 = 2_000;

fn setup() -> Arc<Partition> {
    let p = Partition::new("b", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let fact = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("dim_id", DataType::Int64),
        ColumnDef::new("amount", DataType::Double),
    ])
    .unwrap();
    let t = p
        .create_table(
            "fact",
            fact,
            TableOptions::new()
                .with_unique("pk", vec![0])
                .with_index("by_dim", vec![1])
                .with_segment_rows(FACT_ROWS as usize),
        )
        .unwrap();
    let dim = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("class", DataType::Int64),
    ])
    .unwrap();
    let d = p.create_table("dim", dim, TableOptions::new().with_unique("pk", vec![0])).unwrap();

    for chunk in 0..(FACT_ROWS / 10_000) {
        let mut txn = p.begin();
        for i in 0..10_000 {
            let id = chunk * 10_000 + i;
            txn.insert(
                t,
                Row::new(vec![
                    Value::Int(id),
                    Value::Int(id % DIM_ROWS),
                    Value::Double((id % 97) as f64),
                ]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }
    let mut txn = p.begin();
    for i in 0..DIM_ROWS {
        txn.insert(d, Row::new(vec![Value::Int(i), Value::Int(i % 100)])).unwrap();
    }
    txn.commit().unwrap();
    p.flush_table(t, true).unwrap();
    p.flush_table(d, true).unwrap();
    while p.merge_table(t).unwrap() {}
    p.vacuum().unwrap();
    p
}

fn bench(c: &mut Criterion) {
    let p = setup();
    // Build side: ~20 dim rows of one class -> probe side via index.
    let plan = Plan::scan("fact", vec![0, 1, 2], None).join(
        Plan::scan("dim", vec![0], Some(Expr::cmp(1, CmpOp::Eq, 7i64))),
        vec![1],
        vec![0],
    );
    let expected = (FACT_ROWS / DIM_ROWS) * (DIM_ROWS / 100);

    let mut group = c.benchmark_group("small_build_join");
    group.sample_size(15);
    group.bench_function("join_index_filter", |b| {
        let opts = ExecOptions { join_index_threshold: 128, ..Default::default() };
        b.iter(|| {
            let snap = p.read_snapshot();
            let out = execute(&plan, &snap, &opts).unwrap();
            assert_eq!(out.rows() as i64, expected);
        })
    });
    group.bench_function("plain_hash_join", |b| {
        let opts = ExecOptions { join_index_threshold: 0, ..Default::default() };
        b.iter(|| {
            let snap = p.read_snapshot();
            let out = execute(&plan, &snap, &opts).unwrap();
            assert_eq!(out.rows() as i64, expected);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
