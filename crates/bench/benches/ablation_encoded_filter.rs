//! Ablation: encoded filters (predicates on compressed data) vs regular
//! filters (decode then evaluate), paper §5.2 / the BiPie result it cites.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{MemFileStore, Partition};
use s2_exec::{scan, Expr, ScanOptions};
use s2_wal::Log;

const ROWS: i64 = 200_000;

fn setup() -> (Arc<Partition>, u32) {
    let p = Partition::new("b", Arc::new(Log::in_memory()), Arc::new(MemFileStore::new()));
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("status", DataType::Str), // low cardinality -> dictionary
        ColumnDef::new("amount", DataType::Double),
    ])
    .unwrap();
    let opts = TableOptions::new().with_segment_rows(ROWS as usize);
    let t = p.create_table("t", schema, opts).unwrap();
    let statuses = ["shipped", "pending", "returned", "cancelled", "delivered"];
    for chunk in 0..(ROWS / 10_000) {
        let mut txn = p.begin();
        for i in 0..10_000 {
            let id = chunk * 10_000 + i;
            txn.insert(
                t,
                Row::new(vec![
                    Value::Int(id),
                    Value::str(statuses[(id % 5) as usize]),
                    Value::Double((id % 997) as f64),
                ]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }
    p.flush_table(t, true).unwrap();
    while p.merge_table(t).unwrap() {}
    p.vacuum().unwrap();
    (p, t)
}

fn bench(c: &mut Criterion) {
    let (p, t) = setup();
    let snap = p.read_snapshot();
    let ts = Arc::clone(snap.table(t).unwrap());
    let filter = Expr::eq(1, "returned");

    let mut group = c.benchmark_group("dictionary_filter");
    group.sample_size(20);
    group.bench_function("encoded", |b| {
        let opts = ScanOptions {
            use_encoded: true,
            use_index: false,
            adaptive_reorder: false,
            ..Default::default()
        };
        b.iter(|| {
            let (batch, stats) = scan(&ts, &[2], Some(&filter), &opts).unwrap();
            assert_eq!(batch.rows() as i64, ROWS / 5);
            assert!(stats.encoded_filters > 0);
        })
    });
    group.bench_function("regular", |b| {
        let opts = ScanOptions {
            use_encoded: false,
            use_index: false,
            adaptive_reorder: false,
            ..Default::default()
        };
        b.iter(|| {
            let (batch, stats) = scan(&ts, &[2], Some(&filter), &opts).unwrap();
            assert_eq!(batch.rows() as i64, ROWS / 5);
            assert_eq!(stats.encoded_filters, 0);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
