//! Ablation: deleted bit vectors vs tombstone merge-on-read (paper §4:
//! "S2DB represents deletes using a bit vector ... which is cheaper to apply
//! ... compared to merging all LSM tree levels").

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};
use s2_columnstore::{build_segment, SegmentReader};
use s2_common::schema::ColumnDef;
use s2_common::{BitVec, DataType, Row, Schema, Value};

const ROWS: i64 = 200_000;
const DELETED_EVERY: i64 = 10; // 10% deleted

fn setup() -> (SegmentReader, BitVec, HashSet<i64>) {
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("amount", DataType::Double),
    ])
    .unwrap();
    let rows: Vec<Row> = (0..ROWS)
        .map(|i| Row::new(vec![Value::Int(i), Value::Double((i % 1000) as f64)]))
        .collect();
    let (_, data) = build_segment(1, rows, &schema, &[0]).unwrap();
    let mut bits = BitVec::zeros(ROWS as usize);
    let mut tombstones = HashSet::new();
    for i in (0..ROWS).step_by(DELETED_EVERY as usize) {
        bits.set(i as usize);
        tombstones.insert(i);
    }
    (SegmentReader::new(data), bits, tombstones)
}

fn bench(c: &mut Criterion) {
    let (reader, bits, tombstones) = setup();
    let mut group = c.benchmark_group("scan_with_deletes");
    group.sample_size(20);

    // Unified-storage approach: apply the metadata bit vector as a selection,
    // then a straight vectorized sum over survivors.
    group.bench_function("deleted_bitvector", |b| {
        b.iter(|| {
            let sel: Vec<u32> = (0..ROWS as u32).filter(|&i| !bits.get(i as usize)).collect();
            let v = reader.column(1).unwrap().decode_vector(Some(&sel)).unwrap();
            let mut sum = 0.0;
            for i in 0..v.len() {
                sum += v.double_at(i);
            }
            assert!(sum > 0.0);
        })
    });

    // Tombstone merge-on-read: every row's key must be reconciled against
    // the tombstone set before its value may be used (the per-row overhead
    // common LSM implementations pay on analytical scans).
    group.bench_function("tombstone_merge", |b| {
        b.iter(|| {
            let keys = reader.column(0).unwrap().decode_vector(None).unwrap();
            let vals = reader.column(1).unwrap().decode_vector(None).unwrap();
            let mut sum = 0.0;
            for i in 0..vals.len() {
                if !tombstones.contains(&keys.int_at(i)) {
                    sum += vals.double_at(i);
                }
            }
            assert!(sum > 0.0);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
