//! Ablation: commit latency with S2DB's local-commit + asynchronous blob
//! upload vs the cloud-data-warehouse model that writes to blob storage
//! synchronously before a transaction is durable (paper §3.1 — the headline
//! separation-of-storage claim).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use s2_baseline::CdwEngine;
use s2_blob::{FaultyStore, MemoryStore, ObjectStore};
use s2_cluster::{Cluster, ClusterConfig, StorageConfig};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};

/// Simulated blob round trip. Real S3 put latencies are ~10-100 ms; even a
/// modest 5 ms makes the difference unmistakable.
const BLOB_LATENCY: Duration = Duration::from_millis(5);

fn schema() -> Schema {
    Schema::new(vec![ColumnDef::new("id", DataType::Int64), ColumnDef::new("v", DataType::Str)])
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_row_commit");
    group.sample_size(30);

    // S2DB: commit locally (replication ack path disabled: single node),
    // blob uploads happen in the background.
    {
        let blob: Arc<dyn ObjectStore> =
            Arc::new(FaultyStore::new(MemoryStore::new(), BLOB_LATENCY, Duration::ZERO));
        let cluster = Cluster::new(
            "b",
            ClusterConfig {
                partitions: 1,
                ha_replicas: 0,
                sync_replication: false,
                blob: Some(blob),
                cache_bytes: 64 << 20,
                storage: StorageConfig::default(),
                breaker: None,
            },
        )
        .unwrap();
        cluster
            .create_table("t", schema(), TableOptions::new().with_unique("pk", vec![0]))
            .unwrap();
        let mut id = 0i64;
        group.bench_function("s2db_local_commit_async_blob", |b| {
            b.iter(|| {
                id += 1;
                let mut txn = cluster.begin();
                txn.insert("t", Row::new(vec![Value::Int(id), Value::str("payload")])).unwrap();
                txn.commit().unwrap();
            })
        });
    }

    // CDW model: every commit is a synchronous blob put.
    {
        let blob: Arc<dyn ObjectStore> =
            Arc::new(FaultyStore::new(MemoryStore::new(), BLOB_LATENCY, Duration::ZERO));
        let engine = CdwEngine::new(blob);
        engine.create_table("t", schema()).unwrap();
        let mut id = 0i64;
        group.bench_function("cdw_commit_to_blob", |b| {
            b.iter(|| {
                id += 1;
                engine
                    .insert_row("t", Row::new(vec![Value::Int(id), Value::str("payload")]))
                    .unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
