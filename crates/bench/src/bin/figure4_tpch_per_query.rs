//! Reproduces **Figure 4: TPC-H query runtimes (lower is better)** — the
//! per-query runtime series for S2DB, CDW1 and CDW2 (the paper's figure
//! omits CDB, which did not finish), printed as a table plus ASCII bars.
//!
//! Knobs: `S2_SF` (default 0.01), `S2_WARM_RUNS` (default 2).
//! Flags: `--threads N` (scan pool size), `--json` (machine-readable
//! output), `--sql "<query>"` (ad-hoc SQL over the loaded TPC-H data).

use std::time::Duration;

use s2_bench::{bar, env_f64, env_u64, load_all_engines, print_table, run_tpch_comparison};

fn main() {
    s2_bench::apply_thread_flag();
    let json = s2_bench::json_enabled();
    let sf = env_f64("S2_SF", 0.01);
    if let Some(sql) = s2_bench::sql_flag() {
        let data = s2_workloads::tpch::generate(sf, 42);
        let cluster = s2_bench::bench_cluster(4);
        s2_workloads::tpch::load::load_cluster(&cluster, &data).expect("load tpch");
        let ctx = cluster.context().expect("context");
        s2_bench::run_adhoc_sql(&ctx, &sql);
        return;
    }
    let warm = env_u64("S2_WARM_RUNS", 2) as usize;
    if !json {
        println!("== Figure 4: TPC-H (sf {sf}) per-query runtimes, lower is better ==");
    }
    let data = s2_workloads::tpch::generate(sf, 42);
    let engines = load_all_engines(&data, 4).expect("load");
    // CDB is excluded from the figure, as in the paper; budget 0 skips it.
    let results = run_tpch_comparison(&engines, warm, Duration::ZERO);

    let ms = |d: Option<Duration>| d.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
    if json {
        let series: Vec<String> = results[..3]
            .iter()
            .map(|r| {
                let q: Vec<String> = r
                    .per_query
                    .iter()
                    .map(|d| s2_bench::json_f64(d.map(|d| d.as_secs_f64() * 1e3)))
                    .collect();
                format!("{{\"name\":\"{}\",\"query_ms\":[{}]}}", r.name, q.join(","))
            })
            .collect();
        println!(
            "{{\"bench\":\"figure4_tpch_per_query\",\"scale_factor\":{sf},\"threads\":{},\
             \"engines\":[{}]}}",
            s2_exec::effective_threads(0),
            series.join(",")
        );
        return;
    }
    let max_ms = results[..3]
        .iter()
        .flat_map(|r| r.per_query.iter().map(|d| ms(*d)))
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max);

    let mut rows = Vec::new();
    for q in 0..22 {
        let s2 = ms(results[0].per_query[q]);
        let c1 = ms(results[1].per_query[q]);
        let c2 = ms(results[2].per_query[q]);
        rows.push(vec![
            format!("Q{}", q + 1),
            format!("{s2:8.2}"),
            format!("{c1:8.2}"),
            format!("{c2:8.2}"),
            format!("S2 {:<20} C1 {:<20}", bar(s2, max_ms, 18), bar(c1, max_ms, 18)),
        ]);
    }
    print_table(&["Query", "S2DB ms", "CDW1 ms", "CDW2 ms", "profile"], &rows);

    let wins = (0..22)
        .filter(|&q| {
            let s2 = ms(results[0].per_query[q]);
            s2.is_finite() && s2 <= ms(results[1].per_query[q]).min(ms(results[2].per_query[q]))
        })
        .count();
    println!("\nS2DB fastest or tied on {wins}/22 queries (paper: competitive across the board)");
    s2_bench::report_metrics();
}
