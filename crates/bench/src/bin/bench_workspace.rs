//! Workspace elasticity baseline (paper §3.1–§3.2): how fast can read-only
//! workspaces be provisioned as the fleet grows, and how does crash
//! recovery scale with WAL length under the parallel replay path?
//!
//! Two sweeps:
//!
//! - **Provisioning vs fleet size**: a cluster with separated storage is
//!   loaded and synced to blob, then fleets of 1/2/4/8 workspaces are
//!   provisioned concurrently; total and per-workspace wall time reported.
//! - **Recovery vs WAL length**: one partition, several tables, fixed data
//!   size; update churn multiplies the WAL length (1×/2×/4×) without
//!   growing the data. Serial and parallel `recover_with` are timed over
//!   the same logs. `sublinear_ok` holds when 4× the churn costs the
//!   parallel path less than 3.5× the 1× recovery time — replay work per
//!   byte must not grow with log length.
//!
//! `--json > BENCH_workspace.json` produces the committed baseline guarded
//! by `scripts/bench_gate.sh`. Knobs: `S2_RUNS` (timed runs per config,
//! default 3), `S2_WS_ROWS` (rows per table, default 400), `S2_WS_TABLES`
//! (tables in the recovery sweep, default 8).

use std::sync::Arc;
use std::time::{Duration, Instant};

use s2_bench::env_u64;
use s2_blob::{MemoryStore, ObjectStore};
use s2_cluster::{Cluster, ClusterConfig, StorageConfig, WorkspaceManager, WorkspaceManagerConfig};
use s2_common::schema::ColumnDef;
use s2_common::{DataType, Row, Schema, TableOptions, Value};
use s2_core::{DataFileStore, MemFileStore, Partition};
use s2_wal::Log;

const FLEET_SIZES: [usize; 4] = [1, 2, 4, 8];
const CHURN_MULTS: [u64; 3] = [1, 2, 4];

fn kv_schema() -> Schema {
    Schema::new(vec![ColumnDef::new("k", DataType::Int64), ColumnDef::new("v", DataType::Int64)])
        .unwrap()
}

fn kv_options() -> TableOptions {
    TableOptions::new()
        .with_sort_key(vec![0])
        .with_unique("pk", vec![0])
        .with_flush_threshold(256)
        .with_segment_rows(512)
}

// ---------------------------------------------------------------- provisioning

struct ProvisionPoint {
    workspaces: usize,
    total_ms: f64,
    mean_ms: f64,
}

fn provisioning_sweep(rows: i64) -> Vec<ProvisionPoint> {
    let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cluster = Cluster::new(
        "bench_ws",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 0,
            sync_replication: true,
            blob: Some(Arc::clone(&blob)),
            cache_bytes: 64 * 1024 * 1024,
            storage: StorageConfig {
                tick: Duration::from_millis(2),
                snapshot_interval_bytes: 64 * 1024,
                ..Default::default()
            },
            breaker: None,
        },
    )
    .unwrap();
    cluster.create_table("t", kv_schema(), kv_options().with_shard_key(vec![0])).unwrap();
    let mut txn = cluster.begin();
    for k in 0..rows {
        txn.insert("t", Row::new(vec![Value::Int(k), Value::Int(k % 97)])).unwrap();
    }
    txn.commit().unwrap();
    cluster.flush_table("t").unwrap();
    cluster.sync_to_blob().unwrap();

    let mgr = WorkspaceManager::new(&cluster, WorkspaceManagerConfig::default()).unwrap();
    FLEET_SIZES
        .iter()
        .map(|&n| {
            let names: Vec<String> = (0..n).map(|i| format!("fleet{n}_{i}")).collect();
            let t0 = Instant::now();
            let results = mgr.provision_many(&names);
            let total_ms = t0.elapsed().as_secs_f64() * 1e3;
            for (name, res) in &results {
                assert!(res.is_ok(), "provision {name} failed: {:?}", res.as_ref().err());
            }
            assert!(mgr.catch_up_all(Duration::from_secs(30)));
            mgr.detach_all();
            ProvisionPoint { workspaces: n, total_ms, mean_ms: total_ms / n as f64 }
        })
        .collect()
}

// -------------------------------------------------------------------- recovery

struct RecoveryPoint {
    churn: u64,
    wal_bytes: u64,
    serial_ms: f64,
    parallel_ms: f64,
}

/// Fixed data size, churn-scaled WAL: `tables × rows` inserts once, then
/// `churn × rows` update ops spread across the tables with periodic
/// flushes (updates against flushed segments become §4.2 move records).
fn build_log(tables: usize, rows: i64, churn: u64) -> (Vec<u8>, Arc<MemFileStore>) {
    let files = Arc::new(MemFileStore::new());
    let p = Partition::new(
        "bench_rec",
        Arc::new(Log::in_memory()),
        Arc::clone(&files) as Arc<dyn DataFileStore>,
    );
    let tids: Vec<u32> = (0..tables)
        .map(|i| p.create_table(format!("t{i}"), kv_schema(), kv_options()).unwrap())
        .collect();
    for &t in &tids {
        let mut txn = p.begin();
        for k in 0..rows {
            txn.insert(t, Row::new(vec![Value::Int(k), Value::Int(0)])).unwrap();
        }
        txn.commit().unwrap();
        p.flush_table(t, true).unwrap();
    }
    let total_updates = churn * rows as u64 * tables as u64;
    let mut txn = p.begin();
    for i in 0..total_updates {
        let t = tids[(i as usize) % tids.len()];
        let k = (i as i64 * 31) % rows;
        txn.update_unique(t, &[Value::Int(k)], Row::new(vec![Value::Int(k), Value::Int(i as i64)]))
            .unwrap();
        if i % 64 == 63 {
            let (_ts, _lp) = txn.commit().unwrap();
            txn = p.begin();
        }
    }
    txn.commit().unwrap();
    p.log.sync().unwrap();
    let bytes = p.log.read_range(0, p.log.end_lp()).unwrap();
    (bytes, files)
}

fn time_recover(bytes: &[u8], files: &Arc<MemFileStore>, parallel: bool, runs: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let log = Log::in_memory();
        log.append_raw(bytes);
        let t0 = Instant::now();
        let p = Partition::recover_with(
            "bench_rec",
            Arc::new(log),
            Arc::clone(files) as Arc<dyn DataFileStore>,
            None,
            None,
            parallel,
        )
        .unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        drop(p);
    }
    best
}

fn recovery_sweep(tables: usize, rows: i64, runs: usize) -> Vec<RecoveryPoint> {
    CHURN_MULTS
        .iter()
        .map(|&churn| {
            let (bytes, files) = build_log(tables, rows, churn);
            let wal_bytes = bytes.len() as u64;
            let serial_ms = time_recover(&bytes, &files, false, runs);
            let parallel_ms = time_recover(&bytes, &files, true, runs);
            RecoveryPoint { churn, wal_bytes, serial_ms, parallel_ms }
        })
        .collect()
}

fn main() {
    let json = s2_bench::json_enabled();
    let runs = env_u64("S2_RUNS", 3) as usize;
    let rows = env_u64("S2_WS_ROWS", 400) as i64;
    let tables = env_u64("S2_WS_TABLES", 8) as usize;
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    if !json {
        println!(
            "== Workspace elasticity baseline ({tables} tables x {rows} rows, \
             {runs} runs/config, host parallelism {host}) =="
        );
    }

    let provisioning = provisioning_sweep(rows * tables as i64);
    let recovery = recovery_sweep(tables, rows, runs);

    let base = recovery.first().map_or(1.0, |r| r.parallel_ms);
    let worst = recovery.last().map_or(1.0, |r| r.parallel_ms);
    let ratio_4x = if base > 0.0 { worst / base } else { 1.0 };
    let sublinear_ok = ratio_4x < 3.5;

    if json {
        let prov: Vec<String> = provisioning
            .iter()
            .map(|p| {
                format!(
                    "{{\"workspaces\":{},\"total_ms\":{:.3},\"mean_ms\":{:.3}}}",
                    p.workspaces, p.total_ms, p.mean_ms
                )
            })
            .collect();
        let rec: Vec<String> = recovery
            .iter()
            .map(|r| {
                format!(
                    "{{\"churn\":{},\"wal_bytes\":{},\"serial_ms\":{:.3},\"parallel_ms\":{:.3}}}",
                    r.churn, r.wal_bytes, r.serial_ms, r.parallel_ms
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"bench_workspace\",\"host_parallelism\":{host},\"tables\":{tables},\
             \"rows_per_table\":{rows},\"runs_per_config\":{runs},\
             \"provisioning\":[{}],\"recovery\":[{}],\
             \"recovery_ratio_4x\":{ratio_4x:.3},\"sublinear_ok\":{sublinear_ok}}}",
            prov.join(","),
            rec.join(",")
        );
        return;
    }

    println!("\nprovisioning (concurrent fleet):");
    for p in &provisioning {
        println!(
            "  {:>2} workspaces: {:8.2} ms total, {:8.2} ms/workspace",
            p.workspaces, p.total_ms, p.mean_ms
        );
    }
    println!("\nrecovery (fixed data, churn-scaled WAL):");
    for r in &recovery {
        println!(
            "  churn {}x: {:>9} WAL bytes, serial {:8.2} ms, parallel {:8.2} ms",
            r.churn, r.wal_bytes, r.serial_ms, r.parallel_ms
        );
    }
    println!(
        "\nparallel recovery 4x/1x ratio: {ratio_4x:.2} (sublinear_ok: {sublinear_ok}, \
         host parallelism {host})"
    );
}
