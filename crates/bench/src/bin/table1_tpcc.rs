//! Reproduces **Table 1: TPC-C results** — tpmC and %-of-max for the CDB
//! model and S2DB at one warehouse count, plus S2DB at 4x warehouses to show
//! the paper's near-linear scaling row (the paper used 1,000 and 10,000
//! warehouses on 32 and 256 vCPUs; scale here is set by `S2_WAREHOUSES`).
//!
//! Both engines run the full five-transaction mix with spec keying/think
//! times divided by `S2_WAIT_SCALE`, so the per-warehouse
//! ceiling semantics (12.86 tpmC/warehouse max) are preserved: a result near
//! 100% means the engine keeps up with the terminals, exactly the paper's
//! finding for both S2DB and CDB.
//!
//! Knobs: `S2_WAREHOUSES` (default 2), `S2_DURATION_SECS` (default 10),
//! `S2_WAIT_SCALE` (default 300; on a single-core host higher values saturate the CPU before the terminals do).
//! Flags: `--threads N` (scan pool size), `--json` (machine-readable output).

use std::sync::Arc;
use std::time::Duration;

use s2_baseline::CdbEngine;
use s2_bench::{bench_cluster, env_f64, env_u64, print_table};
use s2_workloads::tpcc::backend::{CdbBackend, ClusterBackend, TpccBackend};
use s2_workloads::tpcc::driver::{run, DriverConfig, MAX_TPMC_PER_WAREHOUSE};
use s2_workloads::tpcc::TpccScale;

struct RunResult {
    label: String,
    warehouses: i64,
    tpmc: f64,
    pct_of_max: f64,
    errors: u64,
}

fn one_run(
    label: &str,
    backend: Arc<dyn TpccBackend>,
    scale: TpccScale,
    wait_scale: f64,
    duration: Duration,
) -> RunResult {
    let config =
        DriverConfig { scale, terminals_per_warehouse: 10, wait_scale, duration, seed: 42 };
    let result = run(backend, &config);
    RunResult {
        label: label.to_string(),
        warehouses: scale.warehouses,
        tpmc: result.tpmc(wait_scale),
        pct_of_max: result.pct_of_max(&config),
        errors: result.errors,
    }
}

fn main() {
    s2_bench::apply_thread_flag();
    let json = s2_bench::json_enabled();
    let w = env_u64("S2_WAREHOUSES", 2) as i64;
    let duration = Duration::from_secs(env_u64("S2_DURATION_SECS", 10));
    let wait_scale = env_f64("S2_WAIT_SCALE", 300.0);
    if !json {
        println!(
            "== Table 1: TPC-C results (ceiling {:.2} tpmC/warehouse; waits / {wait_scale}) ==",
            MAX_TPMC_PER_WAREHOUSE
        );
    }

    let mut rows = Vec::new();

    // CDB @ W warehouses.
    {
        let scale = TpccScale::bench(w);
        let engine = Arc::new(CdbEngine::new());
        s2_workloads::tpcc::backend::load_cdb(&engine, &scale, 7).expect("load cdb");
        let backend: Arc<dyn TpccBackend> = Arc::new(CdbBackend { engine, scale });
        rows.push(one_run("CDB", backend, scale, wait_scale, duration));
    }
    // S2DB @ W warehouses.
    {
        let scale = TpccScale::bench(w);
        let cluster = bench_cluster(4);
        s2_workloads::tpcc::backend::load_cluster(&cluster, &scale, 7).expect("load s2");
        let backend: Arc<dyn TpccBackend> = Arc::new(ClusterBackend::new(cluster, scale));
        rows.push(one_run("S2DB", backend, scale, wait_scale, duration));
    }
    // S2DB @ 4x warehouses (the paper's 10x row, scaled).
    {
        let scale = TpccScale::bench(w * 4);
        let cluster = bench_cluster(8);
        s2_workloads::tpcc::backend::load_cluster(&cluster, &scale, 7).expect("load s2 big");
        let backend: Arc<dyn TpccBackend> = Arc::new(ClusterBackend::new(cluster, scale));
        rows.push(one_run("S2DB", backend, scale, wait_scale, duration));
    }

    if json {
        let runs: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"product\":\"{}\",\"warehouses\":{},\"tpmc\":{:.1},\
                     \"pct_of_max\":{:.1},\"errors\":{}}}",
                    r.label, r.warehouses, r.tpmc, r.pct_of_max, r.errors
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"table1_tpcc\",\"threads\":{},\"runs\":[{}]}}",
            s2_exec::effective_threads(0),
            runs.join(",")
        );
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}", r.warehouses),
                format!("{:.1}", r.tpmc),
                format!("{:.1}%", r.pct_of_max),
                format!("{}", r.errors),
            ]
        })
        .collect();
    print_table(
        &["Product", "Size (warehouses)", "Throughput (tpmC)", "Throughput (% of max)", "errors"],
        &cells,
    );
    println!(
        "\npaper shape check: both engines near the ceiling; S2DB scales ~linearly with warehouses"
    );
    s2_bench::report_metrics();
}
