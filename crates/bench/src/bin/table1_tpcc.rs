//! Reproduces **Table 1: TPC-C results** — tpmC and %-of-max for the CDB
//! model and S2DB at one warehouse count, plus S2DB at 4x warehouses to show
//! the paper's near-linear scaling row (the paper used 1,000 and 10,000
//! warehouses on 32 and 256 vCPUs; scale here is set by `S2_WAREHOUSES`).
//!
//! Both engines run the full five-transaction mix with spec keying/think
//! times divided by `S2_WAIT_SCALE`, so the per-warehouse
//! ceiling semantics (12.86 tpmC/warehouse max) are preserved: a result near
//! 100% means the engine keeps up with the terminals, exactly the paper's
//! finding for both S2DB and CDB.
//!
//! Knobs: `S2_WAREHOUSES` (default 2), `S2_DURATION_SECS` (default 10),
//! `S2_WAIT_SCALE` (default 300; on a single-core host higher values saturate the CPU before the terminals do).
//! Flags: `--threads N` (scan pool size), `--json` (machine-readable output).
//!
//! `--clients N[,M,...]` switches to the contended group-commit mode: for
//! each client count, a fresh sync-replicated cluster (1 HA replica) runs
//! the full mix with no think time, reporting commit latency percentiles
//! (`wal.commit.latency_us`: full enqueue→durable span) and fsyncs per
//! commit — the group-commit pipeline's amortization curve. Output goes to
//! stdout as `{"bench":"tpcc_mt",...}` JSON with `--json`.

use std::sync::Arc;
use std::time::Duration;

use s2_baseline::CdbEngine;
use s2_bench::{bench_cluster, cli_value, env_f64, env_u64, print_table};
use s2_cluster::{Cluster, ClusterConfig};
use s2_workloads::tpcc::backend::{CdbBackend, ClusterBackend, TpccBackend};
use s2_workloads::tpcc::driver::{run, DriverConfig, MAX_TPMC_PER_WAREHOUSE};
use s2_workloads::tpcc::TpccScale;

struct RunResult {
    label: String,
    warehouses: i64,
    tpmc: f64,
    pct_of_max: f64,
    errors: u64,
}

fn one_run(
    label: &str,
    backend: Arc<dyn TpccBackend>,
    scale: TpccScale,
    wait_scale: f64,
    duration: Duration,
) -> RunResult {
    let config =
        DriverConfig { scale, terminals_per_warehouse: 10, wait_scale, duration, seed: 42 };
    let result = run(backend, &config);
    RunResult {
        label: label.to_string(),
        warehouses: scale.warehouses,
        tpmc: result.tpmc(wait_scale),
        pct_of_max: result.pct_of_max(&config),
        errors: result.errors,
    }
}

struct MtRun {
    clients: usize,
    tpm: f64,
    p50_us: u64,
    p99_us: u64,
    commits: u64,
    fsyncs: u64,
}

/// One contended run: `clients` terminals on one warehouse, no think time,
/// against a fresh sync-replicated cluster with the group pipeline on.
fn contended_run(clients: usize, duration: Duration, flush_us: u64) -> MtRun {
    let scale =
        TpccScale { warehouses: 1, districts: 10, customers: 100, items: 500, preload_orders: 20 };
    let cluster = Cluster::new(
        "tpcc_mt",
        ClusterConfig {
            partitions: 2,
            ha_replicas: 1,
            sync_replication: true,
            blob: None,
            ..Default::default()
        },
    )
    .expect("cluster");
    s2_workloads::tpcc::backend::load_cluster(&cluster, &scale, 7).expect("load");
    cluster.set_group_commit(true);
    cluster.set_group_flush_window_us(flush_us);

    let latency = s2_obs::global().histogram("wal.commit.latency_us");
    latency.reset();
    let commits0 = s2_obs::global().counter("core.txn.commits").get();
    let fsyncs0 = s2_obs::global().counter("wal.fsync.calls").get();

    let backend: Arc<dyn TpccBackend> = Arc::new(ClusterBackend::new(cluster, scale));
    let config = DriverConfig {
        scale,
        terminals_per_warehouse: clients,
        wait_scale: f64::INFINITY,
        duration,
        seed: 42,
    };
    let result = run(backend, &config);

    let commits = s2_obs::global().counter("core.txn.commits").get() - commits0;
    let fsyncs = s2_obs::global().counter("wal.fsync.calls").get() - fsyncs0;
    let summary = latency.summary();
    MtRun {
        clients,
        tpm: result.raw_tpm(),
        p50_us: summary.p50,
        p99_us: summary.p99,
        commits,
        fsyncs,
    }
}

fn contended_mode(spec: &str, json: bool) {
    let duration = Duration::from_secs(env_u64("S2_DURATION_SECS", 3));
    let flush_us = env_u64("S2_GROUP_FLUSH_US", 200);
    let counts: Vec<usize> =
        spec.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n > 0).collect();
    if counts.is_empty() {
        eprintln!("--clients needs a comma-separated list of positive integers");
        std::process::exit(2);
    }
    if !json {
        println!(
            "== Contended TPC-C: group-commit pipeline, 1 warehouse, sync replication \
             ({duration:?}/run, flush window {flush_us}us) =="
        );
    }
    let runs: Vec<MtRun> = counts.iter().map(|&n| contended_run(n, duration, flush_us)).collect();
    if json {
        let items: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"clients\":{},\"tpm\":{:.1},\"p50_us\":{},\"p99_us\":{},\
                     \"commits\":{},\"fsyncs\":{},\"fsyncs_per_commit\":{:.3}}}",
                    r.clients,
                    r.tpm,
                    r.p50_us,
                    r.p99_us,
                    r.commits,
                    r.fsyncs,
                    r.fsyncs as f64 / r.commits.max(1) as f64
                )
            })
            .collect();
        println!("{{\"bench\":\"tpcc_mt\",\"runs\":[{}]}}", items.join(","));
        return;
    }
    let cells: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.clients),
                format!("{:.0}", r.tpm),
                format!("{}", r.p50_us),
                format!("{}", r.p99_us),
                format!("{}", r.commits),
                format!("{}", r.fsyncs),
                format!("{:.3}", r.fsyncs as f64 / r.commits.max(1) as f64),
            ]
        })
        .collect();
    print_table(
        &["Clients", "new-orders/min", "p50 us", "p99 us", "commits", "fsyncs", "fsyncs/commit"],
        &cells,
    );
    println!("\nshape check: fsyncs/commit falls below 1 as clients grow (batched group fsync)");
}

fn main() {
    s2_bench::apply_thread_flag();
    let json = s2_bench::json_enabled();
    if let Some(spec) = cli_value("--clients") {
        contended_mode(&spec, json);
        return;
    }
    let w = env_u64("S2_WAREHOUSES", 2) as i64;
    let duration = Duration::from_secs(env_u64("S2_DURATION_SECS", 10));
    let wait_scale = env_f64("S2_WAIT_SCALE", 300.0);
    if !json {
        println!(
            "== Table 1: TPC-C results (ceiling {:.2} tpmC/warehouse; waits / {wait_scale}) ==",
            MAX_TPMC_PER_WAREHOUSE
        );
    }

    let mut rows = Vec::new();

    // CDB @ W warehouses.
    {
        let scale = TpccScale::bench(w);
        let engine = Arc::new(CdbEngine::new());
        s2_workloads::tpcc::backend::load_cdb(&engine, &scale, 7).expect("load cdb");
        let backend: Arc<dyn TpccBackend> = Arc::new(CdbBackend { engine, scale });
        rows.push(one_run("CDB", backend, scale, wait_scale, duration));
    }
    // S2DB @ W warehouses.
    {
        let scale = TpccScale::bench(w);
        let cluster = bench_cluster(4);
        s2_workloads::tpcc::backend::load_cluster(&cluster, &scale, 7).expect("load s2");
        let backend: Arc<dyn TpccBackend> = Arc::new(ClusterBackend::new(cluster, scale));
        rows.push(one_run("S2DB", backend, scale, wait_scale, duration));
    }
    // S2DB @ 4x warehouses (the paper's 10x row, scaled).
    {
        let scale = TpccScale::bench(w * 4);
        let cluster = bench_cluster(8);
        s2_workloads::tpcc::backend::load_cluster(&cluster, &scale, 7).expect("load s2 big");
        let backend: Arc<dyn TpccBackend> = Arc::new(ClusterBackend::new(cluster, scale));
        rows.push(one_run("S2DB", backend, scale, wait_scale, duration));
    }

    if json {
        let runs: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"product\":\"{}\",\"warehouses\":{},\"tpmc\":{:.1},\
                     \"pct_of_max\":{:.1},\"errors\":{}}}",
                    r.label, r.warehouses, r.tpmc, r.pct_of_max, r.errors
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"table1_tpcc\",\"threads\":{},\"runs\":[{}]}}",
            s2_exec::effective_threads(0),
            runs.join(",")
        );
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}", r.warehouses),
                format!("{:.1}", r.tpmc),
                format!("{:.1}%", r.pct_of_max),
                format!("{}", r.errors),
            ]
        })
        .collect();
    print_table(
        &["Product", "Size (warehouses)", "Throughput (tpmC)", "Throughput (% of max)", "errors"],
        &cells,
    );
    println!(
        "\npaper shape check: both engines near the ceiling; S2DB scales ~linearly with warehouses"
    );
    s2_bench::report_metrics();
}
