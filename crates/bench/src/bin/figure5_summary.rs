//! Reproduces **Figure 5: Summary of TPC-C and TPC-H throughputs (higher is
//! better)** — the bar-chart summary combining Table 1 (tpmC per engine)
//! and Table 2 (TPC-H QPS per engine), as ASCII bars.
//!
//! Knobs: `S2_SF` (default 0.005), `S2_WAREHOUSES` (default 2),
//! `S2_DURATION_SECS` (default 8), `S2_WAIT_SCALE` (default 300; on a single-core host higher values saturate the CPU before the terminals do).
//! Flags: `--threads N` (scan pool size), `--json` (machine-readable output).

use std::sync::Arc;
use std::time::Duration;

use s2_baseline::CdbEngine;
use s2_bench::{bar, bench_cluster, env_f64, env_u64, load_all_engines, run_tpch_comparison};
use s2_workloads::tpcc::backend::{CdbBackend, ClusterBackend, TpccBackend};
use s2_workloads::tpcc::driver::{run as run_tpcc, DriverConfig};
use s2_workloads::tpcc::TpccScale;

fn main() {
    s2_bench::apply_thread_flag();
    let json = s2_bench::json_enabled();
    let sf = env_f64("S2_SF", 0.005);
    let w = env_u64("S2_WAREHOUSES", 2) as i64;
    let duration = Duration::from_secs(env_u64("S2_DURATION_SECS", 8));
    let wait_scale = env_f64("S2_WAIT_SCALE", 300.0);

    if !json {
        println!("== Figure 5: Summary of TPC-C and TPC-H throughputs (higher is better) ==\n");
    }

    // TPC-C side: S2DB and CDB (CDWs cannot run it).
    let scale = TpccScale::bench(w);
    let tpmc_s2 = {
        let cluster = bench_cluster(4);
        s2_workloads::tpcc::backend::load_cluster(&cluster, &scale, 7).expect("load");
        let backend: Arc<dyn TpccBackend> = Arc::new(ClusterBackend::new(cluster, scale));
        let cfg =
            DriverConfig { scale, terminals_per_warehouse: 10, wait_scale, duration, seed: 42 };
        run_tpcc(backend, &cfg).tpmc(wait_scale)
    };
    let tpmc_cdb = {
        let engine = Arc::new(CdbEngine::new());
        s2_workloads::tpcc::backend::load_cdb(&engine, &scale, 7).expect("load");
        let backend: Arc<dyn TpccBackend> = Arc::new(CdbBackend { engine, scale });
        let cfg =
            DriverConfig { scale, terminals_per_warehouse: 10, wait_scale, duration, seed: 42 };
        run_tpcc(backend, &cfg).tpmc(wait_scale)
    };

    // TPC-H side: all four engines.
    let data = s2_workloads::tpch::generate(sf, 42);
    let engines = load_all_engines(&data, 4).expect("load");
    let tpch = run_tpch_comparison(&engines, 2, Duration::from_secs(30));

    if json {
        let engines_json: Vec<String> = tpch
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"timed_out\":{},\"qps\":{}}}",
                    r.name,
                    r.timed_out,
                    s2_bench::json_f64((!r.timed_out).then(|| r.qps())),
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"figure5_summary\",\"threads\":{},\"tpmc\":{{\"S2DB\":{tpmc_s2:.1},\
             \"CDB\":{tpmc_cdb:.1}}},\"tpch\":[{}]}}",
            s2_exec::effective_threads(0),
            engines_json.join(",")
        );
        return;
    }
    println!("TPC-C throughput (tpmC, spec-equivalent):");
    let max_tpmc = tpmc_s2.max(tpmc_cdb);
    println!("  S2DB  {:>8.1}  {}", tpmc_s2, bar(tpmc_s2, max_tpmc, 40));
    println!("  CDB   {:>8.1}  {}", tpmc_cdb, bar(tpmc_cdb, max_tpmc, 40));
    println!("  CDW1      n/a  (cannot run TPC-C: no unique keys / row locks)");
    println!("  CDW2      n/a  (cannot run TPC-C: no unique keys / row locks)");

    println!("\nTPC-H throughput (QPS, single stream):");
    let max_qps = tpch.iter().map(|r| r.qps()).fold(0.0f64, f64::max);
    for r in &tpch {
        if r.timed_out {
            println!("  {:<5} {:>8}  (did not finish)", r.name, "DNF");
        } else {
            println!("  {:<5} {:>8.3}  {}", r.name, r.qps(), bar(r.qps(), max_qps, 40));
        }
    }
    println!(
        "\npaper shape check: only S2DB posts strong bars on BOTH sides — the HTAP claim in one figure"
    );
    s2_bench::report_metrics();
}
