//! Reproduces **Table 3: CH-BenCHmark results** — the five mixed-workload
//! configurations: transaction workers (TWs, a TPC-C mix at saturation) and
//! analytic workers (AWs, TPC-H-style queries) over the same tables,
//! sharing one workspace or isolated on a read-only workspace, with blob
//! storage on or off.
//!
//! Knobs: `S2_WAREHOUSES` (default 2), `S2_TW` (default 8), `S2_AW`
//! (default 2), `S2_DURATION_SECS` (default 5; paper ran 20 minutes).
//! Flags: `--threads N` (scan pool size), `--json` (machine-readable
//! output), `--sql "<query>"` (ad-hoc SQL over the loaded TPC-C data).

use std::sync::Arc;
use std::time::Duration;

use s2_bench::{env_u64, print_table};
use s2_blob::{MemoryStore, ObjectStore};
use s2_cluster::{Cluster, ClusterConfig, StorageConfig, Workspace};
use s2_query::ExecOptions;
use s2_workloads::ch;
use s2_workloads::tpcc::backend::{load_cluster, ClusterBackend, TpccBackend};
use s2_workloads::tpcc::driver::{run as run_tpcc, DriverConfig};
use s2_workloads::tpcc::TpccScale;

struct CaseResult {
    label: String,
    vcpu: String,
    tpmc: Option<f64>,
    qps: Option<f64>,
    lag: Option<u64>,
}

fn new_cluster(blob: Option<Arc<dyn ObjectStore>>, scale: &TpccScale, seed: u64) -> Arc<Cluster> {
    let cluster = Cluster::new(
        "ch",
        ClusterConfig {
            partitions: 2, // "a single writable workspace with 2 leaves in it"
            ha_replicas: 0,
            sync_replication: false,
            blob,
            cache_bytes: 512 * 1024 * 1024,
            storage: StorageConfig {
                tick: Duration::from_millis(10),
                snapshot_interval_bytes: 1 << 20,
                ..Default::default()
            },
            breaker: None,
        },
    )
    .expect("cluster");
    load_cluster(&cluster, scale, seed).expect("load tpcc");
    cluster
}

fn tw_config(scale: TpccScale, tws: usize, duration: Duration) -> DriverConfig {
    DriverConfig {
        scale,
        // TWs are saturation workers, not spec terminals: no waits.
        terminals_per_warehouse: tws.div_ceil(scale.warehouses as usize),
        wait_scale: f64::INFINITY,
        duration,
        seed: 42,
    }
}

fn main() {
    s2_bench::apply_thread_flag();
    let json = s2_bench::json_enabled();
    let w = env_u64("S2_WAREHOUSES", 2) as i64;
    let tws = env_u64("S2_TW", 8) as usize;
    let aws = env_u64("S2_AW", 2) as usize;
    let duration = Duration::from_secs(env_u64("S2_DURATION_SECS", 5));
    let scale = TpccScale::bench(w);
    if let Some(sql) = s2_bench::sql_flag() {
        let cluster = new_cluster(None, &scale, 7);
        let ctx = cluster.context().expect("context");
        s2_bench::run_adhoc_sql(&ctx, &sql);
        return;
    }
    if !json {
        println!(
            "== Table 3: CH-BenCHmark ({w} warehouses, {tws} TWs, {aws} AWs, {duration:?} runs) =="
        );
        if std::thread::available_parallelism().map_or(1, |n| n.get()) == 1 {
            println!(
                "NOTE: single-core host — workspace isolation (cases 4/5) cannot add compute,
             so TW throughput will not recover to case 1 as it does on multi-core hosts;
             the lock/snapshot isolation effect on AW QPS is still visible."
            );
        }
    }
    let mut results: Vec<CaseResult> = Vec::new();

    // Case 1: TWs only, shared workspace.
    {
        let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let cluster = new_cluster(Some(blob), &scale, 7);
        let backend: Arc<dyn TpccBackend> =
            Arc::new(ClusterBackend::new(Arc::clone(&cluster), scale));
        let r = run_tpcc(backend, &tw_config(scale, tws, duration));
        results.push(CaseResult {
            label: format!("1: {tws} TWs and 0 AWs"),
            vcpu: "16".into(),
            tpmc: Some(r.raw_tpm()),
            qps: None,
            lag: None,
        });
    }

    // Case 2: AWs only, shared workspace.
    {
        let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let cluster = new_cluster(Some(blob), &scale, 7);
        let opts = ExecOptions::default();
        let a = ch::run_analytics(|p| cluster.execute(p, &opts), aws, duration);
        results.push(CaseResult {
            label: format!("2: 0 TWs and {aws} AWs"),
            vcpu: "16".into(),
            tpmc: None,
            qps: Some(a.qps()),
            lag: None,
        });
    }

    // Case 3: TWs and AWs sharing one workspace.
    {
        let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let cluster = new_cluster(Some(blob), &scale, 7);
        let backend: Arc<dyn TpccBackend> =
            Arc::new(ClusterBackend::new(Arc::clone(&cluster), scale));
        let opts = ExecOptions::default();
        let c2 = Arc::clone(&cluster);
        let analytics =
            std::thread::spawn(move || ch::run_analytics(|p| c2.execute(p, &opts), aws, duration));
        let r = run_tpcc(backend, &tw_config(scale, tws, duration));
        let a = analytics.join().expect("analytics thread");
        results.push(CaseResult {
            label: format!("3: {tws} TWs and {aws} AWs sharing one workspace"),
            vcpu: "16".into(),
            tpmc: Some(r.raw_tpm()),
            qps: Some(a.qps()),
            lag: None,
        });
    }

    // Case 4: TWs on the primary, AWs on a read-only workspace (blob on).
    {
        let blob: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let cluster = new_cluster(Some(Arc::clone(&blob)), &scale, 7);
        cluster.sync_to_blob().expect("seed blob");
        let ws = Workspace::provision("analytics", &cluster, &blob, 512 * 1024 * 1024)
            .expect("workspace");
        ws.catch_up(Duration::from_secs(30));
        let backend: Arc<dyn TpccBackend> =
            Arc::new(ClusterBackend::new(Arc::clone(&cluster), scale));
        let opts = ExecOptions::default();
        let ws = Arc::new(ws);
        let ws2 = Arc::clone(&ws);
        let analytics =
            std::thread::spawn(move || ch::run_analytics(|p| ws2.execute(p, &opts), aws, duration));
        let r = run_tpcc(backend, &tw_config(scale, tws, duration));
        let a = analytics.join().expect("analytics thread");
        let lag = ws.max_lag_bytes();
        results.push(CaseResult {
            label: format!("4: {tws} TWs and {aws} AWs each in own workspace"),
            vcpu: "32".into(),
            tpmc: Some(r.raw_tpm()),
            qps: Some(a.qps()),
            lag: Some(lag),
        });
    }

    // Case 5: as case 4 but without blob storage.
    {
        let cluster = new_cluster(None, &scale, 7);
        let ws = Workspace::attach_local("analytics", &cluster).expect("workspace");
        ws.catch_up(Duration::from_secs(60));
        let backend: Arc<dyn TpccBackend> =
            Arc::new(ClusterBackend::new(Arc::clone(&cluster), scale));
        let opts = ExecOptions::default();
        let ws = Arc::new(ws);
        let ws2 = Arc::clone(&ws);
        let analytics =
            std::thread::spawn(move || ch::run_analytics(|p| ws2.execute(p, &opts), aws, duration));
        let r = run_tpcc(backend, &tw_config(scale, tws, duration));
        let a = analytics.join().expect("analytics thread");
        results.push(CaseResult {
            label: format!("5: {tws} TWs and {aws} AWs each in own workspace, no blob store"),
            vcpu: "32".into(),
            tpmc: Some(r.raw_tpm()),
            qps: Some(a.qps()),
            lag: None,
        });
    }

    if json {
        let cases: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "{{\"case\":\"{}\",\"vcpu\":\"{}\",\"tpmc\":{},\"qps\":{},\"lag_bytes\":{}}}",
                    s2_bench::json_escape(&r.label),
                    r.vcpu,
                    s2_bench::json_f64(r.tpmc),
                    s2_bench::json_f64(r.qps),
                    r.lag.map_or("null".into(), |v| v.to_string()),
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"table3_ch\",\"threads\":{},\"cases\":[{}]}}",
            s2_exec::effective_threads(0),
            cases.join(",")
        );
        return;
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.vcpu.clone(),
                r.tpmc.map_or("-".into(), |v| format!("{v:.0}")),
                r.qps.map_or("-".into(), |v| format!("{v:.3}")),
                r.lag.map_or("-".into(), |v| format!("{v} B")),
            ]
        })
        .collect();
    print_table(&["Test case / configuration", "vCPU", "TpmC", "Analytical QPS", "ws lag"], &rows);
    println!(
        "\npaper shape check: case 3 halves both sides vs 1/2; case 4 restores TW throughput\n\
         and most AW throughput (isolated compute); case 5 ~ case 4 (async blob upload is ~free)"
    );
    s2_bench::report_metrics();
}
