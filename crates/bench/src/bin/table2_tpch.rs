//! Reproduces **Table 2: Summary of TPC-H results** — geomean runtime,
//! geomean cost and single-stream throughput for S2DB, two CDW models and
//! the CDB model, over the same generated TPC-H data.
//!
//! Knobs: `S2_SF` (scale factor, default 0.01), `S2_WARM_RUNS` (default 2),
//! `S2_CDB_BUDGET_SECS` (default 60; the paper gave CDB 24 hours and it did
//! not finish — the budget scales that cap to the scale factor).
//! Flags: `--threads N` (scan pool size), `--json` (machine-readable
//! output), `--sql "<query>"` (ad-hoc SQL over the loaded TPC-H data).

use std::time::{Duration, Instant};

use s2_bench::{env_f64, env_u64, json_f64, load_all_engines, print_table, run_tpch_comparison};

fn main() {
    s2_bench::apply_thread_flag();
    let json = s2_bench::json_enabled();
    let sf = env_f64("S2_SF", 0.01);
    if let Some(sql) = s2_bench::sql_flag() {
        let data = s2_workloads::tpch::generate(sf, 42);
        let cluster = s2_bench::bench_cluster(4);
        s2_workloads::tpch::load::load_cluster(&cluster, &data).expect("load tpch");
        let ctx = cluster.context().expect("context");
        s2_bench::run_adhoc_sql(&ctx, &sql);
        return;
    }
    let warm = env_u64("S2_WARM_RUNS", 2) as usize;
    let cdb_budget = Duration::from_secs(env_u64("S2_CDB_BUDGET_SECS", 60));

    if !json {
        println!("== Table 2: Summary of TPC-H (sf {sf}) results ==");
    }
    let t0 = Instant::now();
    let data = s2_workloads::tpch::generate(sf, 42);
    if !json {
        println!("generated {} lineitems in {:?}", data.table("lineitem").rows.len(), t0.elapsed());
    }
    let t0 = Instant::now();
    let engines = load_all_engines(&data, 4).expect("load");
    if !json {
        println!("loaded all four engines in {:?}\n", t0.elapsed());
    }

    let results = run_tpch_comparison(&engines, warm, cdb_budget);
    if json {
        let engines_json: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"price_per_hour\":{:.2},\"timed_out\":{},\
                     \"geomean_secs\":{},\"geomean_cents\":{},\"qps\":{}}}",
                    r.name,
                    r.price_per_hour,
                    r.timed_out,
                    json_f64((!r.timed_out).then(|| r.geomean_secs())),
                    json_f64((!r.timed_out).then(|| r.geomean_cents())),
                    json_f64((!r.timed_out).then(|| r.qps())),
                )
            })
            .collect();
        println!(
            "{{\"bench\":\"table2_tpch\",\"scale_factor\":{sf},\"threads\":{},\"engines\":[{}]}}",
            s2_exec::effective_threads(0),
            engines_json.join(",")
        );
        return;
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            if r.timed_out {
                vec![
                    r.name.to_string(),
                    format!("${:.2}", r.price_per_hour),
                    format!("Did not finish within {cdb_budget:?}"),
                    String::new(),
                    String::new(),
                ]
            } else {
                vec![
                    r.name.to_string(),
                    format!("${:.2}", r.price_per_hour),
                    format!("{:.3} s", r.geomean_secs()),
                    format!("{:.4} c", r.geomean_cents()),
                    format!("{:.3}", r.qps()),
                ]
            }
        })
        .collect();
    print_table(
        &[
            "Product",
            "Cluster price/h",
            "TPC-H geomean (sec)",
            "TPC-H geomean (cents)",
            "TPC-H throughput (QPS)",
        ],
        &rows,
    );
    println!(
        "\npaper shape check: S2DB ~ CDW1 ~ CDW2 (within ~1.2x geomean); CDB orders of magnitude slower / DNF"
    );
    s2_bench::report_metrics();
}
