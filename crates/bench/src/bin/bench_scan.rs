//! Parallel-scan baseline: runs the scan-heavy TPC-H and CH-BenCHmark
//! queries at 1/2/4/8 scan threads on one process and reports per-query
//! runtimes, cross-thread-count result equality (the executor's
//! determinism guarantee) and the speedup at 8 threads.
//!
//! `--json > BENCH_scan.json` produces the committed baseline. The
//! document records `host_parallelism`: on a single-core host the
//! executor cannot go faster than serial (there is one core to share),
//! so speedups near 1.0 with `host_parallelism: 1` are the honest
//! expectation — the byte-identical results across thread counts are
//! the invariant this bin guards everywhere.
//!
//! Knobs: `S2_SF` (default 0.02), `S2_SEGMENT_ROWS` (default 4096 — small
//! segments so every table yields many morsels), `S2_RUNS` (timed runs per
//! query per thread count, default 3), `S2_WAREHOUSES` (default 2).
//! Flags: `--json` (machine-readable output only), `--threads N` (sweep a
//! single thread count instead of 1/2/4/8 — used by `scripts/bench_gate.sh`).

use std::sync::Arc;
use std::time::Instant;

use s2_bench::{bench_cluster, env_f64, env_u64, print_table};
use s2_cluster::Cluster;
use s2_exec::Batch;
use s2_query::ExecOptions;
use s2_workloads::tpch::load::ClusterRunner;
use s2_workloads::tpch::queries::run_query;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Canonical rendering of a batch for equality checks: every cell via
/// `Value`'s Debug, row-major. Byte-identical strings mean byte-identical
/// results.
fn render(batch: &Batch) -> String {
    let mut out = String::new();
    for ri in 0..batch.rows() {
        for ci in 0..batch.width() {
            out.push_str(&format!("{:?}|", batch.value(ci, ri)));
        }
        out.push('\n');
    }
    out
}

struct QueryResult {
    suite: &'static str,
    name: String,
    /// Mean runtime in ms, one per swept thread count.
    mean_ms: Vec<f64>,
    /// Rendered results identical across all thread counts.
    identical: bool,
}

/// Time `f` at each thread count: one warm-up run (also warms the
/// decision cache so every timed run replays the same cached plan), then
/// `runs` timed runs, and checks renderings agree across thread counts.
fn sweep(
    suite: &'static str,
    name: &str,
    thread_counts: &[usize],
    runs: usize,
    mut f: impl FnMut(usize) -> Batch,
) -> QueryResult {
    let mut mean_ms = Vec::with_capacity(thread_counts.len());
    let mut reference: Option<String> = None;
    let mut identical = true;
    for &t in thread_counts {
        let warm = render(&f(t));
        match &reference {
            None => reference = Some(warm),
            Some(r) => identical &= *r == warm,
        }
        let t0 = Instant::now();
        for _ in 0..runs.max(1) {
            let batch = f(t);
            identical &= reference.as_deref() == Some(render(&batch).as_str());
        }
        mean_ms.push(t0.elapsed().as_secs_f64() * 1e3 / runs.max(1) as f64);
    }
    QueryResult { suite, name: name.to_string(), mean_ms, identical }
}

fn tpch_cluster(sf: f64, segment_rows: usize) -> Arc<Cluster> {
    let mut data = s2_workloads::tpch::generate(sf, 42);
    for t in &mut data.tables {
        t.options = t.options.clone().with_segment_rows(segment_rows);
    }
    let cluster = bench_cluster(4);
    s2_workloads::tpch::load::load_cluster(&cluster, &data).expect("load tpch");
    cluster
}

fn ch_cluster(warehouses: i64) -> Arc<Cluster> {
    let scale = s2_workloads::tpcc::TpccScale::bench(warehouses);
    let cluster = bench_cluster(4);
    s2_workloads::tpcc::backend::load_cluster(&cluster, &scale, 7).expect("load tpcc");
    // Push the loaded rows into columnstore segments so the scan-heavy
    // queries exercise the segment path, not just the rowstore tail.
    cluster.maintenance().expect("maintenance");
    cluster
}

/// `--threads N` restricts the sweep to a single thread count.
fn parse_threads() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

fn main() {
    let json = s2_bench::json_enabled();
    let sf = env_f64("S2_SF", 0.02);
    let segment_rows = env_u64("S2_SEGMENT_ROWS", 4096) as usize;
    let runs = env_u64("S2_RUNS", 3) as usize;
    let warehouses = env_u64("S2_WAREHOUSES", 2) as i64;
    let thread_counts: Vec<usize> = parse_threads().map_or(THREAD_COUNTS.to_vec(), |t| vec![t]);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    if !json {
        println!(
            "== Parallel scan baseline (sf {sf}, {segment_rows}-row segments, \
             {runs} runs/config, host parallelism {host}) =="
        );
    }

    let mut results: Vec<QueryResult> = Vec::new();

    // TPC-H scan-heavy queries: Q1 (full fact-table aggregation) and Q6
    // (tight range filter over the fact table).
    let tpch = tpch_cluster(sf, segment_rows);
    for q in [1usize, 6] {
        results.push(sweep("tpch", &format!("q{q}"), &thread_counts, runs, |t| {
            let mut opts = ExecOptions::default();
            opts.scan.threads = t;
            let runner = ClusterRunner { cluster: &tpch, opts };
            run_query(q, &runner).expect("query")
        }));
    }
    drop(tpch);

    // CH-BenCHmark scan-heavy queries over the TPC-C schema.
    let ch = ch_cluster(warehouses);
    let scan_heavy = ["revenue_by_district", "live_revenue", "hot_items", "top_customers"];
    for (name, plan) in s2_workloads::ch::queries() {
        if !scan_heavy.contains(&name) {
            continue;
        }
        let cluster = Arc::clone(&ch);
        results.push(sweep("ch", name, &thread_counts, runs, move |t| {
            let mut opts = ExecOptions::default();
            opts.scan.threads = t;
            cluster.execute(&plan, &opts).expect("query")
        }));
    }

    let speedup = |r: &QueryResult| r.mean_ms[0] / r.mean_ms[thread_counts.len() - 1];
    let geomean_speedup = (results.iter().map(|r| speedup(r).max(1e-9).ln()).sum::<f64>()
        / results.len() as f64)
        .exp();
    let all_identical = results.iter().all(|r| r.identical);

    if json {
        let queries: Vec<String> = results
            .iter()
            .map(|r| {
                let per_thread: Vec<String> = thread_counts
                    .iter()
                    .zip(&r.mean_ms)
                    .map(|(t, ms)| format!("{{\"threads\":{t},\"mean_ms\":{ms:.3}}}"))
                    .collect();
                format!(
                    "{{\"suite\":\"{}\",\"name\":\"{}\",\"identical_across_threads\":{},\
                     \"speedup_at_8\":{:.3},\"per_thread\":[{}]}}",
                    r.suite,
                    r.name,
                    r.identical,
                    speedup(r),
                    per_thread.join(",")
                )
            })
            .collect();
        let counts: Vec<String> = thread_counts.iter().map(usize::to_string).collect();
        println!(
            "{{\"bench\":\"bench_scan\",\"host_parallelism\":{host},\"scale_factor\":{sf},\
             \"segment_rows\":{segment_rows},\"runs_per_config\":{runs},\
             \"thread_counts\":[{}],\"all_identical\":{all_identical},\
             \"geomean_speedup_at_8\":{geomean_speedup:.3},\"queries\":[{}]}}",
            counts.join(","),
            queries.join(",")
        );
        return;
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![format!("{}/{}", r.suite, r.name)];
            row.extend(r.mean_ms.iter().map(|ms| format!("{ms:.2}")));
            row.push(format!("{:.2}x", speedup(r)));
            row.push(if r.identical { "yes".into() } else { "NO".into() });
            row
        })
        .collect();
    let mut headers: Vec<String> = vec!["Query".into()];
    headers.extend(thread_counts.iter().map(|t| format!("{t}T ms")));
    headers.push("speedup".into());
    headers.push("identical".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    println!(
        "\ngeomean speedup at {} threads: {geomean_speedup:.2}x (host parallelism {host})",
        thread_counts.last().copied().unwrap_or(1)
    );
    println!(
        "results byte-identical across thread counts: {}",
        if all_identical { "yes" } else { "NO" }
    );
    s2_bench::report_metrics();
}
