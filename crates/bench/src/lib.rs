//! Shared harness code for the paper-reproduction benchmarks: engine setup,
//! the TPC-H suite runner used by Table 2 and Figure 4, and text-table
//! formatting. Each paper table/figure has a binary in `src/bin/` that
//! prints rows in the paper's format; the Criterion benches in `benches/`
//! cover the ablations DESIGN.md calls out.

use std::sync::Arc;
use std::time::{Duration, Instant};

use s2_baseline::{CdbEngine, CdwEngine};
use s2_blob::{FaultyStore, MemoryStore, ObjectStore};
use s2_cluster::{Cluster, ClusterConfig};
use s2_common::Result;
use s2_query::ExecOptions;
use s2_workloads::tpch::load::{CdbRunner, CdwRunner, ClusterRunner};
use s2_workloads::tpch::queries::{run_query, PlanRunner};
use s2_workloads::tpch::TpchData;

/// Paper Table 2 cluster prices ($/hour).
pub mod prices {
    /// S2DB cluster price.
    pub const S2DB: f64 = 16.50;
    /// CDW1 cluster price.
    pub const CDW1: f64 = 16.00;
    /// CDW2 cluster price.
    pub const CDW2: f64 = 16.30;
    /// CDB cluster price.
    pub const CDB: f64 = 13.92;
}

/// Read an f64 knob from the environment.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a u64 knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Value of a `--flag value` or `--flag=value` CLI argument, if present.
pub fn cli_value(flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// The `--sql "<query>"` flag: run one ad-hoc query against the bin's
/// loaded data instead of the benchmark sweep.
pub fn sql_flag() -> Option<String> {
    cli_value("--sql")
}

/// Run an ad-hoc `--sql` query against `ctx`: print the annotated `EXPLAIN`
/// tree, then execute and print the results under the statement's output
/// column names.
pub fn run_adhoc_sql(ctx: &dyn s2_query::QueryContext, sql: &str) {
    let compiled = match s2_sql::plan(ctx, sql) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sql error: {e}");
            std::process::exit(1);
        }
    };
    println!("== explain ==");
    match s2_sql::explain(ctx, sql) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("sql error: {e}");
            std::process::exit(1);
        }
    }
    if compiled.explain {
        return;
    }
    let t0 = Instant::now();
    match s2_query::execute(&compiled.plan, ctx, &ExecOptions::default()) {
        Ok(batch) => {
            let names: Vec<&str> = compiled.fields.iter().map(|(n, _)| n.as_str()).collect();
            println!("== results: {} rows in {:?} ==", batch.rows(), t0.elapsed());
            print!("{}", s2_query::format_batch(&batch, &names));
        }
        Err(e) => {
            eprintln!("execution error: {e}");
            std::process::exit(1);
        }
    }
}

/// Apply a `--threads N` CLI override by exporting `S2_SCAN_THREADS`.
/// Every bench binary calls this first thing so the flag wins over the
/// inherited environment; it must run before the first scan (the pool
/// reads the variable once, lazily). Returns the override, if any.
pub fn apply_thread_flag() -> Option<usize> {
    let n: usize = cli_value("--threads")?.parse().ok()?;
    std::env::set_var("S2_SCAN_THREADS", n.to_string());
    Some(n)
}

/// Whether this bench run should emit machine-readable JSON instead of
/// (or alongside) the text tables: `--json` or `S2_JSON=1`.
pub fn json_enabled() -> bool {
    std::env::args().any(|a| a == "--json")
        || std::env::var("S2_JSON").is_ok_and(|v| v == "1" || v == "true")
}

/// Escape a string for inclusion in a JSON string literal (no serde in
/// this workspace; benches hand-assemble their small documents).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `Option<f64>` as a JSON number or `null`.
pub fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.6}"),
        _ => "null".into(),
    }
}

/// Simulated blob round-trip latency used where an experiment needs one.
pub fn blob_latency() -> Duration {
    Duration::from_millis(env_u64("S2_BLOB_LATENCY_MS", 10))
}

/// Whether this bench run should print an observability snapshot at the
/// end: opt-in via a `--metrics` argument or `S2_METRICS=1`, so default
/// bench output stays byte-identical.
pub fn metrics_enabled() -> bool {
    std::env::args().any(|a| a == "--metrics")
        || std::env::var("S2_METRICS").is_ok_and(|v| v == "1" || v == "true")
}

/// End-of-run metrics hook for every bench binary. The snapshot is always
/// taken (it doubles as a smoke test that the registry aggregates under
/// load); it is only printed when [`metrics_enabled`].
pub fn report_metrics() {
    let snapshot = s2_obs::global().snapshot();
    if metrics_enabled() {
        println!("\n== metrics snapshot ==");
        print!("{}", snapshot.to_text());
    }
}

/// A shared-nothing cluster sized for benchmarks.
pub fn bench_cluster(partitions: usize) -> Arc<Cluster> {
    Cluster::new(
        "bench",
        ClusterConfig {
            partitions,
            ha_replicas: 0,
            sync_replication: false,
            blob: None,
            ..Default::default()
        },
    )
    .expect("cluster")
}

/// Result of running the TPC-H suite on one engine.
pub struct SuiteResult {
    /// Engine label.
    pub name: &'static str,
    /// Cluster $/hour (paper Table 2).
    pub price_per_hour: f64,
    /// Warm mean runtime per query (None = did not finish in budget).
    pub per_query: Vec<Option<Duration>>,
    /// Wall time of one full warm pass over all queries.
    pub stream_time: Duration,
    /// True when the engine exhausted its time budget.
    pub timed_out: bool,
}

impl SuiteResult {
    /// Geometric mean runtime over finished queries, seconds.
    pub fn geomean_secs(&self) -> f64 {
        let finished: Vec<f64> =
            self.per_query.iter().flatten().map(|d| d.as_secs_f64().max(1e-9)).collect();
        if finished.is_empty() {
            return f64::NAN;
        }
        (finished.iter().map(|s| s.ln()).sum::<f64>() / finished.len() as f64).exp()
    }

    /// Geometric-mean cost in cents (runtime x price).
    pub fn geomean_cents(&self) -> f64 {
        self.geomean_secs() * self.price_per_hour / 3600.0 * 100.0
    }

    /// Queries per second of a single stream.
    pub fn qps(&self) -> f64 {
        let done = self.per_query.iter().flatten().count();
        if done == 0 {
            return 0.0;
        }
        done as f64 / self.stream_time.as_secs_f64()
    }
}

/// Run the 22-query suite on `runner`: one cold pass, then `warm_runs`
/// timed passes, within `budget` total (the paper capped CDB at 24 hours;
/// the same mechanism, scaled down, reproduces its "did not finish" row).
pub fn run_suite(
    name: &'static str,
    price_per_hour: f64,
    runner: &dyn PlanRunner,
    warm_runs: usize,
    budget: Duration,
) -> SuiteResult {
    let started = Instant::now();
    let mut per_query: Vec<Option<Duration>> = vec![None; 22];
    let mut timed_out = false;
    // Cold pass (query compilation + cache warm in the paper).
    for q in 1..=22 {
        if started.elapsed() > budget {
            timed_out = true;
            break;
        }
        let _ = run_query(q, runner);
    }
    let mut stream_time = Duration::ZERO;
    if !timed_out {
        for q in 1..=22 {
            if started.elapsed() > budget {
                timed_out = true;
                break;
            }
            let mut total = Duration::ZERO;
            let mut runs = 0;
            for _ in 0..warm_runs.max(1) {
                let t0 = Instant::now();
                match run_query(q, runner) {
                    Ok(_) => {
                        total += t0.elapsed();
                        runs += 1;
                    }
                    Err(e) => {
                        eprintln!("{name} q{q}: {e}");
                        break;
                    }
                }
                if started.elapsed() > budget {
                    timed_out = true;
                    break;
                }
            }
            if runs > 0 {
                let mean = total / runs;
                per_query[q - 1] = Some(mean);
                stream_time += mean;
            }
            if timed_out {
                break;
            }
        }
    }
    SuiteResult { name, price_per_hour, per_query, stream_time, timed_out }
}

/// The four engines of Table 2, loaded with the same data. The two CDW
/// rows model the paper's two closed-source warehouses with different batch
/// granularities (their only externally-visible difference here).
pub struct Tpch4Engines {
    /// Unified-storage cluster.
    pub cluster: Arc<Cluster>,
    /// CDW model 1.
    pub cdw1: CdwEngine,
    /// CDW model 2.
    pub cdw2: CdwEngine,
    /// CDB model.
    pub cdb: CdbEngine,
}

/// Load all four engines from `data`.
pub fn load_all_engines(data: &TpchData, partitions: usize) -> Result<Tpch4Engines> {
    let cluster = bench_cluster(partitions);
    s2_workloads::tpch::load::load_cluster(&cluster, data)?;
    let blob1: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let cdw1 = CdwEngine::new(blob1);
    s2_workloads::tpch::load::load_cdw(&cdw1, data)?;
    let blob2: Arc<dyn ObjectStore> =
        Arc::new(FaultyStore::new(MemoryStore::new(), Duration::ZERO, Duration::ZERO));
    let cdw2 = CdwEngine::new(blob2);
    s2_workloads::tpch::load::load_cdw(&cdw2, data)?;
    let cdb = CdbEngine::new();
    s2_workloads::tpch::load::load_cdb(&cdb, data)?;
    Ok(Tpch4Engines { cluster, cdw1, cdw2, cdb })
}

/// Run the full Table 2 / Figure 4 measurement.
pub fn run_tpch_comparison(
    engines: &Tpch4Engines,
    warm_runs: usize,
    cdb_budget: Duration,
) -> Vec<SuiteResult> {
    let opts = ExecOptions::default();
    let s2 = ClusterRunner { cluster: &engines.cluster, opts: opts.clone() };
    let generous = Duration::from_secs(3600);
    vec![
        run_suite("S2DB", prices::S2DB, &s2, warm_runs, generous),
        run_suite("CDW1", prices::CDW1, &CdwRunner(&engines.cdw1), warm_runs, generous),
        run_suite("CDW2", prices::CDW2, &CdwRunner(&engines.cdw2), warm_runs, generous),
        // The paper's CDB never finished the suite ("did not finish within
        // 24 hours"); the budget reproduces that behaviour proportionally.
        run_suite("CDB", prices::CDB, &CdbRunner(&engines.cdb), warm_runs, cdb_budget),
    ]
}

/// Format a simple aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let s: Vec<String> = cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
        println!("  {}", s.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// An ASCII bar for the summary figure.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if !value.is_finite() || !max.is_finite() || max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(if value > 0.0 { 1 } else { 0 }, width))
}
