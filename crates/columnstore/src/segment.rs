//! Columnstore segments (paper §2.1.2).
//!
//! A segment stores a disjoint subset of a table's rows as one immutable
//! data file; within it, every column is stored in the same row order but
//! encoded separately. Mutable state — the deleted-rows bit vector, min/max
//! values, encodings, file location — lives in [`SegmentMeta`], which the
//! engine keeps in durable in-memory metadata (and logs changes to), never
//! in the data file itself. That immutability is what lets data files be
//! shipped to blob storage as-is (paper §3.1).

use std::sync::Arc;
use std::sync::OnceLock;

use s2_common::io::{ByteReader, ByteWriter};
use s2_common::{BitVec, DataType, Error, LogPosition, Result, Row, Schema, SegmentId, Value};
use s2_encoding::{encode_column, ColumnReader, EncodedColumn, Encoding};

/// Data-file magic ("S2SG").
pub const SEGMENT_MAGIC: u32 = 0x4753_3253;

/// Mutable per-segment metadata. The data file it points at is immutable;
/// deletes only flip bits here (paper §3: "to delete a row from a segment,
/// only the segment metadata is updated").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment id, unique within the table.
    pub id: SegmentId,
    /// Data-file name: the log position at which the file was created
    /// ("each data file is named after the log page at which it was
    /// created", paper §3), making files logically part of the log stream.
    pub file_id: LogPosition,
    /// Rows stored in the data file (including deleted ones).
    pub row_count: usize,
    /// Encoding used per column.
    pub encodings: Vec<Encoding>,
    /// Per-column (min, max) over non-null values; `None` when the column is
    /// all-null or the segment is empty. Drives segment elimination (§5.1).
    pub min_max: Vec<Option<(Value, Value)>>,
    /// Deleted-row bits (set = deleted).
    pub deleted: BitVec,
    /// Whether rows are sorted by the table's sort key.
    pub sorted: bool,
}

impl SegmentMeta {
    /// Live (non-deleted) rows.
    pub fn live_rows(&self) -> usize {
        self.row_count - self.deleted.count_ones()
    }

    /// Can a row with `value` in column `col` possibly exist here?
    /// (min/max segment elimination, paper §2.1.2/§5.1.)
    pub fn may_contain(&self, col: usize, value: &Value) -> bool {
        match &self.min_max[col] {
            None => value.is_null(), // all-null column can only match NULL probes
            Some((min, max)) => {
                if value.is_null() {
                    return true; // nulls are not captured by min/max
                }
                value >= min && value <= max
            }
        }
    }

    /// Can any row in `[lo, hi]` (inclusive, either side optional) exist here?
    pub fn may_overlap_range(&self, col: usize, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        match &self.min_max[col] {
            None => false,
            Some((min, max)) => lo.is_none_or(|lo| max >= lo) && hi.is_none_or(|hi| min <= hi),
        }
    }

    /// Serialize (for log records and segment inventories).
    pub fn write_to(&self, w: &mut ByteWriter) {
        w.put_u64(self.id);
        w.put_u64(self.file_id);
        w.put_varint(self.row_count as u64);
        w.put_varint(self.encodings.len() as u64);
        for e in &self.encodings {
            w.put_u8(*e as u8);
        }
        for mm in &self.min_max {
            match mm {
                None => w.put_u8(0),
                Some((min, max)) => {
                    w.put_u8(1);
                    w.put_value(min);
                    w.put_value(max);
                }
            }
        }
        self.deleted.write_to(w);
        w.put_u8(self.sorted as u8);
    }

    /// Parse the format written by [`SegmentMeta::write_to`].
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<SegmentMeta> {
        let id = r.get_u64()?;
        let file_id = r.get_u64()?;
        let row_count = r.get_varint()? as usize;
        let n_cols = r.get_varint()? as usize;
        let mut encodings = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let tag = r.get_u8()?;
            // Round-trip through a dummy EncodedColumn parse is overkill;
            // reuse the enum mapping by matching the tag explicitly.
            encodings.push(match tag {
                1 => Encoding::PlainInt,
                2 => Encoding::PlainDouble,
                3 => Encoding::PlainStr,
                4 => Encoding::BitPackInt,
                5 => Encoding::RleInt,
                6 => Encoding::DictStr,
                7 => Encoding::DictInt,
                8 => Encoding::LzStr,
                t => return Err(Error::Corruption(format!("bad encoding tag {t} in meta"))),
            });
        }
        let mut min_max = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            min_max.push(match r.get_u8()? {
                0 => None,
                1 => Some((r.get_value()?, r.get_value()?)),
                t => return Err(Error::Corruption(format!("bad min/max tag {t}"))),
            });
        }
        let deleted = BitVec::read_from(r)?;
        let sorted = r.get_u8()? != 0;
        Ok(SegmentMeta { id, file_id, row_count, encodings, min_max, deleted, sorted })
    }
}

/// An immutable segment data file: one encoded blob per column.
#[derive(Debug, Clone)]
pub struct SegmentData {
    /// Per-column encoded blobs, in schema order.
    pub columns: Vec<EncodedColumn>,
    /// Row count (same for every column).
    pub rows: usize,
}

impl SegmentData {
    /// Serialize to data-file bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(SEGMENT_MAGIC);
        w.put_varint(self.rows as u64);
        w.put_varint(self.columns.len() as u64);
        for col in &self.columns {
            w.put_bytes(&col.data);
        }
        w.into_bytes()
    }

    /// Parse data-file bytes.
    pub fn decode(bytes: &[u8]) -> Result<SegmentData> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u32()?;
        if magic != SEGMENT_MAGIC {
            return Err(Error::Corruption(format!("bad segment magic {magic:#x}")));
        }
        let rows = r.get_varint()? as usize;
        let n_cols = r.get_varint()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let blob = r.get_bytes()?.to_vec();
            let col = EncodedColumn::from_bytes(Arc::new(blob))?;
            if col.rows != rows {
                return Err(Error::Corruption(format!(
                    "column rows {} != segment rows {rows}",
                    col.rows
                )));
            }
            columns.push(col);
        }
        Ok(SegmentData { columns, rows })
    }

    /// Total encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        self.columns.iter().map(EncodedColumn::encoded_size).sum()
    }
}

/// Build a segment (data + metadata skeleton) from rows.
///
/// If `sort_key` is non-empty, rows are sorted by it first ("rows are fully
/// sorted by the sort key within each segment", paper §2.1.2).
pub fn build_segment(
    id: SegmentId,
    mut rows: Vec<Row>,
    schema: &Schema,
    sort_key: &[usize],
) -> Result<(SegmentMeta, SegmentData)> {
    if !sort_key.is_empty() {
        rows.sort_by(|a, b| {
            sort_key
                .iter()
                .map(|&c| a.get(c).total_cmp(b.get(c)))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    let n = rows.len();
    let mut columns = Vec::with_capacity(schema.len());
    let mut encodings = Vec::with_capacity(schema.len());
    let mut min_max = Vec::with_capacity(schema.len());
    let mut col_values: Vec<Value> = Vec::with_capacity(n);
    for (ci, cdef) in schema.columns().iter().enumerate() {
        col_values.clear();
        col_values.extend(rows.iter().map(|r| r.get(ci).clone()));
        let mut mm: Option<(Value, Value)> = None;
        for v in &col_values {
            if v.is_null() {
                continue;
            }
            match &mut mm {
                None => mm = Some((v.clone(), v.clone())),
                Some((min, max)) => {
                    if v < min {
                        *min = v.clone();
                    }
                    if v > max {
                        *max = v.clone();
                    }
                }
            }
        }
        let encoded = encode_column(&col_values, cdef.data_type, None)?;
        encodings.push(encoded.encoding);
        min_max.push(mm);
        columns.push(encoded);
    }
    let meta = SegmentMeta {
        id,
        file_id: 0, // assigned when the data file is written to the log stream
        row_count: n,
        encodings,
        min_max,
        deleted: BitVec::zeros(n),
        sorted: !sort_key.is_empty(),
    };
    Ok((meta, SegmentData { columns, rows: n }))
}

/// Lazily-opened per-column readers over a segment's data. Only columns a
/// query actually touches get parsed (late materialization).
pub struct SegmentReader {
    data: SegmentData,
    readers: Vec<OnceLock<ColumnReader>>,
}

impl SegmentReader {
    /// Wrap decoded segment data.
    pub fn new(data: SegmentData) -> SegmentReader {
        let readers = (0..data.columns.len()).map(|_| OnceLock::new()).collect();
        SegmentReader { data, readers }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.data.rows
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.data.columns.len()
    }

    /// Reader for column `ci`, opened on first use.
    pub fn column(&self, ci: usize) -> Result<&ColumnReader> {
        if ci >= self.data.columns.len() {
            return Err(Error::InvalidArgument(format!("column {ci} out of range")));
        }
        // OnceLock: first caller parses, everyone else reuses.
        if self.readers[ci].get().is_none() {
            let reader = ColumnReader::open(&self.data.columns[ci])?;
            let _ = self.readers[ci].set(reader);
        }
        Ok(self.readers[ci].get().expect("just set"))
    }

    /// Materialize full row `ri` (seekable point read across all columns).
    pub fn row(&self, ri: usize) -> Result<Row> {
        let mut values = Vec::with_capacity(self.column_count());
        for ci in 0..self.column_count() {
            values.push(self.column(ci)?.value(ri)?);
        }
        Ok(Row::new(values))
    }

    /// The value of column `ci` at row `ri`.
    pub fn value(&self, ci: usize, ri: usize) -> Result<Value> {
        self.column(ci)?.value(ri)
    }

    /// The segment's data type for column `ci`.
    pub fn data_type(&self, ci: usize) -> Result<DataType> {
        Ok(self.column(ci)?.data_type())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::schema::ColumnDef;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int64),
            ColumnDef::new("grp", DataType::Str),
            ColumnDef::nullable("score", DataType::Double),
        ])
        .unwrap()
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int(n - i), // reverse order so sorting matters
                    Value::str(["a", "b", "c"][(i % 3) as usize]),
                    if i % 5 == 0 { Value::Null } else { Value::Double(i as f64 / 2.0) },
                ])
            })
            .collect()
    }

    #[test]
    fn build_sorts_and_computes_minmax() {
        let s = schema();
        let (meta, data) = build_segment(1, rows(100), &s, &[0]).unwrap();
        assert_eq!(meta.row_count, 100);
        assert!(meta.sorted);
        assert_eq!(meta.min_max[0], Some((Value::Int(1), Value::Int(100))));
        assert_eq!(meta.min_max[1], Some((Value::str("a"), Value::str("c"))));
        let reader = SegmentReader::new(data);
        // Sorted by id ascending.
        assert_eq!(reader.value(0, 0).unwrap(), Value::Int(1));
        assert_eq!(reader.value(0, 99).unwrap(), Value::Int(100));
    }

    #[test]
    fn data_file_roundtrip() {
        let s = schema();
        let (_, data) = build_segment(1, rows(50), &s, &[]).unwrap();
        let bytes = data.encode();
        let back = SegmentData::decode(&bytes).unwrap();
        assert_eq!(back.rows, 50);
        let r1 = SegmentReader::new(data);
        let r2 = SegmentReader::new(back);
        for ri in [0usize, 17, 49] {
            assert_eq!(r1.row(ri).unwrap(), r2.row(ri).unwrap());
        }
    }

    #[test]
    fn meta_roundtrip() {
        let s = schema();
        let (mut meta, _) = build_segment(3, rows(20), &s, &[0]).unwrap();
        meta.file_id = 777;
        meta.deleted.set(4);
        meta.deleted.set(15);
        let mut w = ByteWriter::new();
        meta.write_to(&mut w);
        let bytes = w.into_bytes();
        let back = SegmentMeta::read_from(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.live_rows(), 18);
    }

    #[test]
    fn segment_elimination_checks() {
        let s = schema();
        let (meta, _) = build_segment(1, rows(10), &s, &[0]).unwrap();
        // ids are 1..=10
        assert!(meta.may_contain(0, &Value::Int(5)));
        assert!(!meta.may_contain(0, &Value::Int(11)));
        assert!(meta.may_overlap_range(0, Some(&Value::Int(8)), None));
        assert!(!meta.may_overlap_range(0, Some(&Value::Int(11)), None));
        assert!(meta.may_overlap_range(0, None, Some(&Value::Int(1))));
        assert!(!meta.may_overlap_range(0, None, Some(&Value::Int(0))));
    }

    #[test]
    fn all_null_column_minmax_none() {
        let s = Schema::new(vec![ColumnDef::nullable("x", DataType::Int64)]).unwrap();
        let rows: Vec<Row> = (0..5).map(|_| Row::new(vec![Value::Null])).collect();
        let (meta, _) = build_segment(1, rows, &s, &[]).unwrap();
        assert_eq!(meta.min_max[0], None);
        assert!(meta.may_contain(0, &Value::Null));
        assert!(!meta.may_contain(0, &Value::Int(1)));
    }

    #[test]
    fn empty_segment() {
        let s = schema();
        let (meta, data) = build_segment(1, vec![], &s, &[0]).unwrap();
        assert_eq!(meta.row_count, 0);
        assert_eq!(meta.live_rows(), 0);
        let bytes = data.encode();
        assert_eq!(SegmentData::decode(&bytes).unwrap().rows, 0);
    }

    #[test]
    fn corrupt_data_file_detected() {
        let s = schema();
        let (_, data) = build_segment(1, rows(10), &s, &[]).unwrap();
        let mut bytes = data.encode();
        bytes[0] = 0;
        assert!(SegmentData::decode(&bytes).is_err());
    }
}
