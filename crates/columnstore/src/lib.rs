//! Disk-based columnstore: immutable encoded segments, mutable segment
//! metadata (min/max, deleted bits) and LSM sorted-run maintenance
//! (paper §2.1.2). The unified table storage in `s2-core` composes this with
//! the in-memory rowstore level and secondary indexes.

pub mod merge;
pub mod segment;

pub use merge::{first_sort_column_range, live_rows, merge_segments, merge_sorted, MergePolicy};
pub use segment::{build_segment, SegmentData, SegmentMeta, SegmentReader, SEGMENT_MAGIC};
