//! LSM sorted runs and the background merge operation (paper §2.1.2: "the
//! sort order across segments is maintained similar to LSM trees by building
//! up sorted runs of segments. A background merger process is used to merge
//! the segments incrementally to maintain a logarithmic number of sorted
//! runs.").

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use s2_common::{Result, Row, Schema, SegmentId, Value};

use crate::segment::{build_segment, SegmentData, SegmentMeta, SegmentReader};

/// Compare two rows on the sort-key columns.
fn cmp_on(a: &Row, b: &Row, sort_key: &[usize]) -> Ordering {
    for &c in sort_key {
        let o = a.get(c).total_cmp(b.get(c));
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// When should runs merge? Size-tiered: merge whenever the run count exceeds
/// `max_runs`, taking the smallest runs first so write amplification stays
/// logarithmic.
#[derive(Debug, Clone, Copy)]
pub struct MergePolicy {
    /// Maximum sorted runs tolerated before a merge is scheduled.
    pub max_runs: usize,
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy { max_runs: 4 }
    }
}

impl MergePolicy {
    /// Given the live-row size of each run, pick run indices to merge
    /// (`None` = nothing to do). Merges enough of the smallest runs to get
    /// back under `max_runs`, always at least two.
    pub fn plan(&self, run_sizes: &[usize]) -> Option<Vec<usize>> {
        if run_sizes.len() <= self.max_runs {
            return None;
        }
        let mut order: Vec<usize> = (0..run_sizes.len()).collect();
        order.sort_by_key(|&i| run_sizes[i]);
        let take = (run_sizes.len() - self.max_runs + 1).max(2);
        let mut picked: Vec<usize> = order.into_iter().take(take).collect();
        picked.sort_unstable();
        Some(picked)
    }
}

/// Decode the live (non-deleted) rows of a segment.
pub fn live_rows(meta: &SegmentMeta, reader: &SegmentReader) -> Result<Vec<Row>> {
    let sel: Vec<u32> = if meta.deleted.count_ones() == 0 {
        (0..meta.row_count as u32).collect()
    } else {
        (0..meta.row_count as u32).filter(|&i| !meta.deleted.get(i as usize)).collect()
    };
    let n_cols = reader.column_count();
    let mut vectors = Vec::with_capacity(n_cols);
    for ci in 0..n_cols {
        vectors.push(reader.column(ci)?.decode_vector(Some(&sel))?);
    }
    let mut out = Vec::with_capacity(sel.len());
    for ri in 0..sel.len() {
        out.push(Row::new(vectors.iter().map(|v| v.value(ri)).collect()));
    }
    Ok(out)
}

/// Merge-ordered heap entry: (row, source index, position) with min-heap order.
struct HeapEntry {
    row: Row,
    source: usize,
    pos: usize,
    sort_key: *const [usize],
}

impl HeapEntry {
    fn key(&self) -> &[usize] {
        // SAFETY: sort_key points at the merge call's sort-key slice, which
        // outlives every HeapEntry (entries never escape merge_runs).
        unsafe { &*self.sort_key }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for BinaryHeap (max-heap) -> min-heap behaviour; ties
        // broken by source order to keep the merge stable.
        cmp_on(&other.row, &self.row, self.key()).then_with(|| other.source.cmp(&self.source))
    }
}

/// K-way merge of live rows from several segment row-lists, by sort key.
/// Inputs that are individually sorted merge in O(n log k); unsorted inputs
/// should be pre-sorted by the caller (flush output always is, via
/// [`build_segment`]).
pub fn merge_sorted(inputs: Vec<Vec<Row>>, sort_key: &[usize]) -> Vec<Row> {
    if sort_key.is_empty() {
        return inputs.into_iter().flatten().collect();
    }
    let total: usize = inputs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let key_ptr: *const [usize] = sort_key;
    let mut heap = BinaryHeap::with_capacity(inputs.len());
    let mut sources: Vec<std::vec::IntoIter<Row>> =
        inputs.into_iter().map(Vec::into_iter).collect();
    for (i, src) in sources.iter_mut().enumerate() {
        if let Some(row) = src.next() {
            heap.push(HeapEntry { row, source: i, pos: 0, sort_key: key_ptr });
        }
    }
    while let Some(entry) = heap.pop() {
        let HeapEntry { row, source, pos, .. } = entry;
        out.push(row);
        if let Some(next) = sources[source].next() {
            heap.push(HeapEntry { row: next, source, pos: pos + 1, sort_key: key_ptr });
        }
    }
    out
}

/// One merge output: metadata, data and the rows in segment order (callers
/// build per-segment inverted indexes and global-index entries from `rows`).
pub struct MergedSegment {
    /// New segment's metadata skeleton.
    pub meta: SegmentMeta,
    /// New segment's data.
    pub data: SegmentData,
    /// Rows in the segment's physical order.
    pub rows: Vec<Row>,
}

/// Merge segments into new ones: drops deleted rows, merges by sort key, and
/// splits the output at `target_rows` per segment. Returns the replacement
/// segments with ids allocated from `next_id`.
pub fn merge_segments(
    inputs: &[(&SegmentMeta, &SegmentReader)],
    schema: &Schema,
    sort_key: &[usize],
    next_id: &mut SegmentId,
    target_rows: usize,
) -> Result<Vec<MergedSegment>> {
    let mut row_lists = Vec::with_capacity(inputs.len());
    for (meta, reader) in inputs {
        let mut rows = live_rows(meta, reader)?;
        if !sort_key.is_empty() && !meta.sorted {
            rows.sort_by(|a, b| cmp_on(a, b, sort_key));
        }
        row_lists.push(rows);
    }
    let merged = merge_sorted(row_lists, sort_key);
    let mut out = Vec::new();
    if merged.is_empty() {
        return Ok(out);
    }
    for chunk in merged.chunks(target_rows.max(1)) {
        let id = *next_id;
        *next_id += 1;
        // Chunks are already in sort order; build_segment re-sorts, which is
        // a stable no-op here but keeps one code path.
        let (meta, data) = build_segment(id, chunk.to_vec(), schema, sort_key)?;
        out.push(MergedSegment { meta, data, rows: chunk.to_vec() });
    }
    Ok(out)
}

/// Row-range summary of a sorted segment on the sort key's first column,
/// used to keep runs ordered.
pub fn first_sort_column_range(meta: &SegmentMeta, sort_key: &[usize]) -> Option<(Value, Value)> {
    sort_key.first().and_then(|&c| meta.min_max[c].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_common::schema::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("k", DataType::Int64), ColumnDef::new("v", DataType::Str)])
            .unwrap()
    }

    fn seg(id: SegmentId, keys: &[i64]) -> (SegmentMeta, SegmentReader) {
        let rows: Vec<Row> = keys
            .iter()
            .map(|&k| Row::new(vec![Value::Int(k), Value::str(format!("v{k}"))]))
            .collect();
        let (meta, data) = build_segment(id, rows, &schema(), &[0]).unwrap();
        (meta, SegmentReader::new(data))
    }

    #[test]
    fn policy_merges_only_when_over_budget() {
        let p = MergePolicy { max_runs: 3 };
        assert!(p.plan(&[100, 200, 300]).is_none());
        let picked = p.plan(&[100, 200, 300, 50]).unwrap();
        assert_eq!(picked, vec![0, 3], "two smallest runs");
        let picked = p.plan(&[10, 20, 30, 40, 50, 60]).unwrap();
        assert_eq!(picked.len(), 4, "enough merged to return under budget");
    }

    #[test]
    fn kway_merge_is_ordered_and_complete() {
        let a: Vec<Row> = [1i64, 4, 7].iter().map(|&k| Row::new(vec![Value::Int(k)])).collect();
        let b: Vec<Row> = [2i64, 5, 8].iter().map(|&k| Row::new(vec![Value::Int(k)])).collect();
        let c: Vec<Row> = [3i64, 6, 9].iter().map(|&k| Row::new(vec![Value::Int(k)])).collect();
        let merged = merge_sorted(vec![a, b, c], &[0]);
        let keys: Vec<i64> = merged.iter().map(|r| r.get(0).as_int().unwrap()).collect();
        assert_eq!(keys, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn merge_drops_deleted_rows() {
        let (mut m1, r1) = seg(1, &[1, 2, 3, 4]);
        let (m2, r2) = seg(2, &[5, 6]);
        m1.deleted.set(1); // delete key 2 (rows sorted: offsets match keys-1)
        let mut next = 10;
        let out =
            merge_segments(&[(&m1, &r1), (&m2, &r2)], &schema(), &[0], &mut next, 100).unwrap();
        assert_eq!(out.len(), 1);
        let MergedSegment { meta, data, .. } = &out[0];
        assert_eq!(meta.id, 10);
        assert_eq!(meta.row_count, 5);
        let reader = SegmentReader::new(data.clone());
        let keys: Vec<i64> =
            (0..5).map(|i| reader.value(0, i).unwrap().as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_splits_at_target_rows() {
        let (m1, r1) = seg(1, &(0..10).collect::<Vec<_>>());
        let (m2, r2) = seg(2, &(10..20).collect::<Vec<_>>());
        let mut next = 100;
        let out = merge_segments(&[(&m1, &r1), (&m2, &r2)], &schema(), &[0], &mut next, 8).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].meta.row_count, 8);
        assert_eq!(out[2].meta.row_count, 4);
        // Global order across output segments.
        assert_eq!(out[0].meta.min_max[0], Some((Value::Int(0), Value::Int(7))));
        assert_eq!(out[1].meta.min_max[0], Some((Value::Int(8), Value::Int(15))));
    }

    #[test]
    fn merge_of_fully_deleted_inputs_is_empty() {
        let (mut m1, r1) = seg(1, &[1, 2]);
        m1.deleted.set(0);
        m1.deleted.set(1);
        let mut next = 5;
        let out = merge_segments(&[(&m1, &r1)], &schema(), &[0], &mut next, 10).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_sort_keys_all_survive() {
        let a: Vec<Row> = vec![Row::new(vec![Value::Int(1)]); 3];
        let b: Vec<Row> = vec![Row::new(vec![Value::Int(1)]); 2];
        let merged = merge_sorted(vec![a, b], &[0]);
        assert_eq!(merged.len(), 5);
    }
}
