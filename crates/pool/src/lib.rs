//! Morsel-driven parallelism: a process-wide worker pool shared by the
//! query executor (`s2-exec`, which re-exports this crate as
//! `s2_exec::pool`) and parallel crash recovery (`s2-core`).
//!
//! The executor parallelizes work the way HyPer's morsel-driven model does:
//! a query breaks into small self-contained tasks ("morsels" — here one
//! columnstore segment, or one partition snapshot at the aggregator), the
//! tasks go into per-worker queues, and idle workers *steal* from their
//! peers so a skewed segment-size distribution cannot strand cores. The
//! calling thread participates too — it drains queues while waiting — which
//! keeps a 1-thread configuration strictly serial (zero pool overhead, no
//! cross-thread handoff) and makes nested `run` calls (a partition-level
//! task fanning its segments out) deadlock-free: a caller blocked on its
//! own morsels executes queued work instead of sleeping.
//!
//! The pool is lazily initialized and sized by `S2_SCAN_THREADS` (env),
//! falling back to `std::thread::available_parallelism`. Workers are
//! spawned on demand up to the requested size and live for the process;
//! they sleep on a condvar when no work is queued.
//!
//! Determinism: `run` returns results **in input order** regardless of
//! which thread executed what, so scan output is byte-identical across
//! thread counts.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use s2_common::sync::{rank, Condvar, Mutex};

/// Hard ceiling on pool threads (queue slots are allocated up front).
pub const MAX_THREADS: usize = 32;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per potential worker. Submission round-robins over the
    /// spawned prefix; everyone steals from everyone.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep lock + condvar for idle workers.
    idle: Mutex<()>,
    ready: Condvar,
    /// Jobs queued but not yet picked up (wakeup check).
    pending: AtomicUsize,
    /// Workers actually spawned.
    spawned: AtomicUsize,
}

impl Shared {
    /// Pop a job: `own` queue front first (FIFO for cache locality), then
    /// steal from peers' backs. `own == usize::MAX` for submitting callers,
    /// which have no home queue; their pops are not counted as steals.
    fn pop(&self, own: usize) -> Option<Job> {
        if own != usize::MAX {
            if let Some(job) = self.queues[own].lock().pop_front() {
                self.note_pop();
                return Some(job);
            }
        }
        let slots = self.spawned.load(Ordering::Acquire).max(1);
        for k in 0..slots {
            if k == own {
                continue;
            }
            if let Some(job) = self.queues[k].lock().pop_back() {
                self.note_pop();
                if own != usize::MAX {
                    s2_obs::counter!("exec.pool.steals").inc();
                }
                return Some(job);
            }
        }
        None
    }

    fn note_pop(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
        s2_obs::gauge!("exec.pool.queue_depth").dec();
    }
}

/// The shared scan worker pool. Use [`ScanPool::global`].
pub struct ScanPool {
    shared: Arc<Shared>,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    /// Guards worker spawning.
    grow: Mutex<()>,
}

impl ScanPool {
    fn new() -> ScanPool {
        ScanPool {
            shared: Arc::new(Shared {
                queues: (0..MAX_THREADS)
                    .map(|_| Mutex::new(&rank::EXEC_POOL_QUEUE, VecDeque::new()))
                    .collect(),
                idle: Mutex::new(&rank::EXEC_POOL_IDLE, ()),
                ready: Condvar::new(),
                pending: AtomicUsize::new(0),
                spawned: AtomicUsize::new(0),
            }),
            next: AtomicUsize::new(0),
            grow: Mutex::new(&rank::EXEC_POOL_GROW, ()),
        }
    }

    /// The process-wide pool.
    pub fn global() -> &'static ScanPool {
        static POOL: OnceLock<ScanPool> = OnceLock::new();
        POOL.get_or_init(ScanPool::new)
    }

    /// Workers currently spawned (excluding participating callers).
    pub fn workers(&self) -> usize {
        self.shared.spawned.load(Ordering::Acquire)
    }

    /// Spawn workers until at least `target` exist (capped at [`MAX_THREADS`]).
    fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_THREADS);
        if self.workers() >= target {
            return;
        }
        let _g = self.grow.lock();
        while self.shared.spawned.load(Ordering::Acquire) < target {
            let id = self.shared.spawned.load(Ordering::Acquire);
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("s2-scan-{id}"))
                .spawn(move || worker_loop(shared, id))
                .expect("spawn scan worker");
            self.shared.spawned.fetch_add(1, Ordering::Release);
            s2_obs::gauge!("exec.pool.workers").inc();
        }
    }

    fn submit(&self, job: Job) {
        let slots = self.workers().max(1);
        let q = self.next.fetch_add(1, Ordering::Relaxed) % slots;
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        s2_obs::gauge!("exec.pool.queue_depth").inc();
        self.shared.queues[q].lock().push_back(job);
        // Take the sleep lock so a worker between its pending-check and its
        // wait cannot miss this notification.
        let _g = self.shared.idle.lock();
        self.shared.ready.notify_one();
    }

    /// Execute `f` over `items` with up to `threads` executing threads (the
    /// caller counts as one), returning results in input order. `threads <=
    /// 1` or a single item short-circuits to a serial loop with no pool
    /// involvement at all.
    ///
    /// Panics in `f` are forwarded to the caller after every item finished
    /// or was drained.
    pub fn run<I, T, F>(&self, threads: usize, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        let n = items.len();
        if threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        self.ensure_workers(threads - 1);
        s2_obs::counter!("exec.pool.runs").inc();
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        for (idx, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.submit(Box::new(move || {
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(item)));
                s2_obs::counter!("exec.pool.morsels").inc();
                let _ = tx.send((idx, out));
            }));
        }
        drop(tx);
        // Participate: execute queued morsels (ours or anyone's) instead of
        // blocking, then wait for the stragglers running on workers.
        let mut results: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        let mut got = 0;
        while got < n {
            if let Some(job) = self.shared.pop(usize::MAX) {
                s2_obs::counter!("exec.pool.caller_morsels").inc();
                job();
                while let Ok((idx, r)) = rx.try_recv() {
                    results[idx] = Some(r);
                    got += 1;
                }
            } else {
                let (idx, r) = rx.recv().expect("scan pool result channel");
                results[idx] = Some(r);
                got += 1;
            }
        }
        results
            .into_iter()
            .map(|r| match r.expect("all results collected") {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    loop {
        if let Some(job) = shared.pop(id) {
            s2_obs::counter!("exec.pool.morsels").inc();
            job();
            continue;
        }
        let guard = shared.idle.lock();
        if shared.pending.load(Ordering::Acquire) > 0 {
            continue; // raced with a submit; retry the queues
        }
        // Timed wait so a missed wakeup can only ever cost one tick.
        let _ = shared.ready.wait_timeout(guard, Duration::from_millis(50));
    }
}

/// Resolve a thread-count request: an explicit `requested > 0` wins,
/// otherwise `S2_SCAN_THREADS`, otherwise the host's available parallelism.
/// Always at least 1, at most [`MAX_THREADS`].
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested.clamp(1, MAX_THREADS);
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("S2_SCAN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .clamp(1, MAX_THREADS)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_when_one_thread() {
        let out = ScanPool::global().run(1, vec![1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(ScanPool::global().run(8, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = ScanPool::global().run(8, items.clone(), |x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        assert!(ScanPool::global().workers() >= 1);
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let out = ScanPool::global().run(4, (0u64..8).collect(), |x| {
            ScanPool::global().run(4, (0u64..8).collect(), move |y| x * 8 + y).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|x| (0..8).map(|y| x * 8 + y).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            ScanPool::global().run(4, vec![0, 1, 2], |x| {
                if x == 1 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn effective_thread_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert_eq!(effective_threads(10_000), MAX_THREADS);
        assert!(effective_threads(0) >= 1);
    }
}
