//! Seekable column encodings for columnstore segments (paper §2.1.2).
//!
//! Each column of a segment is encoded independently; the same column may use
//! a different encoding in every segment, chosen by an analyzer from the
//! actual data. All encodings are *seekable*: a single row offset can be
//! decoded without decompressing the whole column, which is what makes OLTP
//! point reads viable on columnstore data.
//!
//! Supported encodings mirror the paper: plain, bit packing, dictionary,
//! run-length and an LZ77-style generic byte compressor (standing in for the
//! paper's LZ4). Dictionary and run-length encodings additionally support
//! *encoded execution* (paper §5.2): filters are evaluated directly on the
//! compressed representation via [`reader::ColumnReader::encoded_filter`].

pub mod encode;
pub mod lz;
pub mod reader;
pub mod vector;

pub use encode::{choose_encoding, encode_column, EncodedColumn, Encoding};
pub use reader::{CodePredicate, ColumnReader};
pub use vector::{ColumnVector, VectorBuilder};
