//! Typed columnar vectors: the in-flight data representation of the
//! vectorized execution engine (paper §2.1.2 "columnstore tables support
//! vectorized execution").
//!
//! A [`ColumnVector`] holds one column's worth of decoded values for a batch
//! of rows. Strings use an arena layout (offsets + bytes) so decoding a
//! segment column does not allocate per row.

use s2_common::{BitVec, DataType, Error, Result, Value};

/// A decoded column for a batch of rows.
#[derive(Debug, Clone)]
pub enum ColumnVector {
    /// 64-bit integers.
    Int {
        /// One entry per row (null rows hold 0).
        values: Vec<i64>,
        /// Set bits mark NULL rows.
        nulls: Option<BitVec>,
    },
    /// 64-bit floats.
    Double {
        /// One entry per row (null rows hold 0.0).
        values: Vec<f64>,
        /// Set bits mark NULL rows.
        nulls: Option<BitVec>,
    },
    /// Strings in arena layout.
    Str {
        /// `rows + 1` offsets into `bytes`.
        offsets: Vec<u32>,
        /// Concatenated UTF-8 payloads.
        bytes: Vec<u8>,
        /// Set bits mark NULL rows.
        nulls: Option<BitVec>,
    },
}

impl ColumnVector {
    /// Empty vector of the given type.
    pub fn empty(data_type: DataType) -> ColumnVector {
        match data_type {
            DataType::Int64 => ColumnVector::Int { values: Vec::new(), nulls: None },
            DataType::Double => ColumnVector::Double { values: Vec::new(), nulls: None },
            DataType::Str => ColumnVector::Str { offsets: vec![0], bytes: Vec::new(), nulls: None },
        }
    }

    /// Build from a slice of values (used by the rowstore scan path and tests).
    pub fn from_values(values: &[Value], data_type: DataType) -> Result<ColumnVector> {
        let mut b = VectorBuilder::new(data_type, values.len());
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnVector::Int { .. } => DataType::Int64,
            ColumnVector::Double { .. } => DataType::Double,
            ColumnVector::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Int { values, .. } => values.len(),
            ColumnVector::Double { values, .. } => values.len(),
            ColumnVector::Str { offsets, .. } => offsets.len() - 1,
        }
    }

    /// True when the vector holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVector::Int { nulls, .. }
            | ColumnVector::Double { nulls, .. }
            | ColumnVector::Str { nulls, .. } => nulls.as_ref().is_some_and(|n| n.get(i)),
        }
    }

    /// Integer at row `i` ignoring nullness (callers check [`Self::is_null`]).
    #[inline]
    pub fn int_at(&self, i: usize) -> i64 {
        match self {
            ColumnVector::Int { values, .. } => values[i],
            _ => panic!("int_at on non-int vector"),
        }
    }

    /// Double at row `i`, widening ints.
    #[inline]
    pub fn double_at(&self, i: usize) -> f64 {
        match self {
            ColumnVector::Double { values, .. } => values[i],
            ColumnVector::Int { values, .. } => values[i] as f64,
            _ => panic!("double_at on non-numeric vector"),
        }
    }

    /// String at row `i` ignoring nullness.
    #[inline]
    pub fn str_at(&self, i: usize) -> &str {
        match self {
            ColumnVector::Str { offsets, bytes, .. } => {
                let s = offsets[i] as usize;
                let e = offsets[i + 1] as usize;
                // SAFETY: these bytes were produced by encoding valid &str
                // values and the offsets delimit whole strings, so the slice
                // is valid UTF-8; re-validation is skipped on the hot path.
                unsafe { std::str::from_utf8_unchecked(&bytes[s..e]) }
            }
            _ => panic!("str_at on non-str vector"),
        }
    }

    /// Value at row `i` (allocates for strings).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            ColumnVector::Int { values, .. } => Value::Int(values[i]),
            ColumnVector::Double { values, .. } => Value::Double(values[i]),
            ColumnVector::Str { .. } => Value::str(self.str_at(i)),
        }
    }

    /// Gather the given rows into a new vector.
    pub fn gather(&self, sel: &[u32]) -> ColumnVector {
        let mut b = VectorBuilder::new(self.data_type(), sel.len());
        for &i in sel {
            let i = i as usize;
            if self.is_null(i) {
                b.push_null();
            } else {
                match self {
                    ColumnVector::Int { values, .. } => b.push_int(values[i]),
                    ColumnVector::Double { values, .. } => b.push_double(values[i]),
                    ColumnVector::Str { .. } => b.push_str(self.str_at(i)),
                }
            }
        }
        b.finish()
    }
}

/// Incremental builder for [`ColumnVector`].
#[derive(Debug)]
pub struct VectorBuilder {
    data_type: DataType,
    ints: Vec<i64>,
    doubles: Vec<f64>,
    offsets: Vec<u32>,
    bytes: Vec<u8>,
    null_rows: Vec<usize>,
    rows: usize,
}

impl VectorBuilder {
    /// New builder for `data_type` with row-capacity hint.
    pub fn new(data_type: DataType, capacity: usize) -> VectorBuilder {
        let mut b = VectorBuilder {
            data_type,
            ints: Vec::new(),
            doubles: Vec::new(),
            offsets: Vec::new(),
            bytes: Vec::new(),
            null_rows: Vec::new(),
            rows: 0,
        };
        match data_type {
            DataType::Int64 => b.ints.reserve(capacity),
            DataType::Double => b.doubles.reserve(capacity),
            DataType::Str => {
                b.offsets.reserve(capacity + 1);
                b.offsets.push(0);
            }
        }
        b
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Push a NULL row.
    pub fn push_null(&mut self) {
        self.null_rows.push(self.rows);
        match self.data_type {
            DataType::Int64 => self.ints.push(0),
            DataType::Double => self.doubles.push(0.0),
            DataType::Str => self.offsets.push(*self.offsets.last().unwrap()),
        }
        self.rows += 1;
    }

    /// Push an integer row.
    pub fn push_int(&mut self, v: i64) {
        debug_assert_eq!(self.data_type, DataType::Int64);
        self.ints.push(v);
        self.rows += 1;
    }

    /// Push a double row.
    pub fn push_double(&mut self, v: f64) {
        debug_assert_eq!(self.data_type, DataType::Double);
        self.doubles.push(v);
        self.rows += 1;
    }

    /// Push a string row.
    pub fn push_str(&mut self, s: &str) {
        debug_assert_eq!(self.data_type, DataType::Str);
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(self.bytes.len() as u32);
        self.rows += 1;
    }

    /// Push any value, type-checking against the builder's type.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self.data_type, v) {
            (_, Value::Null) => self.push_null(),
            (DataType::Int64, Value::Int(i)) => self.push_int(*i),
            (DataType::Double, Value::Double(d)) => self.push_double(*d),
            (DataType::Double, Value::Int(i)) => self.push_double(*i as f64),
            (DataType::Str, Value::Str(s)) => self.push_str(s),
            (dt, v) => {
                return Err(Error::InvalidArgument(format!("cannot push {v} into {dt:?} vector")))
            }
        }
        Ok(())
    }

    /// Finish into a [`ColumnVector`].
    pub fn finish(self) -> ColumnVector {
        let nulls = if self.null_rows.is_empty() {
            None
        } else {
            let mut n = BitVec::zeros(self.rows);
            for r in self.null_rows {
                n.set(r);
            }
            Some(n)
        };
        match self.data_type {
            DataType::Int64 => ColumnVector::Int { values: self.ints, nulls },
            DataType::Double => ColumnVector::Double { values: self.doubles, nulls },
            DataType::Str => ColumnVector::Str { offsets: self.offsets, bytes: self.bytes, nulls },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(-3)];
        let v = ColumnVector::from_values(&vals, DataType::Int64).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.value(0), Value::Int(1));
        assert_eq!(v.value(1), Value::Null);
        assert_eq!(v.value(2), Value::Int(-3));
    }

    #[test]
    fn string_arena() {
        let vals = vec![Value::str("ab"), Value::str(""), Value::Null, Value::str("xyz")];
        let v = ColumnVector::from_values(&vals, DataType::Str).unwrap();
        assert_eq!(v.str_at(0), "ab");
        assert_eq!(v.str_at(1), "");
        assert!(v.is_null(2));
        assert_eq!(v.str_at(3), "xyz");
    }

    #[test]
    fn gather() {
        let vals: Vec<Value> = (0..10).map(Value::Int).collect();
        let v = ColumnVector::from_values(&vals, DataType::Int64).unwrap();
        let g = v.gather(&[9, 0, 5]);
        assert_eq!(g.value(0), Value::Int(9));
        assert_eq!(g.value(1), Value::Int(0));
        assert_eq!(g.value(2), Value::Int(5));
    }

    #[test]
    fn int_widens_into_double_builder() {
        let v = ColumnVector::from_values(&[Value::Int(2)], DataType::Double).unwrap();
        assert_eq!(v.double_at(0), 2.0);
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(ColumnVector::from_values(&[Value::str("x")], DataType::Int64).is_err());
    }
}
