//! Decoding: random access (`value`), vectorized decode (`decode_vector`)
//! and encoded execution (`encoded_filter`) over an [`EncodedColumn`].
//!
//! All decode paths are *seekable* (paper §2.1.2): `value(row)` touches only
//! the bytes needed for that row — O(1) for plain/bit-packed/dictionary
//! columns, O(log runs) for RLE, and one block decompression (cached) for LZ.

use s2_common::sync::{rank, Mutex};
use std::sync::Arc;

use s2_common::io::ByteReader;
use s2_common::{BitVec, DataType, Error, Result, Value};

use crate::encode::{EncodedColumn, Encoding};
use crate::vector::{ColumnVector, VectorBuilder};

/// Read one `width`-bit lane at `idx` from a packed bit stream starting at
/// byte `bits_off`.
#[inline]
fn read_packed(data: &[u8], bits_off: usize, width: u8, idx: usize) -> u64 {
    if width == 0 {
        return 0;
    }
    let bit_start = idx * width as usize;
    let byte_start = bits_off + bit_start / 8;
    let shift = bit_start % 8;
    let mut buf = [0u8; 16];
    let avail = (data.len() - byte_start).min(16);
    buf[..avail].copy_from_slice(&data[byte_start..byte_start + avail]);
    let v = u128::from_le_bytes(buf) >> shift;
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    (v as u64) & mask
}

#[derive(Debug)]
enum Inner {
    PlainInt {
        values_off: usize,
    },
    PlainDouble {
        values_off: usize,
    },
    PlainStr {
        offsets_off: usize,
        bytes_off: usize,
    },
    BitPack {
        base: i64,
        width: u8,
        bits_off: usize,
    },
    Rle {
        n_runs: usize,
        values_off: usize,
        ends_off: usize,
    },
    DictStr {
        dict_len: usize,
        dict_offsets_off: usize,
        dict_bytes_off: usize,
        width: u8,
        codes_off: usize,
    },
    DictInt {
        dict_len: usize,
        dict_off: usize,
        width: u8,
        codes_off: usize,
    },
    LzStr {
        /// Byte offset of block `i` relative to `blocks_off`, with a final sentinel.
        dir: Vec<u64>,
        blocks_off: usize,
        /// Cache of the most recently decompressed block (block idx, plain layout).
        cache: Mutex<Option<(usize, Arc<Vec<u8>>)>>,
    },
}

/// A parsed, random-access view over one encoded column.
#[derive(Debug)]
pub struct ColumnReader {
    data: Arc<Vec<u8>>,
    rows: usize,
    encoding: Encoding,
    nulls: Option<BitVec>,
    inner: Inner,
}

impl ColumnReader {
    /// Parse the blob header and per-encoding layout.
    pub fn open(col: &EncodedColumn) -> Result<ColumnReader> {
        let data = Arc::clone(&col.data);
        let mut r = ByteReader::new(&data);
        let tag = r.get_u8()?;
        if tag != col.encoding as u8 {
            return Err(Error::Corruption(format!(
                "encoding tag mismatch: blob has {tag}, descriptor says {:?}",
                col.encoding
            )));
        }
        let rows = r.get_varint()? as usize;
        let has_nulls = r.get_u8()? != 0;
        let nulls = if has_nulls { Some(BitVec::read_from(&mut r)?) } else { None };

        let inner = match col.encoding {
            Encoding::PlainInt => Inner::PlainInt { values_off: r.position() },
            Encoding::PlainDouble => Inner::PlainDouble { values_off: r.position() },
            Encoding::PlainStr => {
                let offsets_off = r.position();
                Inner::PlainStr { offsets_off, bytes_off: offsets_off + (rows + 1) * 4 }
            }
            Encoding::BitPackInt => {
                let base = r.get_i64()?;
                let width = r.get_u8()?;
                if width > 64 {
                    return Err(Error::Corruption(format!("bitpack width {width} > 64")));
                }
                Inner::BitPack { base, width, bits_off: r.position() }
            }
            Encoding::RleInt => {
                let n_runs = r.get_varint()? as usize;
                let values_off = r.position();
                let ends_off = values_off + n_runs * 8;
                Inner::Rle { n_runs, values_off, ends_off }
            }
            Encoding::DictStr => {
                let dict_len = r.get_varint()? as usize;
                let layout_len = r.get_varint()? as usize;
                let dict_offsets_off = r.position();
                let dict_bytes_off = dict_offsets_off + (dict_len + 1) * 4;
                r.seek(dict_offsets_off + layout_len)?;
                let width = r.get_u8()?;
                Inner::DictStr {
                    dict_len,
                    dict_offsets_off,
                    dict_bytes_off,
                    width,
                    codes_off: r.position(),
                }
            }
            Encoding::DictInt => {
                let dict_len = r.get_varint()? as usize;
                let dict_off = r.position();
                r.seek(dict_off + dict_len * 8)?;
                let width = r.get_u8()?;
                Inner::DictInt { dict_len, dict_off, width, codes_off: r.position() }
            }
            Encoding::LzStr => {
                let n_blocks = r.get_varint()? as usize;
                let mut dir = Vec::with_capacity(n_blocks + 1);
                for _ in 0..=n_blocks {
                    dir.push(r.get_varint()?);
                }
                Inner::LzStr {
                    dir,
                    blocks_off: r.position(),
                    cache: Mutex::new(&rank::ENCODING_READER, None),
                }
            }
        };
        Ok(ColumnReader { data, rows, encoding: col.encoding, nulls, inner })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Encoding in use.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Logical data type implied by the encoding.
    pub fn data_type(&self) -> DataType {
        match self.encoding {
            Encoding::PlainInt | Encoding::BitPackInt | Encoding::RleInt | Encoding::DictInt => {
                DataType::Int64
            }
            Encoding::PlainDouble => DataType::Double,
            Encoding::PlainStr | Encoding::DictStr | Encoding::LzStr => DataType::Str,
        }
    }

    /// Dictionary size, for encodings that have one (used by filter costing).
    pub fn dict_len(&self) -> Option<usize> {
        match &self.inner {
            Inner::DictStr { dict_len, .. } | Inner::DictInt { dict_len, .. } => Some(*dict_len),
            _ => None,
        }
    }

    /// Size of the compressed domain an encoded filter must evaluate the
    /// predicate over: dictionary entries or runs. The scan's filter costing
    /// uses this — an encoded filter is "ideal with a small set of possible
    /// values" (paper §5.2) and counterproductive when the domain approaches
    /// the row count.
    pub fn encoded_domain_size(&self) -> Option<usize> {
        match &self.inner {
            Inner::DictStr { dict_len, .. } | Inner::DictInt { dict_len, .. } => Some(*dict_len),
            Inner::Rle { n_runs, .. } => Some(*n_runs),
            _ => None,
        }
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n.get(i))
    }

    #[inline]
    fn i64_at(&self, off: usize) -> i64 {
        i64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    #[inline]
    fn u32_at(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// Find the run containing `row` via binary search over cumulative ends.
    fn rle_run_of(&self, row: usize, n_runs: usize, ends_off: usize) -> usize {
        let target = row as u32;
        let mut lo = 0usize;
        let mut hi = n_runs;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.u32_at(ends_off + mid * 4) <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn dict_str_entry(&self, code: usize) -> &str {
        if let Inner::DictStr { dict_offsets_off, dict_bytes_off, .. } = &self.inner {
            let s = self.u32_at(dict_offsets_off + code * 4) as usize;
            let e = self.u32_at(dict_offsets_off + (code + 1) * 4) as usize;
            std::str::from_utf8(&self.data[dict_bytes_off + s..dict_bytes_off + e])
                .expect("dictionary bytes validated at encode time")
        } else {
            unreachable!()
        }
    }

    fn lz_block(&self, block: usize) -> Result<Arc<Vec<u8>>> {
        if let Inner::LzStr { dir, blocks_off, cache } = &self.inner {
            {
                let guard = cache.lock();
                if let Some((idx, layout)) = guard.as_ref() {
                    if *idx == block {
                        return Ok(Arc::clone(layout));
                    }
                }
            }
            let start = blocks_off + dir[block] as usize;
            let end = blocks_off + dir[block + 1] as usize;
            let layout = Arc::new(crate::lz::decompress(&self.data[start..end])?);
            *cache.lock() = Some((block, Arc::clone(&layout)));
            Ok(layout)
        } else {
            unreachable!()
        }
    }

    /// Decode the value at `row` (seekable point read).
    pub fn value(&self, row: usize) -> Result<Value> {
        if row >= self.rows {
            return Err(Error::InvalidArgument(format!(
                "row {row} out of range ({} rows)",
                self.rows
            )));
        }
        if self.is_null(row) {
            return Ok(Value::Null);
        }
        Ok(match &self.inner {
            Inner::PlainInt { values_off } => Value::Int(self.i64_at(values_off + row * 8)),
            Inner::PlainDouble { values_off } => {
                Value::Double(f64::from_bits(self.i64_at(values_off + row * 8) as u64))
            }
            Inner::PlainStr { offsets_off, bytes_off } => {
                let s = self.u32_at(offsets_off + row * 4) as usize;
                let e = self.u32_at(offsets_off + (row + 1) * 4) as usize;
                let raw = &self.data[bytes_off + s..bytes_off + e];
                Value::str(std::str::from_utf8(raw).map_err(|e| {
                    Error::Corruption(format!("invalid utf-8 in plain str column: {e}"))
                })?)
            }
            Inner::BitPack { base, width, bits_off } => {
                let delta = read_packed(&self.data, *bits_off, *width, row);
                Value::Int((*base as i128 + delta as i128) as i64)
            }
            Inner::Rle { n_runs, values_off, ends_off } => {
                let run = self.rle_run_of(row, *n_runs, *ends_off);
                Value::Int(self.i64_at(values_off + run * 8))
            }
            Inner::DictStr { width, codes_off, .. } => {
                let code = read_packed(&self.data, *codes_off, *width, row) as usize;
                Value::str(self.dict_str_entry(code))
            }
            Inner::DictInt { dict_off, width, codes_off, .. } => {
                let code = read_packed(&self.data, *codes_off, *width, row) as usize;
                Value::Int(self.i64_at(dict_off + code * 8))
            }
            Inner::LzStr { .. } => {
                let block = row / crate::encode::LZ_BLOCK_ROWS;
                let local = row % crate::encode::LZ_BLOCK_ROWS;
                let layout = self.lz_block(block)?;
                let block_rows = self.block_rows(block);
                let s = u32_from(&layout, local * 4) as usize;
                let e = u32_from(&layout, (local + 1) * 4) as usize;
                let bytes_base = (block_rows + 1) * 4;
                let raw = &layout[bytes_base + s..bytes_base + e];
                Value::str(std::str::from_utf8(raw).map_err(|e| {
                    Error::Corruption(format!("invalid utf-8 in lz str column: {e}"))
                })?)
            }
        })
    }

    fn block_rows(&self, block: usize) -> usize {
        let start = block * crate::encode::LZ_BLOCK_ROWS;
        (self.rows - start).min(crate::encode::LZ_BLOCK_ROWS)
    }

    /// Decode rows into a typed vector. With `sel = None` decodes every row;
    /// otherwise only the selected row offsets (late materialization,
    /// paper §2.1.2: "only decoding columns if data in them qualifies").
    pub fn decode_vector(&self, sel: Option<&[u32]>) -> Result<ColumnVector> {
        let count = sel.map_or(self.rows, <[u32]>::len);
        let mut b = VectorBuilder::new(self.data_type(), count);
        match sel {
            None => {
                for row in 0..self.rows {
                    self.push_row(&mut b, row)?;
                }
            }
            Some(sel) => {
                for &row in sel {
                    self.push_row(&mut b, row as usize)?;
                }
            }
        }
        Ok(b.finish())
    }

    #[inline]
    fn push_row(&self, b: &mut VectorBuilder, row: usize) -> Result<()> {
        if self.is_null(row) {
            b.push_null();
            return Ok(());
        }
        match &self.inner {
            Inner::PlainInt { values_off } => b.push_int(self.i64_at(values_off + row * 8)),
            Inner::PlainDouble { values_off } => {
                b.push_double(f64::from_bits(self.i64_at(values_off + row * 8) as u64))
            }
            Inner::BitPack { base, width, bits_off } => {
                let delta = read_packed(&self.data, *bits_off, *width, row);
                b.push_int((*base as i128 + delta as i128) as i64);
            }
            Inner::Rle { n_runs, values_off, ends_off } => {
                let run = self.rle_run_of(row, *n_runs, *ends_off);
                b.push_int(self.i64_at(values_off + run * 8));
            }
            Inner::DictInt { dict_off, width, codes_off, .. } => {
                let code = read_packed(&self.data, *codes_off, *width, row) as usize;
                b.push_int(self.i64_at(dict_off + code * 8));
            }
            _ => match self.value(row)? {
                Value::Str(s) => b.push_str(&s),
                Value::Null => b.push_null(),
                v => b.push(&v)?,
            },
        }
        Ok(())
    }

    /// Decode every row into owned values (test/debug convenience).
    pub fn decode_all(&self) -> Result<Vec<Value>> {
        (0..self.rows).map(|i| self.value(i)).collect()
    }

    /// Evaluate `pred` directly on the compressed representation
    /// (paper §5.2 "encoded filter").
    ///
    /// Returns `Ok(None)` if this encoding does not support encoded
    /// execution; the caller falls back to a regular (decode-then-filter)
    /// strategy. With `sel = Some(..)` only the given rows are considered.
    pub fn encoded_filter(
        &self,
        pred: &mut dyn FnMut(&Value) -> bool,
        sel: Option<&[u32]>,
    ) -> Result<Option<Vec<u32>>> {
        let null_passes = pred(&Value::Null);
        match &self.inner {
            Inner::DictStr { dict_len, width, codes_off, .. } => {
                let mut table = Vec::with_capacity(*dict_len);
                for code in 0..*dict_len {
                    table.push(pred(&Value::str(self.dict_str_entry(code))));
                }
                Ok(Some(self.filter_by_code_table(&table, null_passes, *width, *codes_off, sel)))
            }
            Inner::DictInt { dict_len, dict_off, width, codes_off } => {
                let mut table = Vec::with_capacity(*dict_len);
                for code in 0..*dict_len {
                    table.push(pred(&Value::Int(self.i64_at(dict_off + code * 8))));
                }
                Ok(Some(self.filter_by_code_table(&table, null_passes, *width, *codes_off, sel)))
            }
            Inner::Rle { n_runs, values_off, ends_off } => {
                let mut out = Vec::new();
                let mut run_pass = Vec::with_capacity(*n_runs);
                for run in 0..*n_runs {
                    run_pass.push(pred(&Value::Int(self.i64_at(values_off + run * 8))));
                }
                match sel {
                    None => {
                        let mut start = 0u32;
                        for (run, pass) in run_pass.iter().enumerate() {
                            let end = self.u32_at(ends_off + run * 4);
                            if *pass {
                                for row in start..end {
                                    let passes =
                                        if self.is_null(row as usize) { null_passes } else { true };
                                    if passes {
                                        out.push(row);
                                    }
                                }
                            } else if null_passes && self.nulls.is_some() {
                                for row in start..end {
                                    if self.is_null(row as usize) {
                                        out.push(row);
                                    }
                                }
                            }
                            start = end;
                        }
                    }
                    Some(sel) => {
                        for &row in sel {
                            let passes = if self.is_null(row as usize) {
                                null_passes
                            } else {
                                let run = self.rle_run_of(row as usize, *n_runs, *ends_off);
                                run_pass[run]
                            };
                            if passes {
                                out.push(row);
                            }
                        }
                    }
                }
                Ok(Some(out))
            }
            _ => Ok(None),
        }
    }

    fn filter_by_code_table(
        &self,
        table: &[bool],
        null_passes: bool,
        width: u8,
        codes_off: usize,
        sel: Option<&[u32]>,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        let mut consider = |row: u32| {
            let passes = if self.is_null(row as usize) {
                null_passes
            } else {
                let code = read_packed(&self.data, codes_off, width, row as usize) as usize;
                table[code]
            };
            if passes {
                out.push(row);
            }
        };
        match sel {
            None => (0..self.rows as u32).for_each(&mut consider),
            Some(sel) => sel.iter().copied().for_each(&mut consider),
        }
        out
    }
}

#[inline]
fn u32_from(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_column;

    fn reader(values: &[Value], dt: DataType, enc: Option<Encoding>) -> ColumnReader {
        ColumnReader::open(&encode_column(values, dt, enc).unwrap()).unwrap()
    }

    #[test]
    fn decode_vector_full_and_selected() {
        let values: Vec<Value> = (0..100).map(|i| Value::Int(i * 2)).collect();
        let r = reader(&values, DataType::Int64, None);
        let full = r.decode_vector(None).unwrap();
        assert_eq!(full.len(), 100);
        assert_eq!(full.int_at(50), 100);
        let sel = r.decode_vector(Some(&[3, 97])).unwrap();
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.int_at(0), 6);
        assert_eq!(sel.int_at(1), 194);
    }

    #[test]
    fn encoded_filter_dict_str() {
        let values: Vec<Value> = (0..60).map(|i| Value::str(["a", "b", "c"][i % 3])).collect();
        let r = reader(&values, DataType::Str, Some(Encoding::DictStr));
        let sel = r
            .encoded_filter(&mut |v| matches!(v, Value::Str(s) if s.as_ref() == "b"), None)
            .unwrap()
            .unwrap();
        assert_eq!(sel.len(), 20);
        assert!(sel.iter().all(|&i| i % 3 == 1));
    }

    #[test]
    fn encoded_filter_respects_input_selection() {
        let values: Vec<Value> = (0..50).map(|i| Value::Int(i % 5)).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::DictInt));
        let input: Vec<u32> = (0..25).collect();
        let sel = r
            .encoded_filter(&mut |v| matches!(v, Value::Int(i) if *i == 0), Some(&input))
            .unwrap()
            .unwrap();
        assert_eq!(sel, vec![0, 5, 10, 15, 20]);
    }

    #[test]
    fn encoded_filter_rle_ranges() {
        let values: Vec<Value> = (0..90).map(|i| Value::Int(i / 30)).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::RleInt));
        let sel = r
            .encoded_filter(&mut |v| matches!(v, Value::Int(i) if *i == 1), None)
            .unwrap()
            .unwrap();
        assert_eq!(sel, (30u32..60).collect::<Vec<_>>());
    }

    #[test]
    fn encoded_filter_handles_nulls() {
        let values: Vec<Value> =
            (0..30).map(|i| if i % 10 == 0 { Value::Null } else { Value::Int(i % 3) }).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::DictInt));
        // IS NULL predicate.
        let sel = r.encoded_filter(&mut |v| v.is_null(), None).unwrap().unwrap();
        assert_eq!(sel, vec![0, 10, 20]);
    }

    #[test]
    fn plain_has_no_encoded_path() {
        let values: Vec<Value> = (0..10).map(Value::Int).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::PlainInt));
        assert!(r.encoded_filter(&mut |_| true, None).unwrap().is_none());
    }

    #[test]
    fn lz_point_reads_cross_blocks() {
        let values: Vec<Value> = (0..1500)
            .map(|i| Value::str(format!("some row payload with id {i} and padding padding")))
            .collect();
        let r = reader(&values, DataType::Str, Some(Encoding::LzStr));
        // Probe across block boundaries (block = 512 rows).
        for row in [0usize, 511, 512, 1023, 1024, 1499] {
            assert_eq!(r.value(row).unwrap(), values[row]);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let r = reader(&[Value::Int(1)], DataType::Int64, None);
        assert!(r.value(1).is_err());
    }

    #[test]
    fn rle_binary_search_boundaries() {
        let values: Vec<Value> =
            vec![Value::Int(5); 10].into_iter().chain(vec![Value::Int(9); 10]).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::RleInt));
        assert_eq!(r.value(9).unwrap(), Value::Int(5));
        assert_eq!(r.value(10).unwrap(), Value::Int(9));
    }
}
