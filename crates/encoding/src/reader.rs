//! Decoding: random access (`value`), vectorized decode (`decode_vector`)
//! and encoded execution (`encoded_filter`) over an [`EncodedColumn`].
//!
//! All decode paths are *seekable* (paper §2.1.2): `value(row)` touches only
//! the bytes needed for that row — O(1) for plain/bit-packed/dictionary
//! columns, O(log runs) for RLE, and one block decompression (cached) for LZ.

use s2_common::sync::{rank, Mutex};
use std::sync::Arc;

use s2_common::io::ByteReader;
use s2_common::{BitVec, DataType, Error, Result, Value};

use crate::encode::{EncodedColumn, Encoding};
use crate::vector::{ColumnVector, VectorBuilder};

/// Sequentially unpack `n` `width`-bit lanes starting at byte `bits_off`,
/// using a rolling accumulator instead of a per-lane buffered read. This is
/// the bulk path behind full-column decode and code-slice extraction; the
/// per-lane [`read_packed`] remains for point reads and sparse selections.
fn unpack_all(data: &[u8], bits_off: usize, width: u8, n: usize) -> Vec<u64> {
    if width == 0 {
        return vec![0; n];
    }
    let width = width as u32;
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    let mut out = Vec::with_capacity(n);
    let mut acc: u128 = 0;
    let mut bits: u32 = 0;
    let mut pos = bits_off;
    for _ in 0..n {
        while bits < width {
            acc |= (data[pos] as u128) << bits;
            pos += 1;
            bits += 8;
        }
        out.push((acc as u64) & mask);
        acc >>= width;
        bits -= width;
    }
    out
}

/// Read one `width`-bit lane at `idx` from a packed bit stream starting at
/// byte `bits_off`.
#[inline]
fn read_packed(data: &[u8], bits_off: usize, width: u8, idx: usize) -> u64 {
    if width == 0 {
        return 0;
    }
    let bit_start = idx * width as usize;
    let byte_start = bits_off + bit_start / 8;
    let shift = bit_start % 8;
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    // Fast path: the lane fits in one aligned-enough u64 window.
    if byte_start + 8 <= data.len() && shift + width as usize <= 64 {
        let v = u64::from_le_bytes(data[byte_start..byte_start + 8].try_into().unwrap()) >> shift;
        return v & mask;
    }
    let mut buf = [0u8; 16];
    let avail = (data.len() - byte_start).min(16);
    buf[..avail].copy_from_slice(&data[byte_start..byte_start + avail]);
    let v = u128::from_le_bytes(buf) >> shift;
    (v as u64) & mask
}

#[derive(Debug)]
enum Inner {
    PlainInt {
        values_off: usize,
    },
    PlainDouble {
        values_off: usize,
    },
    PlainStr {
        offsets_off: usize,
        bytes_off: usize,
    },
    BitPack {
        base: i64,
        width: u8,
        bits_off: usize,
    },
    Rle {
        n_runs: usize,
        values_off: usize,
        ends_off: usize,
    },
    DictStr {
        dict_len: usize,
        dict_offsets_off: usize,
        dict_bytes_off: usize,
        width: u8,
        codes_off: usize,
    },
    DictInt {
        dict_len: usize,
        dict_off: usize,
        width: u8,
        codes_off: usize,
    },
    LzStr {
        /// Byte offset of block `i` relative to `blocks_off`, with a final sentinel.
        dir: Vec<u64>,
        blocks_off: usize,
        /// Cache of the most recently decompressed block (block idx, plain layout).
        cache: Mutex<Option<(usize, Arc<Vec<u8>>)>>,
    },
}

/// A filter clause compiled into one segment column's code domain
/// (paper §5.2 "encoded filter"): one accept bit per dictionary entry or
/// run, plus the predicate's verdict on NULL. Built once per segment by
/// [`ColumnReader::compile_predicate`], evaluated bitmap-first over every
/// row by [`ColumnReader::predicate_mask`].
#[derive(Debug, Clone)]
pub struct CodePredicate {
    /// `accept[d]` = the predicate passes for domain entry `d`.
    accept: BitVec,
    /// Whether a NULL row passes.
    null_passes: bool,
}

impl CodePredicate {
    /// Number of accepted domain entries (filter costing / tests).
    pub fn accepted(&self) -> usize {
        self.accept.count_ones()
    }
}

/// A parsed, random-access view over one encoded column.
#[derive(Debug)]
pub struct ColumnReader {
    data: Arc<Vec<u8>>,
    rows: usize,
    encoding: Encoding,
    nulls: Option<BitVec>,
    inner: Inner,
}

impl ColumnReader {
    /// Parse the blob header and per-encoding layout.
    pub fn open(col: &EncodedColumn) -> Result<ColumnReader> {
        let data = Arc::clone(&col.data);
        let mut r = ByteReader::new(&data);
        let tag = r.get_u8()?;
        if tag != col.encoding as u8 {
            return Err(Error::Corruption(format!(
                "encoding tag mismatch: blob has {tag}, descriptor says {:?}",
                col.encoding
            )));
        }
        let rows = r.get_varint()? as usize;
        let has_nulls = r.get_u8()? != 0;
        let nulls = if has_nulls { Some(BitVec::read_from(&mut r)?) } else { None };

        let inner = match col.encoding {
            Encoding::PlainInt => Inner::PlainInt { values_off: r.position() },
            Encoding::PlainDouble => Inner::PlainDouble { values_off: r.position() },
            Encoding::PlainStr => {
                let offsets_off = r.position();
                Inner::PlainStr { offsets_off, bytes_off: offsets_off + (rows + 1) * 4 }
            }
            Encoding::BitPackInt => {
                let base = r.get_i64()?;
                let width = r.get_u8()?;
                if width > 64 {
                    return Err(Error::Corruption(format!("bitpack width {width} > 64")));
                }
                Inner::BitPack { base, width, bits_off: r.position() }
            }
            Encoding::RleInt => {
                let n_runs = r.get_varint()? as usize;
                let values_off = r.position();
                let ends_off = values_off + n_runs * 8;
                Inner::Rle { n_runs, values_off, ends_off }
            }
            Encoding::DictStr => {
                let dict_len = r.get_varint()? as usize;
                let layout_len = r.get_varint()? as usize;
                let dict_offsets_off = r.position();
                let dict_bytes_off = dict_offsets_off + (dict_len + 1) * 4;
                r.seek(dict_offsets_off + layout_len)?;
                let width = r.get_u8()?;
                Inner::DictStr {
                    dict_len,
                    dict_offsets_off,
                    dict_bytes_off,
                    width,
                    codes_off: r.position(),
                }
            }
            Encoding::DictInt => {
                let dict_len = r.get_varint()? as usize;
                let dict_off = r.position();
                r.seek(dict_off + dict_len * 8)?;
                let width = r.get_u8()?;
                Inner::DictInt { dict_len, dict_off, width, codes_off: r.position() }
            }
            Encoding::LzStr => {
                let n_blocks = r.get_varint()? as usize;
                let mut dir = Vec::with_capacity(n_blocks + 1);
                for _ in 0..=n_blocks {
                    dir.push(r.get_varint()?);
                }
                Inner::LzStr {
                    dir,
                    blocks_off: r.position(),
                    cache: Mutex::new(&rank::ENCODING_READER, None),
                }
            }
        };
        Ok(ColumnReader { data, rows, encoding: col.encoding, nulls, inner })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Encoding in use.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Logical data type implied by the encoding.
    pub fn data_type(&self) -> DataType {
        match self.encoding {
            Encoding::PlainInt | Encoding::BitPackInt | Encoding::RleInt | Encoding::DictInt => {
                DataType::Int64
            }
            Encoding::PlainDouble => DataType::Double,
            Encoding::PlainStr | Encoding::DictStr | Encoding::LzStr => DataType::Str,
        }
    }

    /// Dictionary size, for encodings that have one (used by filter costing).
    pub fn dict_len(&self) -> Option<usize> {
        match &self.inner {
            Inner::DictStr { dict_len, .. } | Inner::DictInt { dict_len, .. } => Some(*dict_len),
            _ => None,
        }
    }

    /// Size of the compressed domain an encoded filter must evaluate the
    /// predicate over: dictionary entries or runs. The scan's filter costing
    /// uses this — an encoded filter is "ideal with a small set of possible
    /// values" (paper §5.2) and counterproductive when the domain approaches
    /// the row count.
    pub fn encoded_domain_size(&self) -> Option<usize> {
        match &self.inner {
            Inner::DictStr { dict_len, .. } | Inner::DictInt { dict_len, .. } => Some(*dict_len),
            Inner::Rle { n_runs, .. } => Some(*n_runs),
            _ => None,
        }
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n.get(i))
    }

    /// The column's null bitmap, if any rows are NULL (zero-copy view).
    pub fn nulls(&self) -> Option<&BitVec> {
        self.nulls.as_ref()
    }

    /// Bulk-unpacked dictionary code per row, for dictionary encodings.
    /// NULL rows carry the code the encoder stored for them (a real dict
    /// entry holding the default value) — callers must mask with
    /// [`Self::nulls`].
    pub fn codes(&self) -> Option<Vec<u32>> {
        match &self.inner {
            Inner::DictStr { width, codes_off, .. } | Inner::DictInt { width, codes_off, .. } => {
                Some(
                    unpack_all(&self.data, *codes_off, *width, self.rows)
                        .into_iter()
                        .map(|c| c as u32)
                        .collect(),
                )
            }
            _ => None,
        }
    }

    /// Decode one dictionary entry as a [`Value`] (group-key
    /// materialization on the encoded aggregation path).
    pub fn dict_value(&self, code: usize) -> Option<Value> {
        match &self.inner {
            Inner::DictStr { .. } => Some(Value::str(self.dict_str_entry(code))),
            Inner::DictInt { dict_off, .. } => Some(Value::Int(self.i64_at(dict_off + code * 8))),
            _ => None,
        }
    }

    /// RLE runs as `(value, start, end)` row ranges, for run-length columns.
    /// NULL rows sit inside runs like any other — mask with [`Self::nulls`].
    pub fn runs(&self) -> Option<Vec<(i64, u32, u32)>> {
        if let Inner::Rle { n_runs, values_off, ends_off } = &self.inner {
            let mut out = Vec::with_capacity(*n_runs);
            let mut start = 0u32;
            for run in 0..*n_runs {
                let end = self.u32_at(ends_off + run * 4);
                out.push((self.i64_at(values_off + run * 8), start, end));
                start = end;
            }
            Some(out)
        } else {
            None
        }
    }

    /// Compile `pred` into the column's code domain (paper §5.2): the
    /// predicate is evaluated once per dictionary entry (or run value) into
    /// an accept bitmap, after which per-row evaluation is a single bitmap
    /// probe via [`Self::predicate_mask`]. Returns `None` when the encoding
    /// has no compressed domain to compile against.
    pub fn compile_predicate(&self, pred: &mut dyn FnMut(&Value) -> bool) -> Option<CodePredicate> {
        let null_passes = pred(&Value::Null);
        let accept = match &self.inner {
            Inner::DictStr { dict_len, .. } => {
                let mut a = BitVec::zeros(*dict_len);
                for code in 0..*dict_len {
                    if pred(&Value::str(self.dict_str_entry(code))) {
                        a.set(code);
                    }
                }
                a
            }
            Inner::DictInt { dict_len, dict_off, .. } => {
                let mut a = BitVec::zeros(*dict_len);
                for code in 0..*dict_len {
                    if pred(&Value::Int(self.i64_at(dict_off + code * 8))) {
                        a.set(code);
                    }
                }
                a
            }
            Inner::Rle { n_runs, values_off, .. } => {
                let mut a = BitVec::zeros(*n_runs);
                for run in 0..*n_runs {
                    if pred(&Value::Int(self.i64_at(values_off + run * 8))) {
                        a.set(run);
                    }
                }
                a
            }
            _ => return None,
        };
        Some(CodePredicate { accept, null_passes })
    }

    /// Evaluate a [`CodePredicate`] bitmap-first over every row: one bit per
    /// row, set when the row passes. Dictionary codes probe the accept
    /// bitmap; RLE runs clear whole rejected ranges word-at-a-time; NULL
    /// rows are fixed up last (their stored code/run value is a placeholder).
    pub fn predicate_mask(&self, p: &CodePredicate) -> BitVec {
        let mut mask = match &self.inner {
            Inner::DictStr { width, codes_off, .. } | Inner::DictInt { width, codes_off, .. } => {
                let codes = unpack_all(&self.data, *codes_off, *width, self.rows);
                let mut m = BitVec::zeros(self.rows);
                for (row, &code) in codes.iter().enumerate() {
                    if p.accept.get(code as usize) {
                        m.set(row);
                    }
                }
                m
            }
            Inner::Rle { n_runs, ends_off, .. } => {
                let mut m = BitVec::ones(self.rows);
                let mut start = 0u32;
                for run in 0..*n_runs {
                    let end = self.u32_at(ends_off + run * 4);
                    if !p.accept.get(run) {
                        m.clear_range(start as usize, end as usize);
                    }
                    start = end;
                }
                m
            }
            _ => unreachable!("predicate_mask requires a compile_predicate encoding"),
        };
        if let Some(nulls) = &self.nulls {
            for row in nulls.iter_ones() {
                mask.set_to(row, p.null_passes);
            }
        }
        mask
    }

    #[inline]
    fn i64_at(&self, off: usize) -> i64 {
        i64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    #[inline]
    fn u32_at(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// Find the run containing `row` via binary search over cumulative ends.
    fn rle_run_of(&self, row: usize, n_runs: usize, ends_off: usize) -> usize {
        let target = row as u32;
        let mut lo = 0usize;
        let mut hi = n_runs;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.u32_at(ends_off + mid * 4) <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn dict_str_entry(&self, code: usize) -> &str {
        if let Inner::DictStr { dict_offsets_off, dict_bytes_off, .. } = &self.inner {
            let s = self.u32_at(dict_offsets_off + code * 4) as usize;
            let e = self.u32_at(dict_offsets_off + (code + 1) * 4) as usize;
            std::str::from_utf8(&self.data[dict_bytes_off + s..dict_bytes_off + e])
                .expect("dictionary bytes validated at encode time")
        } else {
            unreachable!()
        }
    }

    fn lz_block(&self, block: usize) -> Result<Arc<Vec<u8>>> {
        if let Inner::LzStr { dir, blocks_off, cache } = &self.inner {
            {
                let guard = cache.lock();
                if let Some((idx, layout)) = guard.as_ref() {
                    if *idx == block {
                        return Ok(Arc::clone(layout));
                    }
                }
            }
            let start = blocks_off + dir[block] as usize;
            let end = blocks_off + dir[block + 1] as usize;
            let layout = Arc::new(crate::lz::decompress(&self.data[start..end])?);
            *cache.lock() = Some((block, Arc::clone(&layout)));
            Ok(layout)
        } else {
            unreachable!()
        }
    }

    /// Decode the value at `row` (seekable point read).
    pub fn value(&self, row: usize) -> Result<Value> {
        if row >= self.rows {
            return Err(Error::InvalidArgument(format!(
                "row {row} out of range ({} rows)",
                self.rows
            )));
        }
        if self.is_null(row) {
            return Ok(Value::Null);
        }
        Ok(match &self.inner {
            Inner::PlainInt { values_off } => Value::Int(self.i64_at(values_off + row * 8)),
            Inner::PlainDouble { values_off } => {
                Value::Double(f64::from_bits(self.i64_at(values_off + row * 8) as u64))
            }
            Inner::PlainStr { offsets_off, bytes_off } => {
                let s = self.u32_at(offsets_off + row * 4) as usize;
                let e = self.u32_at(offsets_off + (row + 1) * 4) as usize;
                let raw = &self.data[bytes_off + s..bytes_off + e];
                Value::str(std::str::from_utf8(raw).map_err(|e| {
                    Error::Corruption(format!("invalid utf-8 in plain str column: {e}"))
                })?)
            }
            Inner::BitPack { base, width, bits_off } => {
                let delta = read_packed(&self.data, *bits_off, *width, row);
                Value::Int((*base as i128 + delta as i128) as i64)
            }
            Inner::Rle { n_runs, values_off, ends_off } => {
                let run = self.rle_run_of(row, *n_runs, *ends_off);
                Value::Int(self.i64_at(values_off + run * 8))
            }
            Inner::DictStr { width, codes_off, .. } => {
                let code = read_packed(&self.data, *codes_off, *width, row) as usize;
                Value::str(self.dict_str_entry(code))
            }
            Inner::DictInt { dict_off, width, codes_off, .. } => {
                let code = read_packed(&self.data, *codes_off, *width, row) as usize;
                Value::Int(self.i64_at(dict_off + code * 8))
            }
            Inner::LzStr { .. } => {
                let block = row / crate::encode::LZ_BLOCK_ROWS;
                let local = row % crate::encode::LZ_BLOCK_ROWS;
                let layout = self.lz_block(block)?;
                let block_rows = self.block_rows(block);
                let s = u32_from(&layout, local * 4) as usize;
                let e = u32_from(&layout, (local + 1) * 4) as usize;
                let bytes_base = (block_rows + 1) * 4;
                let raw = &layout[bytes_base + s..bytes_base + e];
                Value::str(std::str::from_utf8(raw).map_err(|e| {
                    Error::Corruption(format!("invalid utf-8 in lz str column: {e}"))
                })?)
            }
        })
    }

    fn block_rows(&self, block: usize) -> usize {
        let start = block * crate::encode::LZ_BLOCK_ROWS;
        (self.rows - start).min(crate::encode::LZ_BLOCK_ROWS)
    }

    /// Decode rows into a typed vector. With `sel = None` decodes every row;
    /// otherwise only the selected row offsets (late materialization,
    /// paper §2.1.2: "only decoding columns if data in them qualifies").
    ///
    /// Each encoding has a bulk path (sequential unpack, run expansion,
    /// dictionary gather) instead of a per-row dispatch loop; `LzStr`
    /// decompresses each block once per call rather than locking the block
    /// cache per row.
    pub fn decode_vector(&self, sel: Option<&[u32]>) -> Result<ColumnVector> {
        match &self.inner {
            Inner::PlainInt { values_off } => {
                let off = *values_off;
                Ok(self.build_int(sel, |row| self.i64_at(off + row * 8)))
            }
            Inner::PlainDouble { values_off } => {
                let off = *values_off;
                Ok(self.build_double(sel, |row| f64::from_bits(self.i64_at(off + row * 8) as u64)))
            }
            Inner::BitPack { base, width, bits_off } => {
                let base = *base;
                Ok(match sel {
                    None => {
                        let deltas = unpack_all(&self.data, *bits_off, *width, self.rows);
                        self.build_int(None, |row| (base as i128 + deltas[row] as i128) as i64)
                    }
                    Some(s) if s.len() * 4 >= self.rows => {
                        // Dense selection: one bulk unpack beats per-row
                        // bit extraction.
                        let deltas = unpack_all(&self.data, *bits_off, *width, self.rows);
                        self.build_int(sel, |row| (base as i128 + deltas[row] as i128) as i64)
                    }
                    Some(_) => {
                        let (bits_off, width) = (*bits_off, *width);
                        self.build_int(sel, |row| {
                            let delta = read_packed(&self.data, bits_off, width, row);
                            (base as i128 + delta as i128) as i64
                        })
                    }
                })
            }
            Inner::Rle { n_runs, values_off, ends_off } => {
                let (n_runs, values_off, ends_off) = (*n_runs, *values_off, *ends_off);
                Ok(match sel {
                    None => {
                        // Expand runs directly instead of binary-searching per row.
                        let mut values = Vec::with_capacity(self.rows);
                        let mut start = 0usize;
                        for run in 0..n_runs {
                            let end = self.u32_at(ends_off + run * 4) as usize;
                            let v = self.i64_at(values_off + run * 8);
                            values.resize(end.min(self.rows), v);
                            start = end;
                        }
                        debug_assert_eq!(start.min(self.rows), self.rows);
                        self.finish_int(values, None)
                    }
                    Some(s) => {
                        // Selections are ascending: walk runs with a cursor.
                        let mut run = 0usize;
                        let mut run_end = if n_runs == 0 { 0 } else { self.u32_at(ends_off) };
                        let mut values = Vec::with_capacity(s.len());
                        for &row in s {
                            while row >= run_end && run + 1 < n_runs {
                                run += 1;
                                run_end = self.u32_at(ends_off + run * 4);
                            }
                            values.push(self.i64_at(values_off + run * 8));
                        }
                        self.finish_int(values, sel)
                    }
                })
            }
            Inner::DictInt { dict_off, width, codes_off, dict_len } => {
                let dict: Vec<i64> =
                    (0..*dict_len).map(|c| self.i64_at(dict_off + c * 8)).collect();
                Ok(match sel {
                    None => {
                        let codes = unpack_all(&self.data, *codes_off, *width, self.rows);
                        self.build_int(None, |row| dict[codes[row] as usize])
                    }
                    Some(_) => {
                        let (codes_off, width) = (*codes_off, *width);
                        self.build_int(sel, |row| {
                            dict[read_packed(&self.data, codes_off, width, row) as usize]
                        })
                    }
                })
            }
            Inner::DictStr { width, codes_off, .. } => {
                let (codes_off, width) = (*codes_off, *width);
                Ok(match sel {
                    None => {
                        let codes = unpack_all(&self.data, codes_off, width, self.rows);
                        self.build_str(None, |row| self.dict_str_entry(codes[row] as usize))
                    }
                    Some(_) => self.build_str(sel, |row| {
                        self.dict_str_entry(read_packed(&self.data, codes_off, width, row) as usize)
                    }),
                })
            }
            Inner::PlainStr { offsets_off, bytes_off } => {
                let (offsets_off, bytes_off) = (*offsets_off, *bytes_off);
                Ok(self.build_str(sel, |row| {
                    let s = self.u32_at(offsets_off + row * 4) as usize;
                    let e = self.u32_at(offsets_off + (row + 1) * 4) as usize;
                    // SAFETY: validated as UTF-8 when the column was encoded
                    // from &str values; offsets delimit whole strings.
                    unsafe {
                        std::str::from_utf8_unchecked(&self.data[bytes_off + s..bytes_off + e])
                    }
                }))
            }
            Inner::LzStr { .. } => self.decode_lz(sel),
        }
    }

    /// Build an Int vector via `f`, honoring the null bitmap (null rows hold
    /// the default 0, matching [`VectorBuilder::push_null`]).
    fn build_int(&self, sel: Option<&[u32]>, f: impl Fn(usize) -> i64) -> ColumnVector {
        let values: Vec<i64> = match (sel, &self.nulls) {
            (None, None) => (0..self.rows).map(&f).collect(),
            (None, Some(n)) => {
                (0..self.rows).map(|row| if n.get(row) { 0 } else { f(row) }).collect()
            }
            (Some(s), None) => s.iter().map(|&row| f(row as usize)).collect(),
            (Some(s), Some(n)) => {
                s.iter().map(|&row| if n.get(row as usize) { 0 } else { f(row as usize) }).collect()
            }
        };
        self.finish_int(values, sel)
    }

    fn finish_int(&self, mut values: Vec<i64>, sel: Option<&[u32]>) -> ColumnVector {
        let nulls = self.out_nulls(sel);
        if let Some(n) = &nulls {
            for row in n.iter_ones() {
                values[row] = 0;
            }
        }
        ColumnVector::Int { values, nulls }
    }

    /// Build a Double vector via `f` (null rows hold the default 0.0).
    fn build_double(&self, sel: Option<&[u32]>, f: impl Fn(usize) -> f64) -> ColumnVector {
        let values: Vec<f64> = match (sel, &self.nulls) {
            (None, None) => (0..self.rows).map(&f).collect(),
            (None, Some(n)) => {
                (0..self.rows).map(|row| if n.get(row) { 0.0 } else { f(row) }).collect()
            }
            (Some(s), None) => s.iter().map(|&row| f(row as usize)).collect(),
            (Some(s), Some(n)) => s
                .iter()
                .map(|&row| if n.get(row as usize) { 0.0 } else { f(row as usize) })
                .collect(),
        };
        ColumnVector::Double { values, nulls: self.out_nulls(sel) }
    }

    /// Build a Str vector via `f` (null rows hold the empty string).
    fn build_str<'a>(&'a self, sel: Option<&[u32]>, f: impl Fn(usize) -> &'a str) -> ColumnVector {
        let count = sel.map_or(self.rows, <[u32]>::len);
        let mut offsets = Vec::with_capacity(count + 1);
        offsets.push(0u32);
        let mut bytes = Vec::new();
        let mut append = |row: usize| {
            if !self.is_null(row) {
                bytes.extend_from_slice(f(row).as_bytes());
            }
            offsets.push(bytes.len() as u32);
        };
        match sel {
            None => (0..self.rows).for_each(&mut append),
            Some(s) => s.iter().for_each(|&row| append(row as usize)),
        }
        ColumnVector::Str { offsets, bytes, nulls: self.out_nulls(sel) }
    }

    /// Null bitmap over the output rows of a decode with selection `sel`.
    fn out_nulls(&self, sel: Option<&[u32]>) -> Option<BitVec> {
        let nulls = self.nulls.as_ref()?;
        match sel {
            None => Some(nulls.clone()),
            Some(s) => {
                let mut out = BitVec::zeros(s.len());
                let mut any = false;
                for (i, &row) in s.iter().enumerate() {
                    if nulls.get(row as usize) {
                        out.set(i);
                        any = true;
                    }
                }
                any.then_some(out)
            }
        }
    }

    /// LZ decode: decompress each touched block once, then slice rows out of
    /// the block's plain layout.
    fn decode_lz(&self, sel: Option<&[u32]>) -> Result<ColumnVector> {
        let count = sel.map_or(self.rows, <[u32]>::len);
        let mut b = VectorBuilder::new(DataType::Str, count);
        let mut current: Option<(usize, Arc<Vec<u8>>)> = None;
        let mut push =
            |row: usize, b: &mut VectorBuilder| -> Result<()> {
                if self.is_null(row) {
                    b.push_null();
                    return Ok(());
                }
                let block = row / crate::encode::LZ_BLOCK_ROWS;
                let local = row % crate::encode::LZ_BLOCK_ROWS;
                if current.as_ref().map(|(i, _)| *i) != Some(block) {
                    current = Some((block, self.lz_block(block)?));
                }
                let layout = &current.as_ref().expect("just set").1;
                let block_rows = self.block_rows(block);
                let s = u32_from(layout, local * 4) as usize;
                let e = u32_from(layout, (local + 1) * 4) as usize;
                let bytes_base = (block_rows + 1) * 4;
                let raw = &layout[bytes_base + s..bytes_base + e];
                b.push_str(std::str::from_utf8(raw).map_err(|e| {
                    Error::Corruption(format!("invalid utf-8 in lz str column: {e}"))
                })?);
                Ok(())
            };
        match sel {
            None => {
                for row in 0..self.rows {
                    push(row, &mut b)?;
                }
            }
            Some(s) => {
                for &row in s {
                    push(row as usize, &mut b)?;
                }
            }
        }
        Ok(b.finish())
    }

    /// Decode every row into owned values (test/debug convenience).
    pub fn decode_all(&self) -> Result<Vec<Value>> {
        (0..self.rows).map(|i| self.value(i)).collect()
    }

    /// Evaluate `pred` directly on the compressed representation
    /// (paper §5.2 "encoded filter").
    ///
    /// Returns `Ok(None)` if this encoding does not support encoded
    /// execution; the caller falls back to a regular (decode-then-filter)
    /// strategy. With `sel = Some(..)` only the given rows are considered.
    pub fn encoded_filter(
        &self,
        pred: &mut dyn FnMut(&Value) -> bool,
        sel: Option<&[u32]>,
    ) -> Result<Option<Vec<u32>>> {
        let null_passes = pred(&Value::Null);
        match &self.inner {
            Inner::DictStr { dict_len, width, codes_off, .. } => {
                let mut table = Vec::with_capacity(*dict_len);
                for code in 0..*dict_len {
                    table.push(pred(&Value::str(self.dict_str_entry(code))));
                }
                Ok(Some(self.filter_by_code_table(&table, null_passes, *width, *codes_off, sel)))
            }
            Inner::DictInt { dict_len, dict_off, width, codes_off } => {
                let mut table = Vec::with_capacity(*dict_len);
                for code in 0..*dict_len {
                    table.push(pred(&Value::Int(self.i64_at(dict_off + code * 8))));
                }
                Ok(Some(self.filter_by_code_table(&table, null_passes, *width, *codes_off, sel)))
            }
            Inner::Rle { n_runs, values_off, ends_off } => {
                let mut out = Vec::new();
                let mut run_pass = Vec::with_capacity(*n_runs);
                for run in 0..*n_runs {
                    run_pass.push(pred(&Value::Int(self.i64_at(values_off + run * 8))));
                }
                match sel {
                    None => {
                        let mut start = 0u32;
                        for (run, pass) in run_pass.iter().enumerate() {
                            let end = self.u32_at(ends_off + run * 4);
                            if *pass {
                                for row in start..end {
                                    let passes =
                                        if self.is_null(row as usize) { null_passes } else { true };
                                    if passes {
                                        out.push(row);
                                    }
                                }
                            } else if null_passes && self.nulls.is_some() {
                                for row in start..end {
                                    if self.is_null(row as usize) {
                                        out.push(row);
                                    }
                                }
                            }
                            start = end;
                        }
                    }
                    Some(sel) => {
                        for &row in sel {
                            let passes = if self.is_null(row as usize) {
                                null_passes
                            } else {
                                let run = self.rle_run_of(row as usize, *n_runs, *ends_off);
                                run_pass[run]
                            };
                            if passes {
                                out.push(row);
                            }
                        }
                    }
                }
                Ok(Some(out))
            }
            _ => Ok(None),
        }
    }

    fn filter_by_code_table(
        &self,
        table: &[bool],
        null_passes: bool,
        width: u8,
        codes_off: usize,
        sel: Option<&[u32]>,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        let mut consider = |row: u32| {
            let passes = if self.is_null(row as usize) {
                null_passes
            } else {
                let code = read_packed(&self.data, codes_off, width, row as usize) as usize;
                table[code]
            };
            if passes {
                out.push(row);
            }
        };
        match sel {
            None => (0..self.rows as u32).for_each(&mut consider),
            Some(sel) => sel.iter().copied().for_each(&mut consider),
        }
        out
    }
}

#[inline]
fn u32_from(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_column;

    fn reader(values: &[Value], dt: DataType, enc: Option<Encoding>) -> ColumnReader {
        ColumnReader::open(&encode_column(values, dt, enc).unwrap()).unwrap()
    }

    #[test]
    fn decode_vector_full_and_selected() {
        let values: Vec<Value> = (0..100).map(|i| Value::Int(i * 2)).collect();
        let r = reader(&values, DataType::Int64, None);
        let full = r.decode_vector(None).unwrap();
        assert_eq!(full.len(), 100);
        assert_eq!(full.int_at(50), 100);
        let sel = r.decode_vector(Some(&[3, 97])).unwrap();
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.int_at(0), 6);
        assert_eq!(sel.int_at(1), 194);
    }

    #[test]
    fn encoded_filter_dict_str() {
        let values: Vec<Value> = (0..60).map(|i| Value::str(["a", "b", "c"][i % 3])).collect();
        let r = reader(&values, DataType::Str, Some(Encoding::DictStr));
        let sel = r
            .encoded_filter(&mut |v| matches!(v, Value::Str(s) if s.as_ref() == "b"), None)
            .unwrap()
            .unwrap();
        assert_eq!(sel.len(), 20);
        assert!(sel.iter().all(|&i| i % 3 == 1));
    }

    #[test]
    fn encoded_filter_respects_input_selection() {
        let values: Vec<Value> = (0..50).map(|i| Value::Int(i % 5)).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::DictInt));
        let input: Vec<u32> = (0..25).collect();
        let sel = r
            .encoded_filter(&mut |v| matches!(v, Value::Int(i) if *i == 0), Some(&input))
            .unwrap()
            .unwrap();
        assert_eq!(sel, vec![0, 5, 10, 15, 20]);
    }

    #[test]
    fn encoded_filter_rle_ranges() {
        let values: Vec<Value> = (0..90).map(|i| Value::Int(i / 30)).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::RleInt));
        let sel = r
            .encoded_filter(&mut |v| matches!(v, Value::Int(i) if *i == 1), None)
            .unwrap()
            .unwrap();
        assert_eq!(sel, (30u32..60).collect::<Vec<_>>());
    }

    #[test]
    fn encoded_filter_handles_nulls() {
        let values: Vec<Value> =
            (0..30).map(|i| if i % 10 == 0 { Value::Null } else { Value::Int(i % 3) }).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::DictInt));
        // IS NULL predicate.
        let sel = r.encoded_filter(&mut |v| v.is_null(), None).unwrap().unwrap();
        assert_eq!(sel, vec![0, 10, 20]);
    }

    #[test]
    fn plain_has_no_encoded_path() {
        let values: Vec<Value> = (0..10).map(Value::Int).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::PlainInt));
        assert!(r.encoded_filter(&mut |_| true, None).unwrap().is_none());
    }

    #[test]
    fn lz_point_reads_cross_blocks() {
        let values: Vec<Value> = (0..1500)
            .map(|i| Value::str(format!("some row payload with id {i} and padding padding")))
            .collect();
        let r = reader(&values, DataType::Str, Some(Encoding::LzStr));
        // Probe across block boundaries (block = 512 rows).
        for row in [0usize, 511, 512, 1023, 1024, 1499] {
            assert_eq!(r.value(row).unwrap(), values[row]);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let r = reader(&[Value::Int(1)], DataType::Int64, None);
        assert!(r.value(1).is_err());
    }

    #[test]
    fn rle_binary_search_boundaries() {
        let values: Vec<Value> =
            vec![Value::Int(5); 10].into_iter().chain(vec![Value::Int(9); 10]).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::RleInt));
        assert_eq!(r.value(9).unwrap(), Value::Int(5));
        assert_eq!(r.value(10).unwrap(), Value::Int(9));
    }

    #[test]
    fn codes_and_dict_round_trip() {
        let values: Vec<Value> = (0..60).map(|i| Value::str(["a", "b", "c"][i % 3])).collect();
        let r = reader(&values, DataType::Str, Some(Encoding::DictStr));
        let codes = r.codes().unwrap();
        assert_eq!(codes.len(), 60);
        for (row, &code) in codes.iter().enumerate() {
            assert_eq!(r.dict_value(code as usize).unwrap(), values[row]);
        }
        let ints: Vec<Value> = (0..50).map(|i| Value::Int(i % 5)).collect();
        let ri = reader(&ints, DataType::Int64, Some(Encoding::DictInt));
        let codes = ri.codes().unwrap();
        for (row, &code) in codes.iter().enumerate() {
            assert_eq!(ri.dict_value(code as usize).unwrap(), ints[row]);
        }
        // Non-dictionary encodings expose no code view.
        let plain = reader(&ints, DataType::Int64, Some(Encoding::PlainInt));
        assert!(plain.codes().is_none());
    }

    #[test]
    fn runs_cover_rows_in_order() {
        let values: Vec<Value> = (0..90).map(|i| Value::Int(i / 30)).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::RleInt));
        let runs = r.runs().unwrap();
        assert_eq!(runs, vec![(0, 0, 30), (1, 30, 60), (2, 60, 90)]);
    }

    #[test]
    fn compile_predicate_and_mask_dict() {
        let values: Vec<Value> = (0..30)
            .map(|i| if i % 10 == 0 { Value::Null } else { Value::str(["a", "b", "c"][i % 3]) })
            .collect();
        let r = reader(&values, DataType::Str, Some(Encoding::DictStr));
        let p =
            r.compile_predicate(&mut |v| matches!(v, Value::Str(s) if s.as_ref() == "b")).unwrap();
        let mask = r.predicate_mask(&p);
        let expect: Vec<usize> = (0..30).filter(|i| i % 10 != 0 && i % 3 == 1).collect();
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), expect);
        // IS NULL compiles to a null-passes predicate with an empty accept set.
        let p = r.compile_predicate(&mut |v| v.is_null()).unwrap();
        let mask = r.predicate_mask(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![0, 10, 20]);
    }

    #[test]
    fn compile_predicate_and_mask_rle() {
        let values: Vec<Value> = (0..90).map(|i| Value::Int(i / 30)).collect();
        let r = reader(&values, DataType::Int64, Some(Encoding::RleInt));
        let p = r.compile_predicate(&mut |v| matches!(v, Value::Int(i) if *i != 1)).unwrap();
        let mask = r.predicate_mask(&p);
        let got: Vec<usize> = mask.iter_ones().collect();
        assert_eq!(got, (0..30).chain(60..90).collect::<Vec<_>>());
        // Plain encodings have no code domain to compile into.
        let plain = reader(&values, DataType::Int64, Some(Encoding::PlainInt));
        assert!(plain.compile_predicate(&mut |_| true).is_none());
    }

    #[test]
    fn bulk_decode_matches_per_row_all_encodings() {
        let cases: Vec<(Vec<Value>, DataType, Option<Encoding>)> = vec![
            ((0..300).map(|i| Value::Int(i * 3 + 7)).collect(), DataType::Int64, None),
            (
                (0..300)
                    .map(|i| if i % 7 == 0 { Value::Null } else { Value::Int(i % 4) })
                    .collect(),
                DataType::Int64,
                Some(Encoding::DictInt),
            ),
            (
                (0..300)
                    .map(|i| if i % 11 == 0 { Value::Null } else { Value::Int(i / 40) })
                    .collect(),
                DataType::Int64,
                Some(Encoding::RleInt),
            ),
            (
                (0..300).map(|i| Value::Int(1_000_000 + i)).collect(),
                DataType::Int64,
                Some(Encoding::BitPackInt),
            ),
            (
                (0..300)
                    .map(|i| if i % 5 == 0 { Value::Null } else { Value::Double(i as f64 / 3.0) })
                    .collect(),
                DataType::Double,
                None,
            ),
            (
                (0..300)
                    .map(|i| {
                        if i % 9 == 0 {
                            Value::Null
                        } else {
                            Value::str(["x", "yy", "zzz"][i % 3])
                        }
                    })
                    .collect(),
                DataType::Str,
                Some(Encoding::DictStr),
            ),
            (
                (0..300).map(|i| Value::str(format!("row-{i}"))).collect(),
                DataType::Str,
                Some(Encoding::PlainStr),
            ),
            (
                (0..1200)
                    .map(|i| {
                        if i % 13 == 0 {
                            Value::Null
                        } else {
                            Value::str(format!("payload payload payload {i}"))
                        }
                    })
                    .collect(),
                DataType::Str,
                Some(Encoding::LzStr),
            ),
        ];
        for (values, dt, enc) in cases {
            let r = reader(&values, dt, enc);
            let full = r.decode_vector(None).unwrap();
            assert_eq!(full.len(), values.len());
            for (row, v) in values.iter().enumerate() {
                assert_eq!(&full.value(row), v, "row {row} enc {enc:?}");
            }
            let sel: Vec<u32> =
                (0..values.len() as u32).filter(|i| i % 3 == 0 || i % 7 == 2).collect();
            let picked = r.decode_vector(Some(&sel)).unwrap();
            assert_eq!(picked.len(), sel.len());
            for (out, &row) in sel.iter().enumerate() {
                assert_eq!(picked.value(out), values[row as usize], "sel row {row} enc {enc:?}");
            }
        }
    }
}
