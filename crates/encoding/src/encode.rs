//! Column encoding: format definitions, the encoder, and the analyzer that
//! picks an encoding per column per segment (paper §2.1.2: "the same column
//! can use a different encoding in each segment optimized for the data
//! specific to that segment").

use std::collections::HashSet;
use std::sync::Arc;

use s2_common::io::{ByteReader, ByteWriter};
use s2_common::{BitVec, DataType, Error, Result, Value};

use crate::lz;

/// Number of rows per LZ block. Small enough that a point read decompresses
/// little; large enough to amortize the token stream.
pub const LZ_BLOCK_ROWS: usize = 512;

/// Encoding identifiers (also the on-disk tag byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Raw little-endian i64 array.
    PlainInt = 1,
    /// Raw little-endian f64 array.
    PlainDouble = 2,
    /// Offset array + concatenated UTF-8 bytes.
    PlainStr = 3,
    /// Frame-of-reference bit packing: base + fixed-width deltas.
    BitPackInt = 4,
    /// Run-length encoding of i64s with cumulative run ends (seek = binary search).
    RleInt = 5,
    /// Dictionary of distinct strings + bit-packed codes.
    DictStr = 6,
    /// Dictionary of distinct i64s + bit-packed codes.
    DictInt = 7,
    /// LZ77-compressed blocks of the plain string layout (block directory for seeks).
    LzStr = 8,
}

impl Encoding {
    fn from_tag(tag: u8) -> Result<Encoding> {
        Ok(match tag {
            1 => Encoding::PlainInt,
            2 => Encoding::PlainDouble,
            3 => Encoding::PlainStr,
            4 => Encoding::BitPackInt,
            5 => Encoding::RleInt,
            6 => Encoding::DictStr,
            7 => Encoding::DictInt,
            8 => Encoding::LzStr,
            t => return Err(Error::Corruption(format!("unknown encoding tag {t}"))),
        })
    }

    /// True when filters can run directly on the compressed form (paper §5.2).
    pub fn supports_encoded_execution(self) -> bool {
        matches!(self, Encoding::DictStr | Encoding::DictInt | Encoding::RleInt)
    }
}

/// One encoded column of a segment: a self-describing byte blob.
///
/// Layout: `u8 tag | varint rows | u8 has_nulls | [null bitvec] | payload`.
#[derive(Debug, Clone)]
pub struct EncodedColumn {
    /// Encoding used.
    pub encoding: Encoding,
    /// Row count.
    pub rows: usize,
    /// The serialized blob (shared so readers can hold it without copying).
    pub data: Arc<Vec<u8>>,
}

impl EncodedColumn {
    /// Size of the encoded blob in bytes.
    pub fn encoded_size(&self) -> usize {
        self.data.len()
    }

    /// Re-open a blob produced by [`encode_column`] (e.g. read back from a data file).
    pub fn from_bytes(data: Arc<Vec<u8>>) -> Result<EncodedColumn> {
        let mut r = ByteReader::new(&data);
        let encoding = Encoding::from_tag(r.get_u8()?)?;
        let rows = r.get_varint()? as usize;
        Ok(EncodedColumn { encoding, rows, data })
    }
}

/// Statistics the analyzer gathers in one pass over the values.
struct ColumnStats {
    rows: usize,
    nulls: usize,
    runs: usize,
    /// Distinct count, capped at `DISTINCT_CAP + 1` (meaning "many").
    distinct: usize,
    int_min: i64,
    int_max: i64,
    str_bytes: usize,
}

const DISTINCT_CAP: usize = 65_536;

fn gather_stats(values: &[Value]) -> ColumnStats {
    let mut s = ColumnStats {
        rows: values.len(),
        nulls: 0,
        runs: 0,
        distinct: 0,
        int_min: i64::MAX,
        int_max: i64::MIN,
        str_bytes: 0,
    };
    let mut set: HashSet<u64> = HashSet::new();
    let mut prev: Option<&Value> = None;
    for v in values {
        if v.is_null() {
            s.nulls += 1;
        }
        if prev != Some(v) {
            s.runs += 1;
        }
        prev = Some(v);
        if set.len() <= DISTINCT_CAP {
            set.insert(v.hash64());
        }
        match v {
            Value::Int(i) => {
                s.int_min = s.int_min.min(*i);
                s.int_max = s.int_max.max(*i);
            }
            Value::Str(t) => s.str_bytes += t.len(),
            _ => {}
        }
    }
    s.distinct = set.len();
    s
}

/// Pick an encoding for `values`. Deterministic: chooses the candidate with
/// the smallest estimated encoded size, with ties broken toward cheaper
/// decode paths.
pub fn choose_encoding(values: &[Value], data_type: DataType) -> Encoding {
    let s = gather_stats(values);
    let rows = s.rows.max(1);
    match data_type {
        DataType::Double => Encoding::PlainDouble,
        DataType::Int64 => {
            let plain = rows * 8;
            let rle = s.runs * 12; // value + cumulative end
            let width = if s.int_min > s.int_max {
                0 // all-null column
            } else {
                bits_needed((s.int_max as i128 - s.int_min as i128) as u128)
            };
            let bitpack = 16 + (rows * width as usize).div_ceil(8);
            let dict = if s.distinct <= DISTINCT_CAP {
                s.distinct * 8
                    + (rows * bits_needed(s.distinct.saturating_sub(1) as u128) as usize)
                        .div_ceil(8)
            } else {
                usize::MAX
            };
            let best = plain.min(rle).min(bitpack).min(dict);
            if best == rle {
                Encoding::RleInt
            } else if best == bitpack {
                Encoding::BitPackInt
            } else if best == dict {
                Encoding::DictInt
            } else {
                Encoding::PlainInt
            }
        }
        DataType::Str => {
            let avg_len = s.str_bytes / rows.max(1);
            if s.distinct <= DISTINCT_CAP && s.distinct <= rows / 2 {
                Encoding::DictStr
            } else if avg_len >= 12 {
                Encoding::LzStr
            } else {
                Encoding::PlainStr
            }
        }
    }
}

/// Bits needed to represent values in `[0, range]`.
fn bits_needed(range: u128) -> u8 {
    (128 - range.leading_zeros()) as u8
}

/// Encode a column. When `forced` is `None` the analyzer picks the encoding.
pub fn encode_column(
    values: &[Value],
    data_type: DataType,
    forced: Option<Encoding>,
) -> Result<EncodedColumn> {
    let encoding = forced.unwrap_or_else(|| choose_encoding(values, data_type));
    validate_encoding(encoding, data_type)?;

    let mut w = ByteWriter::with_capacity(values.len() * 4 + 64);
    w.put_u8(encoding as u8);
    w.put_varint(values.len() as u64);

    let has_nulls = values.iter().any(Value::is_null);
    w.put_u8(has_nulls as u8);
    if has_nulls {
        let mut nulls = BitVec::zeros(values.len());
        for (i, v) in values.iter().enumerate() {
            if v.is_null() {
                nulls.set(i);
            }
        }
        nulls.write_to(&mut w);
    }

    match encoding {
        Encoding::PlainInt => {
            for v in values {
                w.put_i64(int_or_default(v)?);
            }
        }
        Encoding::PlainDouble => {
            for v in values {
                w.put_f64(double_or_default(v)?);
            }
        }
        Encoding::PlainStr => encode_plain_str(&mut w, values)?,
        Encoding::BitPackInt => encode_bitpack(&mut w, values)?,
        Encoding::RleInt => encode_rle(&mut w, values)?,
        Encoding::DictStr => encode_dict_str(&mut w, values)?,
        Encoding::DictInt => encode_dict_int(&mut w, values)?,
        Encoding::LzStr => encode_lz_str(&mut w, values)?,
    }

    Ok(EncodedColumn { encoding, rows: values.len(), data: Arc::new(w.into_bytes()) })
}

fn validate_encoding(encoding: Encoding, data_type: DataType) -> Result<()> {
    let ok = match data_type {
        DataType::Int64 => matches!(
            encoding,
            Encoding::PlainInt | Encoding::BitPackInt | Encoding::RleInt | Encoding::DictInt
        ),
        DataType::Double => matches!(encoding, Encoding::PlainDouble),
        DataType::Str => {
            matches!(encoding, Encoding::PlainStr | Encoding::DictStr | Encoding::LzStr)
        }
    };
    if ok {
        Ok(())
    } else {
        Err(Error::InvalidArgument(format!("encoding {encoding:?} invalid for {data_type:?}")))
    }
}

fn int_or_default(v: &Value) -> Result<i64> {
    match v {
        Value::Null => Ok(0),
        Value::Int(i) => Ok(*i),
        other => Err(Error::InvalidArgument(format!("expected Int column, got {other}"))),
    }
}

fn double_or_default(v: &Value) -> Result<f64> {
    match v {
        Value::Null => Ok(0.0),
        Value::Double(d) => Ok(*d),
        other => Err(Error::InvalidArgument(format!("expected Double column, got {other}"))),
    }
}

fn str_or_default(v: &Value) -> Result<&str> {
    match v {
        Value::Null => Ok(""),
        Value::Str(s) => Ok(s),
        other => Err(Error::InvalidArgument(format!("expected Str column, got {other}"))),
    }
}

/// Plain string layout: `(rows+1) × u32 offsets | bytes`. Written as a helper
/// because the LZ encoding compresses exactly this layout per block.
fn plain_str_layout(values: &[Value]) -> Result<Vec<u8>> {
    let mut w = ByteWriter::new();
    let mut off = 0u32;
    w.put_u32(0);
    let mut total = 0usize;
    for v in values {
        let s = str_or_default(v)?;
        total += s.len();
        off = off
            .checked_add(s.len() as u32)
            .ok_or_else(|| Error::InvalidArgument("string column exceeds 4GiB".into()))?;
        w.put_u32(off);
    }
    let _ = total;
    for v in values {
        w.put_raw(str_or_default(v)?.as_bytes());
    }
    Ok(w.into_bytes())
}

fn encode_plain_str(w: &mut ByteWriter, values: &[Value]) -> Result<()> {
    let layout = plain_str_layout(values)?;
    w.put_raw(&layout);
    Ok(())
}

/// Pack `values - base` into `width`-bit little-endian lanes.
pub(crate) fn pack_bits(w: &mut ByteWriter, deltas: &[u64], width: u8) {
    if width == 0 {
        return;
    }
    let mut acc = 0u128;
    let mut bits = 0u32;
    for &d in deltas {
        acc |= (d as u128) << bits;
        bits += width as u32;
        while bits >= 8 {
            w.put_u8((acc & 0xFF) as u8);
            acc >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        w.put_u8((acc & 0xFF) as u8);
    }
}

fn encode_bitpack(w: &mut ByteWriter, values: &[Value]) -> Result<()> {
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for v in values {
        let i = int_or_default(v)?;
        min = min.min(i);
        max = max.max(i);
    }
    if values.is_empty() {
        min = 0;
        max = 0;
    }
    let width = bits_needed((max as i128 - min as i128) as u128);
    w.put_i64(min);
    w.put_u8(width);
    let deltas: Vec<u64> = values
        .iter()
        .map(|v| Ok((int_or_default(v)? as i128 - min as i128) as u64))
        .collect::<Result<_>>()?;
    pack_bits(w, &deltas, width);
    Ok(())
}

fn encode_rle(w: &mut ByteWriter, values: &[Value]) -> Result<()> {
    let mut runs: Vec<(i64, u32)> = Vec::new(); // (value, cumulative end)
    for (i, v) in values.iter().enumerate() {
        let iv = int_or_default(v)?;
        match runs.last_mut() {
            Some((last, end)) if *last == iv => *end = (i + 1) as u32,
            _ => runs.push((iv, (i + 1) as u32)),
        }
    }
    w.put_varint(runs.len() as u64);
    for (v, _) in &runs {
        w.put_i64(*v);
    }
    for (_, end) in &runs {
        w.put_u32(*end);
    }
    Ok(())
}

/// Build a dictionary (first-occurrence order) and bit-packed codes.
fn build_codes<'a, T: Eq + std::hash::Hash + Clone>(
    items: impl Iterator<Item = T> + 'a,
) -> (Vec<T>, Vec<u64>) {
    let mut dict: Vec<T> = Vec::new();
    let mut map: std::collections::HashMap<T, u64> = std::collections::HashMap::new();
    let mut codes = Vec::new();
    for item in items {
        let code = *map.entry(item.clone()).or_insert_with(|| {
            dict.push(item);
            (dict.len() - 1) as u64
        });
        codes.push(code);
    }
    (dict, codes)
}

fn encode_dict_str(w: &mut ByteWriter, values: &[Value]) -> Result<()> {
    let strs: Vec<&str> = values.iter().map(str_or_default).collect::<Result<_>>()?;
    let (dict, codes) = build_codes(strs.into_iter());
    let width = bits_needed(dict.len().saturating_sub(1) as u128);
    w.put_varint(dict.len() as u64);
    // Dictionary stored in the plain-str layout so lookups are O(1).
    let dict_vals: Vec<Value> = dict.iter().map(|s| Value::str(*s)).collect();
    let layout = plain_str_layout(&dict_vals)?;
    w.put_varint(layout.len() as u64);
    w.put_raw(&layout);
    w.put_u8(width);
    pack_bits(w, &codes, width);
    Ok(())
}

fn encode_dict_int(w: &mut ByteWriter, values: &[Value]) -> Result<()> {
    let ints: Vec<i64> = values.iter().map(int_or_default).collect::<Result<_>>()?;
    let (dict, codes) = build_codes(ints.into_iter());
    let width = bits_needed(dict.len().saturating_sub(1) as u128);
    w.put_varint(dict.len() as u64);
    for d in &dict {
        w.put_i64(*d);
    }
    w.put_u8(width);
    pack_bits(w, &codes, width);
    Ok(())
}

fn encode_lz_str(w: &mut ByteWriter, values: &[Value]) -> Result<()> {
    let n_blocks = values.len().div_ceil(LZ_BLOCK_ROWS);
    let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(n_blocks);
    for chunk in values.chunks(LZ_BLOCK_ROWS) {
        blocks.push(lz::compress(&plain_str_layout(chunk)?));
    }
    w.put_varint(n_blocks as u64);
    let mut off = 0u64;
    w.put_varint(0);
    for b in &blocks {
        off += b.len() as u64;
        w.put_varint(off);
    }
    // Varints make the directory variable-width; record where blocks start.
    for b in &blocks {
        w.put_raw(b);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::ColumnReader;

    fn roundtrip(values: &[Value], dt: DataType, forced: Option<Encoding>) -> Encoding {
        let col = encode_column(values, dt, forced).unwrap();
        let r = ColumnReader::open(&col).unwrap();
        assert_eq!(r.rows(), values.len());
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&r.value(i).unwrap(), v, "row {i} under {:?}", col.encoding);
        }
        col.encoding
    }

    #[test]
    fn analyzer_picks_rle_for_runs() {
        let values: Vec<Value> = (0..1000).map(|i| Value::Int(i / 100)).collect();
        assert_eq!(roundtrip(&values, DataType::Int64, None), Encoding::RleInt);
    }

    #[test]
    fn analyzer_picks_bitpack_for_small_range() {
        let values: Vec<Value> =
            (0..1000).map(|i| Value::Int(1_000_000 + (i * 37) % 250)).collect();
        let enc = roundtrip(&values, DataType::Int64, None);
        assert!(matches!(enc, Encoding::BitPackInt | Encoding::DictInt), "got {enc:?}");
    }

    #[test]
    fn analyzer_picks_dict_for_low_cardinality_strings() {
        let values: Vec<Value> =
            (0..500).map(|i| Value::str(["red", "green", "blue"][i % 3])).collect();
        assert_eq!(roundtrip(&values, DataType::Str, None), Encoding::DictStr);
    }

    #[test]
    fn analyzer_picks_lz_for_long_unique_strings() {
        let values: Vec<Value> = (0..300)
            .map(|i| {
                Value::str(format!("customer comment number {i} with shared boilerplate text"))
            })
            .collect();
        assert_eq!(roundtrip(&values, DataType::Str, None), Encoding::LzStr);
    }

    #[test]
    fn all_encodings_roundtrip_with_nulls() {
        let ints: Vec<Value> = (0..200)
            .map(|i| if i % 7 == 0 { Value::Null } else { Value::Int(i * 3 - 50) })
            .collect();
        for enc in [Encoding::PlainInt, Encoding::BitPackInt, Encoding::RleInt, Encoding::DictInt] {
            roundtrip(&ints, DataType::Int64, Some(enc));
        }
        let strs: Vec<Value> = (0..200)
            .map(|i| if i % 5 == 0 { Value::Null } else { Value::str(format!("value-{}", i % 20)) })
            .collect();
        for enc in [Encoding::PlainStr, Encoding::DictStr, Encoding::LzStr] {
            roundtrip(&strs, DataType::Str, Some(enc));
        }
        let dbls: Vec<Value> = (0..200)
            .map(|i| if i % 11 == 0 { Value::Null } else { Value::Double(i as f64 * 0.5) })
            .collect();
        roundtrip(&dbls, DataType::Double, Some(Encoding::PlainDouble));
    }

    #[test]
    fn empty_column_roundtrips() {
        for (dt, enc) in [
            (DataType::Int64, Encoding::PlainInt),
            (DataType::Int64, Encoding::BitPackInt),
            (DataType::Int64, Encoding::RleInt),
            (DataType::Str, Encoding::PlainStr),
            (DataType::Str, Encoding::LzStr),
        ] {
            roundtrip(&[], dt, Some(enc));
        }
    }

    #[test]
    fn wrong_type_rejected() {
        assert!(
            encode_column(&[Value::str("x")], DataType::Int64, Some(Encoding::PlainInt)).is_err()
        );
        assert!(encode_column(&[Value::Int(1)], DataType::Str, Some(Encoding::PlainInt)).is_err());
    }

    #[test]
    fn negative_extremes_bitpack() {
        let values =
            vec![Value::Int(i64::MIN), Value::Int(i64::MAX), Value::Int(0), Value::Int(-1)];
        roundtrip(&values, DataType::Int64, Some(Encoding::BitPackInt));
    }

    #[test]
    fn compression_actually_shrinks() {
        let values: Vec<Value> = (0..10_000).map(|i| Value::Int(i % 4)).collect();
        let plain = encode_column(&values, DataType::Int64, Some(Encoding::PlainInt)).unwrap();
        let auto = encode_column(&values, DataType::Int64, None).unwrap();
        assert!(auto.encoded_size() * 4 < plain.encoded_size());
    }
}
