//! A from-scratch LZ77-style byte compressor.
//!
//! Stands in for the paper's LZ4: a fast, generic byte codec used for string
//! columns whose data doesn't dictionary-encode well. The format is a token
//! stream: each token is `(literal_len varint, literal bytes, match_len
//! varint, match_dist varint)`; a final token may have `match_len == 0`.
//! Matching uses a 4-byte hash table over the window (greedy, no lazy
//! matching) — simple, deterministic and plenty fast for a reproduction.

use s2_common::io::{ByteReader, ByteWriter};
use s2_common::{Error, Result};

const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 15;
const MAX_DIST: usize = 64 * 1024;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes(data[..4].try_into().unwrap());
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` into an LZ token stream (prefixed with the uncompressed length).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(input.len() / 2 + 16);
    w.put_varint(input.len() as u64);

    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;

        let is_match = candidate != usize::MAX
            && pos - candidate <= MAX_DIST
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if is_match {
            // Extend the match as far as possible.
            let mut len = MIN_MATCH;
            while pos + len < input.len() && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            let literals = &input[literal_start..pos];
            w.put_varint(literals.len() as u64);
            w.put_raw(literals);
            w.put_varint(len as u64);
            w.put_varint((pos - candidate) as u64);
            // Seed the hash table inside the match so later data can refer to it.
            let end = (pos + len).min(input.len().saturating_sub(MIN_MATCH - 1));
            let mut p = pos + 1;
            while p < end {
                table[hash4(&input[p..])] = p;
                p += 1;
            }
            pos += len;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }

    // Trailing literals.
    let literals = &input[literal_start..];
    w.put_varint(literals.len() as u64);
    w.put_raw(literals);
    w.put_varint(0); // match_len 0 terminates
    w.into_bytes()
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(compressed: &[u8]) -> Result<Vec<u8>> {
    let mut r = ByteReader::new(compressed);
    let total = r.get_varint()? as usize;
    let mut out = Vec::with_capacity(total);
    loop {
        let lit_len = r.get_varint()? as usize;
        out.extend_from_slice(r.get_raw(lit_len)?);
        if out.len() > total {
            return Err(Error::Corruption("lz stream longer than header length".into()));
        }
        if out.len() == total && r.is_at_end() {
            break;
        }
        let match_len = r.get_varint()? as usize;
        if match_len == 0 {
            break;
        }
        let dist = r.get_varint()? as usize;
        if dist == 0 || dist > out.len() {
            return Err(Error::Corruption(format!(
                "lz match distance {dist} out of range (have {})",
                out.len()
            )));
        }
        // Byte-at-a-time copy: overlapping matches (dist < match_len) are legal.
        let start = out.len() - dist;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
        if out.len() > total {
            return Err(Error::Corruption("lz stream longer than header length".into()));
        }
    }
    if out.len() != total {
        return Err(Error::Corruption(format!(
            "lz stream ended at {} bytes, header said {total}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_small() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_compresses() {
        let data: Vec<u8> = b"the quick brown fox ".repeat(200).to_vec();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "compressed {} of {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match() {
        // "aaaa..." forces dist=1 matches longer than the distance.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn incompressible_survives() {
        // Pseudo-random bytes: no 4-byte repeats likely; output may expand slightly.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_detected() {
        let c = compress(b"hello hello hello hello hello");
        assert!(decompress(&c[..c.len() - 2]).is_err());
    }

    #[test]
    fn bad_distance_detected() {
        let mut w = ByteWriter::new();
        w.put_varint(10); // claim 10 bytes
        w.put_varint(2); // 2 literals
        w.put_raw(b"ab");
        w.put_varint(4); // match of 4
        w.put_varint(9); // distance 9 > 2 produced
        assert!(decompress(&w.into_bytes()).is_err());
    }
}
