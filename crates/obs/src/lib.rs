//! Zero-dependency observability for the S2DB reproduction.
//!
//! Production cloud databases live and die by their telemetry; the paper's
//! own evaluation leans on internal latency and skip-rate counters. This
//! crate provides the reproduction's equivalent: a global [`Registry`] of
//! named metrics designed so an instrumented hot path costs a couple of
//! relaxed atomic operations and an *un*-instrumented build pays nothing.
//!
//! Three primitives:
//! - [`Counter`] / [`Gauge`] — sharded monotonic counts and point-in-time
//!   values (`wal.append.bytes`, `blob.upload.queue_depth`).
//! - [`Histogram`] — fixed 64-bucket power-of-two latency histograms with a
//!   lock-free `record` and p50/p95/p99/max on snapshot, plus the RAII
//!   [`ScopedTimer`] (`wal.commit.latency_us`).
//! - [`EventRing`] — a bounded ring of rare structured events
//!   (`cluster.failover`, `blob.outage`).
//!
//! Metric names follow `subsystem.noun.verb` (see DESIGN.md): the subsystem
//! prefix matches the crate (`wal.`, `blob.`, `core.`, `exec.`,
//! `cluster.`, `rowstore.`), and latency histograms end in `latency_us`.
//!
//! Hot paths use the caching macros so the name→metric map is consulted
//! once per call site, not per operation:
//!
//! ```
//! s2_obs::counter!("doc.example.ops").inc();
//! s2_obs::histogram!("doc.example.latency_us").record(42);
//! {
//!     let _t = s2_obs::histogram!("doc.example.latency_us").start_timer();
//!     // ... timed work ...
//! }
//! s2_obs::gauge!("doc.example.depth").add(1);
//! s2_obs::event("doc.example.state_change", "details");
//! let snap = s2_obs::global().snapshot();
//! assert!(snap.counter("doc.example.ops") >= 1);
//! ```

mod counter;
mod hist;
mod ring;
mod snapshot;

pub use counter::{Counter, Gauge};
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSummary, ScopedTimer, BUCKETS};
pub use ring::{Event, EventRing};
pub use snapshot::Snapshot;

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use s2_common::sync::{rank, RwLock};

/// How many events the global ring retains.
const EVENT_RING_CAPACITY: usize = 256;

/// A namespace of metrics. Most code uses the process-wide [`global`]
/// registry via the [`counter!`], [`gauge!`] and [`histogram!`] macros;
/// tests can build private registries for isolation.
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    events: EventRing,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

macro_rules! get_or_register {
    ($map:expr, $name:expr, $ty:ty) => {{
        if let Some(m) = $map.read().get($name) {
            return Arc::clone(m);
        }
        let mut w = $map.write();
        Arc::clone(w.entry($name.to_string()).or_insert_with(|| Arc::new(<$ty>::new())))
    }};
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Registry {
        Registry {
            counters: RwLock::new(&rank::OBS_REGISTRY, BTreeMap::new()),
            gauges: RwLock::new(&rank::OBS_REGISTRY, BTreeMap::new()),
            histograms: RwLock::new(&rank::OBS_REGISTRY, BTreeMap::new()),
            events: EventRing::new(EVENT_RING_CAPACITY),
        }
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_register!(self.counters, name, Counter)
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_register!(self.gauges, name, Gauge)
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_register!(self.histograms, name, Histogram)
    }

    /// Record a rare structured event.
    pub fn event(&self, name: impl Into<String>, detail: impl Into<String>) {
        self.events.record(name, detail);
    }

    /// The event ring (for direct inspection).
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Capture every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.read().iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: self.gauges.read().iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(n, h)| (n.clone(), h.summary()))
                .collect(),
            events: self.events.snapshot(),
        }
    }

    /// Zero every metric and drop retained events, keeping registrations
    /// (and cached macro handles) valid. Test/bench support.
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        for g in self.gauges.read().values() {
            g.reset();
        }
        for h in self.histograms.read().values() {
            h.reset();
        }
        self.events.reset();
    }
}

/// The process-wide registry, created on first use.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Record a rare structured event in the global registry.
pub fn event(name: impl Into<String>, detail: impl Into<String>) {
    global().event(name, detail);
}

/// Handle to the named global counter, resolved once per call site and
/// cached in a hidden `static` — after the first hit, using the counter is
/// one relaxed atomic add with no map lookup.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Handle to the named global gauge (cached per call site; see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Handle to the named global histogram (cached per call site; see
/// [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_hands_out_shared_metrics() {
        let r = Registry::new();
        r.counter("x.a").add(2);
        r.counter("x.a").add(3);
        assert_eq!(r.counter("x.a").get(), 5);
        r.gauge("x.g").set(-7);
        r.histogram("x.h").record(100);
        r.event("x.e", "detail");
        let snap = r.snapshot();
        assert_eq!(snap.counter("x.a"), 5);
        assert_eq!(snap.gauge("x.g"), -7);
        assert_eq!(snap.histogram("x.h").unwrap().count, 1);
        assert_eq!(snap.events.len(), 1);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn macros_cache_and_hit_the_global_registry() {
        counter!("obs.test.macro_counter").add(4);
        counter!("obs.test.macro_counter").inc();
        gauge!("obs.test.macro_gauge").set(9);
        histogram!("obs.test.macro_hist").record(17);
        let snap = global().snapshot();
        assert_eq!(snap.counter("obs.test.macro_counter"), 5);
        assert_eq!(snap.gauge("obs.test.macro_gauge"), 9);
        assert_eq!(snap.histogram("obs.test.macro_hist").unwrap().count, 1);
    }
}
