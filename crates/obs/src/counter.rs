//! Sharded monotonic counters and point-in-time gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of independent shards per counter. Increments from different
/// threads usually land on different cache lines, so hot counters don't
/// serialize on one atomic.
pub const SHARDS: usize = 16;

/// One cache line per shard so increments from different threads don't
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Index of the shard this thread increments. Assigned round-robin on first
/// use and then fixed for the thread's lifetime.
fn shard_idx() -> usize {
    use std::cell::Cell;
    thread_local! {
        static IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut i = c.get();
        if i == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            i = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            c.set(i);
        }
        i
    })
}

/// A monotonically increasing event count. Increments are relaxed atomic
/// adds to a per-thread shard; reads aggregate across shards, so `get` is
/// the expensive direction — exactly the right trade for metrics.
#[derive(Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_idx()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total, aggregated across shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Reset to zero (test/bench support; racy against concurrent writers).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time signed value (queue depths, lag). Unlike [`Counter`] it
/// supports decrement and absolute set, so it is a single atomic: gauges
/// track states, not per-operation event streams, and stay uncontended.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (test/bench support).
    pub fn reset(&self) {
        self.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_aggregates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_directions() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
