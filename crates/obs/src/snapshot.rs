//! Point-in-time view of every registered metric, with text and JSON
//! exporters.

use std::fmt::Write as _;

use crate::hist::HistogramSummary;
use crate::ring::Event;

/// A consistent-enough copy of the registry: each metric is read atomically,
/// the set as a whole is not (fine for reporting).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, total)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

impl Snapshot {
    /// True when nothing has been recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0)
            && self.gauges.iter().all(|(_, v)| *v == 0)
            && self.histograms.iter().all(|(_, h)| h.count == 0)
            && self.events.is_empty()
    }

    /// Counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Human-readable dump: one aligned line per metric, skipping metrics
    /// that never fired so quiet subsystems don't drown the interesting ones.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        let mut wrote = false;
        for (name, v) in &self.counters {
            if *v != 0 {
                let _ = writeln!(out, "{name:<width$}  {v}");
                wrote = true;
            }
        }
        for (name, v) in &self.gauges {
            if *v != 0 {
                let _ = writeln!(out, "{name:<width$}  {v}");
                wrote = true;
            }
        }
        for (name, h) in &self.histograms {
            if h.count != 0 {
                let _ = writeln!(
                    out,
                    "{name:<width$}  count={} mean={:.1} p50={} p95={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                );
                wrote = true;
            }
        }
        for e in &self.events {
            let _ = writeln!(out, "event[{}] {} {} {}", e.seq, e.unix_ms, e.name, e.detail);
            wrote = true;
        }
        if !wrote {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// JSON object (hand-rolled: this crate takes no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_str(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_str(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                json_str(name),
                h.count,
                h.sum,
                h.p50,
                h.p95,
                h.p99,
                h.max
            );
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"unix_ms\":{},\"name\":{},\"detail\":{}}}",
                e.seq,
                e.unix_ms,
                json_str(&e.name),
                json_str(&e.detail)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("a.b.c".into(), 3), ("quiet".into(), 0)],
            gauges: vec![("g.depth".into(), -2)],
            histograms: vec![(
                "h.lat_us".into(),
                HistogramSummary { count: 2, sum: 30, max: 20, p50: 15, p95: 20, p99: 20 },
            )],
            events: vec![Event {
                seq: 0,
                unix_ms: 1,
                name: "x.y".into(),
                detail: "d \"q\"".into(),
            }],
        }
    }

    #[test]
    fn text_skips_zero_metrics() {
        let text = sample().to_text();
        assert!(text.contains("a.b.c"));
        assert!(!text.contains("quiet"));
        assert!(text.contains("p95=20"));
        assert!(text.contains("event[0]"));
    }

    #[test]
    fn json_is_escaped_and_complete() {
        let json = sample().to_json();
        assert!(json.contains("\"a.b.c\":3"));
        assert!(json.contains("\"quiet\":0"));
        assert!(json.contains("\"g.depth\":-2"));
        assert!(json.contains("\"detail\":\"d \\\"q\\\"\""));
    }

    #[test]
    fn lookup_helpers() {
        let s = sample();
        assert_eq!(s.counter("a.b.c"), 3);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("g.depth"), -2);
        assert_eq!(s.histogram("h.lat_us").unwrap().count, 2);
        assert!(!s.is_empty());
        assert!(Snapshot::default().is_empty());
    }
}
