//! Log-bucketed latency histograms with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of buckets. Bucket 0 holds zeros; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`; the last bucket absorbs everything from `2^62` up. For
/// microsecond latencies that spans sub-µs to ~146 years — no value is ever
/// out of range.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (used as the reported quantile value).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Exclusive-lower/inclusive-upper value bounds `[lo, hi]` of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else {
        (1u64 << (i - 1), bucket_upper(i))
    }
}

/// A fixed-layout power-of-two histogram. `record` is a few relaxed atomic
/// RMWs (bucket, count, sum, max) — no locks, no allocation, safe on any
/// hot path. Quantiles are computed on snapshot by a cumulative rank walk.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Start an RAII timer that records elapsed microseconds on drop.
    pub fn start_timer(&self) -> ScopedTimer<'_> {
        ScopedTimer { hist: self, start: Instant::now(), armed: true }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copy of the raw bucket counts.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Summarize into counts plus p50/p95/p99/max. Not atomic with respect
    /// to concurrent `record`s; each loaded cell is individually consistent,
    /// which is all a metrics reader needs.
    pub fn summary(&self) -> HistogramSummary {
        let buckets = self.buckets();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: self.sum(),
            max,
            p50: quantile(&buckets, count, max, 0.50),
            p95: quantile(&buckets, count, max, 0.95),
            p99: quantile(&buckets, count, max, 0.99),
        }
    }

    /// Reset to empty (test/bench support; racy against concurrent writers).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Value at quantile `q`: the upper bound of the bucket holding the rank'th
/// recorded value, clamped to the recorded max (the true maximum is known
/// exactly, so the top bucket never over-reports).
fn quantile(buckets: &[u64; BUCKETS], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        cum += n;
        if cum >= rank {
            return bucket_upper(i).min(max);
        }
    }
    max
}

/// Snapshot of a histogram's distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (upper bound of the median's bucket).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Arithmetic mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// RAII guard recording elapsed wall-clock microseconds into a histogram on
/// drop. Obtain via [`Histogram::start_timer`].
pub struct ScopedTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl ScopedTimer<'_> {
    /// Record now and disarm the drop (for early exits that should count).
    pub fn stop(mut self) -> u64 {
        let us = self.start.elapsed().as_micros() as u64;
        self.hist.record(us);
        self.armed = false;
        us
    }

    /// Disarm without recording (for paths that shouldn't count, e.g. error
    /// returns).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn quantiles_track_distribution() {
        let h = Histogram::new();
        // 90 fast ops (~100 µs), 10 slow ops (~100 ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100_000);
        assert!(s.p50 < 256, "median in the fast bucket, got {}", s.p50);
        assert!(s.p95 >= 65_536, "p95 in the slow bucket, got {}", s.p95);
        assert!(s.p99 <= 100_000, "p99 clamped to max, got {}", s.p99);
        assert_eq!(s.sum, 90 * 100 + 10 * 100_000);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Histogram::new().summary();
        assert_eq!((s.count, s.sum, s.max, s.p50, s.p95, s.p99), (0, 0, 0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn scoped_timer_records_once() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        let t = h.start_timer();
        t.stop();
        assert_eq!(h.count(), 2);
        let t = h.start_timer();
        t.cancel();
        assert_eq!(h.count(), 2);
    }
}
