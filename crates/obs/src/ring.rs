//! Bounded ring buffer for rare structured events (failovers, outages,
//! retry storms). Writers claim a slot with one atomic increment, so the
//! ring never blocks the hot path it is reporting on; old events are
//! overwritten once the ring wraps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

use s2_common::sync::{rank, Mutex};

/// Event timestamp source: milliseconds since some epoch. The default wall
/// clock uses the Unix epoch; deterministic harnesses (s2-sim) install a
/// logical clock so event traces are identical for identical seeds.
pub type ClockFn = dyn Fn() -> u64 + Send + Sync;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (monotone; survives ring wrap).
    pub seq: u64,
    /// Milliseconds since the clock's epoch at record time (Unix epoch for
    /// the default wall clock).
    pub unix_ms: u64,
    /// Event name, `subsystem.noun` style (e.g. `cluster.failover`).
    pub name: String,
    /// Free-form detail payload.
    pub detail: String,
}

/// Fixed-capacity MPMC event ring. The write cursor is lock-free; each slot
/// has a tiny mutex so a slow writer can't tear an event a reader sees.
/// Events are rare by contract (state changes, not per-op records), so slot
/// contention is effectively nil.
pub struct EventRing {
    slots: Vec<Mutex<Option<Event>>>,
    cursor: AtomicU64,
    /// Set at most once, before concurrent use; `None` means wall clock.
    clock: OnceLock<Box<ClockFn>>,
}

fn wall_clock_ms() -> u64 {
    // A pre-1970 system clock is a host misconfiguration worth surfacing,
    // not something to silently report as 0.
    // s2-lint: allow(wall-clock, default event-ring clock; sim overrides via set_clock)
    match SystemTime::now().duration_since(UNIX_EPOCH) {
        Ok(d) => d.as_millis() as u64,
        Err(e) => panic!("system clock is before the Unix epoch: {e}"),
    }
}

impl EventRing {
    /// Ring holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "event ring needs capacity");
        EventRing {
            slots: (0..capacity).map(|_| Mutex::new(&rank::OBS_RING_SLOT, None)).collect(),
            cursor: AtomicU64::new(0),
            clock: OnceLock::new(),
        }
    }

    /// Install a deterministic timestamp source. May be called at most once
    /// per ring, before events that must carry logical time are recorded;
    /// later calls are ignored (first installer wins). Used by s2-sim so
    /// event traces are byte-identical across runs of the same seed.
    pub fn set_clock(&self, clock: Box<ClockFn>) {
        let _ = self.clock.set(clock);
    }

    fn now_ms(&self) -> u64 {
        match self.clock.get() {
            Some(clock) => clock(),
            None => wall_clock_ms(),
        }
    }

    /// Record an event, overwriting the oldest once full.
    pub fn record(&self, name: impl Into<String>, detail: impl Into<String>) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let unix_ms = self.now_ms();
        let event = Event { seq, unix_ms, name: name.into(), detail: detail.into() };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock();
        // A racing writer that lapped the ring may already have stored a
        // newer event in this slot; keep the newest.
        if guard.as_ref().is_none_or(|old| old.seq < seq) {
            *guard = Some(event);
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Drop all retained events (test/bench support).
    pub fn reset(&self) {
        for s in &self.slots {
            *s.lock() = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_events() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.record("test.event", format!("e{i}"));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(ring.recorded(), 10);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(events[3].detail, "e9");
    }

    #[test]
    fn concurrent_writers_never_lose_the_newest() {
        let ring = std::sync::Arc::new(EventRing::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        ring.record("race", format!("{t}:{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.recorded(), 4000);
        let events = ring.snapshot();
        assert_eq!(events.len(), 8);
        // Every retained event is from the last full wrap.
        assert!(events.iter().all(|e| e.seq >= 4000 - 8 * 2));
    }

    #[test]
    fn injected_clock_drives_event_timestamps() {
        let ring = EventRing::new(4);
        let ticks = std::sync::Arc::new(AtomicU64::new(100));
        let t = std::sync::Arc::clone(&ticks);
        ring.set_clock(Box::new(move || t.fetch_add(10, Ordering::Relaxed)));
        ring.record("sim.step", "a");
        ring.record("sim.step", "b");
        let events = ring.snapshot();
        assert_eq!(events.iter().map(|e| e.unix_ms).collect::<Vec<_>>(), vec![100, 110]);
        // First installer wins: a second clock is ignored.
        ring.set_clock(Box::new(|| 0));
        ring.record("sim.step", "c");
        assert_eq!(ring.snapshot().last().unwrap().unix_ms, 120);
    }
}
