//! Bounded ring buffer for rare structured events (failovers, outages,
//! retry storms). Writers claim a slot with one atomic increment, so the
//! ring never blocks the hot path it is reporting on; old events are
//! overwritten once the ring wraps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (monotone; survives ring wrap).
    pub seq: u64,
    /// Milliseconds since the Unix epoch at record time.
    pub unix_ms: u64,
    /// Event name, `subsystem.noun` style (e.g. `cluster.failover`).
    pub name: String,
    /// Free-form detail payload.
    pub detail: String,
}

/// Fixed-capacity MPMC event ring. The write cursor is lock-free; each slot
/// has a tiny mutex so a slow writer can't tear an event a reader sees.
/// Events are rare by contract (state changes, not per-op records), so slot
/// contention is effectively nil.
pub struct EventRing {
    slots: Vec<Mutex<Option<Event>>>,
    cursor: AtomicU64,
}

impl EventRing {
    /// Ring holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "event ring needs capacity");
        EventRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Record an event, overwriting the oldest once full.
    pub fn record(&self, name: impl Into<String>, detail: impl Into<String>) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let unix_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        let event = Event { seq, unix_ms, name: name.into(), detail: detail.into() };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A racing writer that lapped the ring may already have stored a
        // newer event in this slot; keep the newest.
        if guard.as_ref().is_none_or(|old| old.seq < seq) {
            *guard = Some(event);
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Drop all retained events (test/bench support).
    pub fn reset(&self) {
        for s in &self.slots {
            *s.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_events() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.record("test.event", format!("e{i}"));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(ring.recorded(), 10);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(events[3].detail, "e9");
    }

    #[test]
    fn concurrent_writers_never_lose_the_newest() {
        let ring = std::sync::Arc::new(EventRing::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        ring.record("race", format!("{t}:{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.recorded(), 4000);
        let events = ring.snapshot();
        assert_eq!(events.len(), 8);
        // Every retained event is from the last full wrap.
        assert!(events.iter().all(|e| e.seq >= 4000 - 8 * 2));
    }
}
