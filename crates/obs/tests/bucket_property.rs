//! Property tests for the histogram bucket layout: every recorded value
//! must land in a bucket whose bounds contain it, and summaries must respect
//! ordering invariants.

use proptest::prelude::*;
use s2_obs::{bucket_bounds, bucket_index, Histogram, BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_lands_in_bucket_containing_it(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
    }

    #[test]
    fn small_values_land_in_their_bucket(v in 0u64..10_000_000) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi);
    }

    #[test]
    fn recorded_values_show_up_in_their_bucket(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let buckets = h.buckets();
        for &v in &values {
            prop_assert!(buckets[bucket_index(v)] > 0, "bucket for {v} empty");
        }
        let s = h.summary();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().copied().fold(0u64, u64::wrapping_add));
        prop_assert_eq!(s.max, values.iter().copied().max().unwrap());
        // Quantiles are ordered and clamped to the observed max.
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }
}
